"""Durable write-ahead logging and crash recovery.

The runtime's execution model (Section 4 of the paper) assumes rule
processing runs inside a database transaction whose effects commit
atomically or roll back. This module supplies the durability half of
that assumption: every tuple-level :class:`~repro.transitions.delta.Primitive`
the processor appends to its delta log is also framed into an
append-only on-disk log, bracketed by per-transaction begin / commit /
abort markers, and :func:`recover_database` replays the *committed
prefix* of any such log — including one cut short by a crash — onto a
fresh :class:`~repro.engine.database.Database`.

File layout::

    MAGIC (8 bytes)
    frame*            frame = <u32 payload length> <u32 CRC-32> <payload>

Payloads are compact JSON records (SQL values are int / float / str /
bool / NULL, all JSON-exact). Frame kinds:

``H``  header — format version plus the schema spec, making the file
       self-describing (``Database.recover(path)`` needs no catalog);
``K``  checkpoint — full ``(tid, values)`` extension of every table and
       the tid counter, written once at open when the database is not
       empty (a session may start from a pre-loaded state);
``B``  transaction begin;
``P``  one primitive (insert / delete / update with old and new values);
``C``  transaction commit;
``A``  transaction abort.

Commit protocol. The writer buffers encoded frames and writes them out
in batches; ``commit`` forces the buffer to the OS *and* fsyncs, so a
transaction is durable exactly when its ``C`` frame is. Nothing else
needs to fsync: losing buffered-but-unsynced frames only ever truncates
an uncommitted suffix, which recovery discards anyway.

Group commit. :class:`GroupCommitWal` funnels the commits of many
concurrent sessions through one committer thread: each transaction's
``B``/``P`` frames are emitted as it arrives, its ``C`` marker is
deferred until up to ``max_batch`` transactions are waiting (or
``max_delay`` elapses), and the whole batch then shares a single
flush + fsync — amortizing the per-commit sync across the batch while
preserving the exact per-caller durability contract. Such logs
interleave frames of different transactions (``B1 P1 B2 P2 C1 C2``);
recovery tracks one pending transaction per id and replays each at its
own commit marker, in file order.

Recovery. :func:`scan_frames` walks frames until the first torn or
CRC-corrupt one — a partial header, short payload, checksum mismatch,
or undecodable record ends the scan *without error* (that is exactly
what a crash mid-write leaves behind; the valid prefix is the log).
:func:`recover_database` then folds each committed transaction's
primitives through :meth:`~repro.transitions.net_effect.NetEffect.fold`
and applies the resulting per-table net effects — replay *is* the
net-effect fold, which is why recovering a prefix lands on a state the
execution graph could have produced (the fold is equivalent to the
sequential primitive application the live run performed).

Fault injection. The writer accepts an optional ``fault_plan`` — duck
typed, see :class:`repro.validate.faults.FaultPlan` — consulted before
each frame lands in the buffer and before each physical write / sync.
Injected ``OSError``s are retried with exponential backoff
(``max_retries`` / ``backoff_base``); a simulated crash aborts the
process's view of the writer, leaving the file exactly as a real crash
would.
"""

from __future__ import annotations

import json
import os
import queue
import struct
import threading
import time
import zlib
from dataclasses import dataclass, field

from repro.engine.database import Database
from repro.errors import ReproError
from repro.schema.catalog import Schema, schema_from_spec
from repro.transitions.delta import Primitive
from repro.transitions.net_effect import NetEffect

MAGIC = b"RPROWAL1"
WAL_VERSION = 1
_FRAME_HEADER = struct.Struct("<II")


class WalError(ReproError):
    """Structural problem in a WAL file (not a torn tail)."""


class WalWriteError(WalError):
    """A WAL write failed even after exhausting its retries."""


# ----------------------------------------------------------------------
# Frame codec
# ----------------------------------------------------------------------


def encode_frame(payload: dict) -> bytes:
    """One CRC-checked frame: ``<len><crc32><json payload>``."""
    body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    return _FRAME_HEADER.pack(len(body), zlib.crc32(body)) + body


def _decode_payload(body: bytes) -> dict | None:
    """The payload dict, or None when it does not decode to a record."""
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, ValueError):
        return None
    return payload if isinstance(payload, dict) else None


def _tuple_or_none(values) -> tuple | None:
    return None if values is None else tuple(values)


def primitive_payload(txn_id: int, primitive: Primitive) -> dict:
    return {
        "t": "P",
        "x": txn_id,
        "k": primitive.kind,
        "tb": primitive.table,
        "id": primitive.tid,
        "o": list(primitive.old) if primitive.old is not None else None,
        "n": list(primitive.new) if primitive.new is not None else None,
    }


def payload_primitive(payload: dict) -> Primitive:
    """Rebuild (and validate) a primitive from its ``P`` frame payload."""
    return Primitive.checked(
        0,
        payload["k"],
        payload["tb"],
        payload["id"],
        _tuple_or_none(payload["o"]),
        _tuple_or_none(payload["n"]),
    )


@dataclass(frozen=True)
class WalFrame:
    """One decoded frame plus its position in the file."""

    index: int
    offset: int  #: byte offset of the frame header in the file
    end: int  #: byte offset just past the frame (a valid crash point)
    payload: dict

    @property
    def kind(self) -> str:
        return self.payload.get("t", "?")


@dataclass
class WalScan:
    """The valid frame prefix of a WAL file."""

    frames: list[WalFrame] = field(default_factory=list)
    #: bytes of valid prefix (MAGIC + whole frames)
    valid_bytes: int = len(MAGIC)
    #: True when trailing bytes past the valid prefix were ignored
    torn_tail: bool = False
    #: why the scan stopped early ("" when the file ended cleanly)
    tail_reason: str = ""

    def boundaries(self) -> list[int]:
        """Byte offsets of every frame boundary (crash-point grid)."""
        return [frame.end for frame in self.frames]


def scan_frames(path: str) -> WalScan:
    """Read the valid frame prefix of the WAL at *path*.

    A missing or wrong magic is a :class:`WalError` (the file is not a
    WAL at all); anything wrong *after* the magic — torn header, short
    payload, CRC mismatch, undecodable record — ends the scan at the
    last whole frame, which is the crash-recovery contract.
    """
    scan = WalScan()
    with open(path, "rb") as handle:
        magic = handle.read(len(MAGIC))
        if magic != MAGIC:
            raise WalError(f"{path}: not a WAL file (bad magic)")
        offset = len(MAGIC)
        index = 0
        while True:
            header = handle.read(_FRAME_HEADER.size)
            if not header:
                break
            if len(header) < _FRAME_HEADER.size:
                scan.torn_tail = True
                scan.tail_reason = "torn frame header"
                break
            length, crc = _FRAME_HEADER.unpack(header)
            body = handle.read(length)
            if len(body) < length:
                scan.torn_tail = True
                scan.tail_reason = "torn frame payload"
                break
            if zlib.crc32(body) != crc:
                scan.torn_tail = True
                scan.tail_reason = "CRC mismatch"
                break
            payload = _decode_payload(body)
            if payload is None:
                scan.torn_tail = True
                scan.tail_reason = "undecodable payload"
                break
            end = offset + _FRAME_HEADER.size + length
            scan.frames.append(WalFrame(index, offset, end, payload))
            scan.valid_bytes = end
            offset = end
            index += 1
    return scan


# ----------------------------------------------------------------------
# Writer
# ----------------------------------------------------------------------


@dataclass
class WalWriterStats:
    """Observable work counters (the ``--stats`` / bench surface)."""

    frames_emitted: int = 0
    primitives_logged: int = 0
    bytes_written: int = 0
    flushes: int = 0
    syncs: int = 0
    retries: int = 0

    def to_dict(self) -> dict:
        return {
            "frames_emitted": self.frames_emitted,
            "primitives_logged": self.primitives_logged,
            "bytes_written": self.bytes_written,
            "flushes": self.flushes,
            "syncs": self.syncs,
            "retries": self.retries,
        }


class WalWriter:
    """Appends frames to a fresh WAL file with batched fsyncs.

    ``sync`` is ``"commit"`` (fsync only at commit markers — the
    default, and the weakest setting that keeps the commit protocol
    sound), ``"always"`` (fsync every flush), or ``"never"`` (flushes
    reach the OS but durability is left to the kernel — benchmarking
    only). ``batch_frames`` bounds how many frames buffer in-process
    before a physical write.

    Transient ``OSError`` from the underlying file (real, or injected
    by a fault plan) is retried up to ``max_retries`` times with
    exponential backoff starting at ``backoff_base`` seconds; a
    persistent failure raises :class:`WalWriteError`.
    """

    def __init__(
        self,
        path: str,
        *,
        schema: Schema,
        sync: str = "commit",
        batch_frames: int = 64,
        max_retries: int = 4,
        backoff_base: float = 0.001,
        sleep=time.sleep,
        fault_plan=None,
    ) -> None:
        if sync not in ("commit", "always", "never"):
            raise ValueError(f"bad sync policy {sync!r}")
        self.path = path
        self.sync = sync
        self.batch_frames = batch_frames
        self.max_retries = max_retries
        self.backoff_base = backoff_base
        self.stats = WalWriterStats()
        self._sleep = sleep
        self._fault_plan = fault_plan
        self._buffer = bytearray()
        self._buffered_frames = 0
        self._closed = False
        self._file = open(path, "wb")
        self._file.write(MAGIC)
        self._emit({"t": "H", "v": WAL_VERSION, "schema": schema.to_spec()})
        # The header reaches the OS immediately: every later crash point
        # leaves a file recovery can at least open.
        self.flush()

    # -- frame emission ------------------------------------------------

    def _emit(self, payload: dict) -> None:
        if self._closed:
            raise WalError("WAL writer is closed")
        frame = encode_frame(payload)
        if self._fault_plan is not None:
            # The plan may flush-and-crash here, possibly leaving a torn
            # prefix of this frame on disk (see FaultPlan.before_frame).
            self._fault_plan.before_frame(self, self.stats.frames_emitted, frame)
        self._buffer += frame
        self._buffered_frames += 1
        self.stats.frames_emitted += 1
        if self._buffered_frames >= self.batch_frames:
            self.flush()
            if self.sync == "always":
                self._sync()

    def checkpoint(self, database: Database) -> None:
        """Write a full-state checkpoint frame (open-time base state)."""
        self._emit(
            {
                "t": "K",
                "next_tid": database._next_tid,
                "tables": {
                    table.name: [
                        [tid, list(values)]
                        for tid, values in database.table(table.name).items()
                    ]
                    for table in database.schema
                },
            }
        )

    def begin(self, txn_id: int) -> None:
        self._emit({"t": "B", "x": txn_id})

    def primitive(self, txn_id: int, primitive: Primitive) -> None:
        self.stats.primitives_logged += 1
        self._emit(primitive_payload(txn_id, primitive))

    def commit(self, txn_id: int) -> int:
        """Write the commit marker and make the transaction durable.

        Returns the total frame count including the commit frame — the
        crash-matrix harness keys its committed-prefix expectations on
        this.
        """
        self._emit({"t": "C", "x": txn_id})
        self.flush()
        if self.sync != "never":
            self._sync()
        return self.stats.frames_emitted

    def commit_marker(self, txn_id: int, *, epoch: int | None = None) -> int:
        """Write a commit marker WITHOUT forcing it to disk.

        The group-commit coalescer emits one marker per batch member and
        then pays a single :meth:`sync_now` for the whole batch; the
        transaction is durable only once that sync returns. *epoch*, when
        given, tags the marker with the server's commit sequence number
        (recovery ignores it; the concurrent crash matrix uses it to map
        frame boundaries back to commits). Returns the frame count
        including the marker.
        """
        payload: dict = {"t": "C", "x": txn_id}
        if epoch is not None:
            payload["e"] = epoch
        self._emit(payload)
        return self.stats.frames_emitted

    def sync_now(self) -> None:
        """Flush buffered frames and fsync them (one durability point)."""
        self.flush()
        if self.sync != "never":
            self._sync()

    def abort(self, txn_id: int) -> None:
        """Write the abort marker. Aborts need no fsync: an abort that
        never reaches disk is recovered identically (the transaction
        has no commit frame either way)."""
        self._emit({"t": "A", "x": txn_id})
        self.flush()

    # -- physical I/O with retry/backoff -------------------------------

    def _with_retries(self, operation, what: str):
        delay = self.backoff_base
        attempt = 0
        while True:
            try:
                return operation()
            except OSError as error:
                if attempt >= self.max_retries:
                    raise WalWriteError(
                        f"WAL {what} failed after {attempt + 1} attempts: "
                        f"{error}"
                    ) from error
                attempt += 1
                self.stats.retries += 1
                self._sleep(delay)
                delay *= 2

    def flush(self) -> None:
        """Write buffered frames to the OS (no fsync)."""
        if not self._buffer:
            return
        data = bytes(self._buffer)

        def write() -> None:
            if self._fault_plan is not None:
                self._fault_plan.before_io("write")
            self._file.write(data)
            self._file.flush()

        self._with_retries(write, "write")
        self.stats.bytes_written += len(data)
        self.stats.flushes += 1
        self._buffer.clear()
        self._buffered_frames = 0

    def _sync(self) -> None:
        def sync() -> None:
            if self._fault_plan is not None:
                self._fault_plan.before_io("fsync")
            os.fsync(self._file.fileno())

        self._with_retries(sync, "fsync")
        self.stats.syncs += 1

    # -- crash simulation / shutdown -----------------------------------

    def simulate_crash(self, torn_bytes: bytes = b"") -> None:
        """Make the file look crash-interrupted and disable the writer.

        Buffered (unflushed) frames are *dropped* — a real crash loses
        them the same way — and *torn_bytes*, if given, land on disk as
        a partial final frame. Used by the fault-injection harness; the
        live writer raises SimulatedCrash right after.
        """
        self._buffer.clear()
        self._buffered_frames = 0
        if torn_bytes:
            self._file.write(torn_bytes)
            self._file.flush()
            os.fsync(self._file.fileno())
        self._file.close()
        self._closed = True

    def close(self) -> None:
        """Flush and close. Does NOT commit: an open transaction's
        frames may reach the file but recovery discards them."""
        if self._closed:
            return
        self.flush()
        if self.sync != "never":
            self._sync()
        self._file.close()
        self._closed = True


# ----------------------------------------------------------------------
# Group commit
# ----------------------------------------------------------------------


@dataclass
class GroupCommitStats:
    """Coalescer counters (the ``--stats`` / bench surface).

    ``batch_sizes`` is a histogram: batch size -> how many batches of
    that size were synced. ``fsyncs-per-commit`` for the bench gate is
    ``writer.stats.syncs / commits``.
    """

    commits: int = 0
    batches: int = 0
    batch_sizes: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "commits": self.commits,
            "batches": self.batches,
            "batch_sizes": {
                str(size): count
                for size, count in sorted(self.batch_sizes.items())
            },
        }


class _CommitTicket:
    """One transaction waiting for the coalescer to make it durable."""

    __slots__ = ("txn_id", "primitives", "epoch", "done", "error")

    def __init__(self, txn_id: int, primitives, epoch: int | None) -> None:
        self.txn_id = txn_id
        self.primitives = primitives
        self.epoch = epoch
        self.done = threading.Event()
        self.error: BaseException | None = None


class GroupCommitWal:
    """A commit coalescer over one :class:`WalWriter`.

    All frame emission is funneled through a single committer thread, so
    the writer needs no internal locking and the file's frame order is
    exactly the submission order. For each submitted transaction the
    committer immediately emits its ``B`` + ``P`` frames (buffered);
    commit markers are *deferred*: the committer collects transactions
    for up to ``max_delay`` seconds (or until ``max_batch`` of them are
    waiting), then emits all their ``C`` frames and pays one flush + one
    fsync for the whole batch. The resulting file genuinely interleaves
    frames from concurrently-committing transactions — ``B1 P1 B2 P2 C1
    C2`` — which is what the multi-transaction recovery below exists to
    replay. :meth:`commit` blocks until its transaction's batch has
    synced, so the durability contract per caller is identical to
    :meth:`WalWriter.commit`; ``C`` frames appear in submission order,
    so when callers submit in their publication order, recovery replays
    net effects in that same order.

    With ``max_batch=1`` (or ``max_delay=0``) every transaction syncs
    alone — the per-commit-fsync baseline the bench gate compares
    against, on the same code path.
    """

    def __init__(
        self,
        writer: WalWriter,
        *,
        max_delay: float = 0.002,
        max_batch: int = 8,
    ) -> None:
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1; got {max_batch!r}")
        if max_delay < 0:
            raise ValueError(f"max_delay must be >= 0; got {max_delay!r}")
        self.writer = writer
        self.max_delay = max_delay
        self.max_batch = max_batch
        self.stats = GroupCommitStats()
        self._queue: "queue.Queue[_CommitTicket | None]" = queue.Queue()
        self._failed: BaseException | None = None
        self._closed = False
        self._thread = threading.Thread(
            target=self._run, name="repro-group-commit", daemon=True
        )
        self._thread.start()

    # -- the session-facing surface ------------------------------------

    def checkpoint(self, database: Database) -> None:
        """Checkpoint the base state. Call before the first commit: the
        committer thread owns the writer once transactions flow."""
        self.writer.checkpoint(database)
        self.writer.flush()

    def submit(
        self, txn_id: int, primitives, *, epoch: int | None = None
    ) -> _CommitTicket:
        """Enqueue one transaction's frames; returns the ticket to
        :meth:`wait` on. Split from :meth:`commit` so a caller holding a
        publication lock can enqueue inside it (fixing this commit's
        position in WAL order) and block for the group fsync outside it.
        """
        if self._closed:
            raise WalError("group-commit WAL is closed")
        if self._failed is not None:
            raise WalWriteError(
                f"group-commit WAL failed earlier: {self._failed}"
            )
        ticket = _CommitTicket(txn_id, list(primitives), epoch)
        self._queue.put(ticket)
        return ticket

    def wait(self, ticket: _CommitTicket) -> None:
        """Block until *ticket*'s batch has synced; raises its error."""
        ticket.done.wait()
        if ticket.error is not None:
            raise ticket.error

    def commit(
        self, txn_id: int, primitives, *, epoch: int | None = None
    ) -> None:
        """Submit one transaction's frames and block until durable.

        Raises :class:`WalWriteError` if the committer failed — the
        transaction may or may not be durable at that point, exactly as
        with a torn ``commit()``.
        """
        self.wait(self.submit(txn_id, primitives, epoch=epoch))

    def close(self) -> None:
        """Drain pending commits, sync, and close the underlying writer."""
        if self._closed:
            return
        self._closed = True
        self._queue.put(None)
        self._thread.join()
        self.writer.close()

    # -- the committer thread ------------------------------------------

    def _write_body(self, ticket: _CommitTicket) -> None:
        self.writer.begin(ticket.txn_id)
        for primitive in ticket.primitives:
            self.writer.primitive(ticket.txn_id, primitive)

    def _run(self) -> None:
        shutdown = False
        while not shutdown:
            item = self._queue.get()
            if item is None:
                break
            batch = [item]
            try:
                self._write_body(item)
                deadline = time.monotonic() + self.max_delay
                while len(batch) < self.max_batch:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        break
                    try:
                        item = self._queue.get(timeout=remaining)
                    except queue.Empty:
                        break
                    if item is None:
                        shutdown = True
                        break
                    self._write_body(item)
                    batch.append(item)
                for ticket in batch:
                    self.writer.commit_marker(
                        ticket.txn_id, epoch=ticket.epoch
                    )
                self.writer.sync_now()
                self.stats.commits += len(batch)
                self.stats.batches += 1
                self.stats.batch_sizes[len(batch)] = (
                    self.stats.batch_sizes.get(len(batch), 0) + 1
                )
            except BaseException as error:  # noqa: BLE001 — fail tickets
                self._failed = error
                for ticket in batch:
                    ticket.error = WalWriteError(
                        f"group commit failed: {error}"
                    )
                # Later tickets must not hang on a dead committer.
                while True:
                    try:
                        later = self._queue.get_nowait()
                    except queue.Empty:
                        break
                    if later is not None:
                        later.error = WalWriteError(
                            f"group commit failed earlier: {error}"
                        )
                        later.done.set()
                shutdown = True
            finally:
                for ticket in batch:
                    ticket.done.set()


# ----------------------------------------------------------------------
# Recovery
# ----------------------------------------------------------------------


@dataclass
class RecoveryReport:
    """What recovery found and did."""

    frames_read: int = 0
    transactions_committed: int = 0
    transactions_aborted: int = 0
    #: a begin without commit/abort was cut off by the crash
    open_transaction_discarded: bool = False
    #: how many such in-flight transactions were discarded (a concurrent
    #: log can lose several to one crash)
    transactions_discarded: int = 0
    #: trailing torn/corrupt bytes were truncated (not fatal)
    torn_tail: bool = False
    tail_reason: str = ""
    checkpoint_rows: int = 0
    primitives_replayed: int = 0
    replay_seconds: float = 0.0

    def to_dict(self) -> dict:
        return {
            "frames_read": self.frames_read,
            "transactions_committed": self.transactions_committed,
            "transactions_aborted": self.transactions_aborted,
            "open_transaction_discarded": self.open_transaction_discarded,
            "transactions_discarded": self.transactions_discarded,
            "torn_tail": self.torn_tail,
            "tail_reason": self.tail_reason,
            "checkpoint_rows": self.checkpoint_rows,
            "primitives_replayed": self.primitives_replayed,
            "replay_seconds": round(self.replay_seconds, 6),
        }


@dataclass
class RecoveryResult:
    database: Database
    report: RecoveryReport


def _apply_checkpoint(
    database: Database, payload: dict, report: RecoveryReport
) -> None:
    for name, rows in payload["tables"].items():
        table = database.table(name)
        for tid, values in rows:
            table.insert(tid, tuple(values))
            report.checkpoint_rows += 1
    database._next_tid = payload["next_tid"]


def _replay_transaction(
    database: Database, primitives: list[Primitive], report: RecoveryReport
) -> None:
    """Apply one committed transaction: fold, then per-table net effects.

    Folding first and applying the composite is equivalent to replaying
    the primitives one by one (net-effect composition, [WF90]); it also
    re-checks the same tid invariants the live run maintained.
    """
    database.apply_net_effect(NetEffect.from_primitives(primitives))
    report.primitives_replayed += len(primitives)
    highest = max((primitive.tid for primitive in primitives), default=0)
    if highest >= database._next_tid:
        database._next_tid = highest + 1


def recover_database(path: str, schema: Schema | None = None) -> RecoveryResult:
    """Replay the committed prefix of the WAL at *path*.

    Returns the recovered database plus a report. Torn or CRC-corrupt
    tails are truncated, an in-flight (uncommitted) final transaction
    is discarded, and aborted transactions are skipped — the result is
    exactly the state as of the last durable commit marker.

    With *schema* the recovered database is built on that exact catalog
    object (so it can be handed straight to a :class:`RuleProcessor`,
    whose rule set holds the same object); the header's schema spec
    must match it. Without it the log is self-describing and the schema
    is rebuilt from the header.
    """
    started = time.perf_counter()
    scan = scan_frames(path)
    report = RecoveryReport(
        frames_read=len(scan.frames),
        torn_tail=scan.torn_tail,
        tail_reason=scan.tail_reason,
    )
    if not scan.frames or scan.frames[0].kind != "H":
        raise WalError(f"{path}: missing WAL header frame")
    header = scan.frames[0].payload
    if header.get("v") != WAL_VERSION:
        raise WalError(
            f"{path}: unsupported WAL version {header.get('v')!r}"
        )
    if schema is not None and schema.to_spec() != header["schema"]:
        raise WalError(
            f"{path}: WAL header schema does not match the given catalog"
        )
    database = Database(schema or schema_from_spec(header["schema"]))

    # One pending primitive list per in-flight transaction id: a
    # group-commit log interleaves begin/primitive frames from
    # concurrently-committing sessions, and a transaction replays at
    # (and only at) its own commit marker. Commit markers appear in the
    # coalescer's submission order — the server's publication order — so
    # replaying them in file order reproduces the published state. A
    # sequential single-session log is the one-pending special case and
    # recovers exactly as before.
    pending: dict[int, list[Primitive]] = {}
    for frame in scan.frames[1:]:
        kind = frame.kind
        payload = frame.payload
        if kind == "K":
            _apply_checkpoint(database, payload, report)
        elif kind == "B":
            # A begin for an id already in flight abandons the earlier
            # incarnation (id reuse by a restarted sequential writer).
            pending[payload["x"]] = []
        elif kind == "P":
            primitives = pending.get(payload["x"])
            if primitives is not None:
                primitives.append(payload_primitive(payload))
        elif kind == "C":
            primitives = pending.pop(payload["x"], None)
            if primitives is not None:
                _replay_transaction(database, primitives, report)
                report.transactions_committed += 1
        elif kind == "A":
            if pending.pop(payload["x"], None) is not None:
                report.transactions_aborted += 1
        else:
            raise WalError(f"{path}: unknown frame kind {kind!r}")
    if pending:
        report.open_transaction_discarded = True
        report.transactions_discarded = len(pending)
    report.replay_seconds = time.perf_counter() - started
    return RecoveryResult(database=database, report=report)
