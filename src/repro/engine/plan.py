"""Planned, indexed, compiled SELECT execution.

:func:`repro.engine.query.execute_select` historically evaluated every
SELECT as a cross product over full table scans with a per-row
tree-walking :class:`~repro.engine.expressions.Evaluator` call. This
module replaces that hot path with a small query-planning layer:

* **conjunct splitting and pushdown** — the WHERE clause is split into
  AND-conjuncts; conjuncts referencing a single FROM binding are pushed
  down to that table's scan, conjuncts referencing no binding gate the
  whole query, and everything else becomes a residual predicate applied
  at the shallowest join level where all its bindings are bound;
* **equi-join detection** — a conjunct of the form ``a.x = b.y`` turns
  the deeper of the two tables into a hash-indexed probe target instead
  of a nested re-scan. Probes look up hash buckets whose rows are kept
  in table (tid) order, so the planned executor enumerates *exactly* the
  same matches in *exactly* the same order as the naive nested loop —
  byte-identical results are a hard requirement, enforced by the
  equivalence harness and the ``bench_query_engine`` gate;
* **equality-with-constant probes** — ``x = <row-independent expr>``
  filters resolve through a persistent per-table hash index
  (:meth:`repro.engine.storage.TableData.equality_index`) instead of a
  scan. Those indexes are memoized on the copy-on-write
  :class:`~repro.engine.storage.TableData` exactly like the canonical
  fragments: they survive :meth:`Database.copy` forks and invalidate
  per-table on write;
* **predicate compilation** — expression trees compile once into Python
  closures (cached by the expression's AST, which is a frozen, hashable
  dataclass), eliminating the per-row ``isinstance`` dispatch of the
  tree-walking evaluator. Plans are likewise cached by the SELECT's AST
  plus the source column layout, so a rule's condition is planned once
  and reused across every processor step and every ``explore()`` fork.

Three-valued-logic semantics are preserved: a row is kept iff the whole
WHERE predicate evaluates to ``True``, and under Kleene AND that is
equivalent to every conjunct independently evaluating to ``True``; NULL
join keys never match, which hash probing honors by excluding NULL keys
from both build and probe sides.

Known, documented divergence from the naive path: *error* behavior on
ill-typed predicates. The naive executor can short-circuit past (or be
forced into) a subexpression that raises — e.g. a comparison of ``int``
with ``bool`` — on rows the planned executor never evaluates it on (or
vice versa). On well-typed queries, which is everything the language's
schema typing admits without mixing incomparable columns, the two paths
agree exactly.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.engine import partition as PART
from repro.engine import values as V
from repro.engine.expressions import Evaluator, RowContext
from repro.lang import ast
from repro.stats import StatsBase

_SUBQUERY_NODES = (ast.InSubquery, ast.Exists, ast.ScalarSubquery)

#: size caps for the module-level memo tables (cleared wholesale on
#: overflow; entries are small, the caps exist only to bound pathological
#: workloads that generate unbounded distinct ASTs)
_PREDICATE_CACHE_CAP = 8192
_PLAN_CACHE_CAP = 2048


class PlannerStats(StatsBase):
    """Global work counters for the planning/execution layer.

    One process-wide instance (:data:`STATS`) accumulates across every
    planned query; the CLI ``--stats`` surface and the
    ``bench_query_engine`` gate read (and reset) it.
    """

    FIELDS = (
        "plans_built",
        "plan_cache_hits",
        "predicates_compiled",
        "predicate_cache_hits",
        "index_builds",
        "index_maintains",
        "index_probes",
        "transient_index_builds",
        "hash_join_probes",
        "rows_scanned",
        "shard_probes",
        "fanout_scans",
        "plan_seconds",
    )
    SECONDS = frozenset({"plan_seconds"})


STATS = PlannerStats()


# ----------------------------------------------------------------------
# Predicate compilation
# ----------------------------------------------------------------------

_PREDICATE_CACHE: dict = {}


def _iter_select_expressions(select: ast.Select):
    for item in select.items:
        yield item.expr
    if select.where is not None:
        yield select.where
    for key in select.group_by:
        yield key
    if select.having is not None:
        yield select.having


def expression_fingerprint(expr: ast.Expression) -> tuple[str, ...]:
    """The types of every literal in *expr*, in traversal order.

    Two ASTs that compare equal can still differ semantically, because
    Python value equality conflates ``1 == True == 1.0`` — so
    ``Literal(1) == Literal(True)`` even though the two compile to
    closures returning different values. Every memo key pairs the AST
    with this fingerprint to keep such twins apart.
    """
    types: list[str] = []
    stack = [expr]
    while stack:
        for node in ast.walk_expression(stack.pop()):
            if isinstance(node, ast.Literal):
                types.append(type(node.value).__name__)
            elif isinstance(node, _SUBQUERY_NODES):
                stack.extend(_iter_select_expressions(node.subquery))
    return tuple(types)


def select_fingerprint(select: ast.Select) -> tuple[str, ...]:
    """:func:`expression_fingerprint` over a whole SELECT."""
    return tuple(
        name
        for expr in _iter_select_expressions(select)
        for name in expression_fingerprint(expr)
    )


def compile_predicate(expr: ast.Expression):
    """Compile *expr* into a closure ``f(context, evaluator) -> value``.

    The closure is provider-independent — subquery nodes delegate back to
    the passed :class:`Evaluator` (whose ``execute_select`` call is
    itself planned and cached) — so compiled predicates are memoized
    globally, keyed by the (frozen, value-hashable) AST node plus its
    literal-type fingerprint.
    """
    key = (expr, expression_fingerprint(expr))
    compiled = _PREDICATE_CACHE.get(key)
    if compiled is not None:
        STATS.predicate_cache_hits += 1
        return compiled
    compiled = _compile(expr)
    if len(_PREDICATE_CACHE) >= _PREDICATE_CACHE_CAP:
        _PREDICATE_CACHE.clear()
    _PREDICATE_CACHE[key] = compiled
    STATS.predicates_compiled += 1
    return compiled


def _compile(expr: ast.Expression):
    if isinstance(expr, ast.Literal):
        value = expr.value
        return lambda context, evaluator: value

    if isinstance(expr, ast.ColumnRef):
        column = expr.column
        if expr.table:
            table = expr.table
            return lambda context, evaluator: context.lookup_qualified(
                table, column
            )
        return lambda context, evaluator: context.lookup_unqualified(column)

    if isinstance(expr, ast.BinaryOp):
        return _compile_binary(expr)

    if isinstance(expr, ast.UnaryOp):
        operand = _compile(expr.operand)
        if expr.op == "not":
            as_bool = Evaluator._as_bool
            return lambda context, evaluator: V.sql_not(
                as_bool(operand(context, evaluator))
            )
        if expr.op == "-":
            return _compile_negate(operand)
        # Unknown operator: defer to the evaluator's error path.
        return lambda context, evaluator: evaluator.evaluate(expr, context)

    if isinstance(expr, ast.IsNull):
        operand = _compile(expr.operand)
        if expr.negated:
            return lambda context, evaluator: (
                operand(context, evaluator) is not None
            )
        return lambda context, evaluator: operand(context, evaluator) is None

    if isinstance(expr, ast.Between):
        operand = _compile(expr.operand)
        low = _compile(expr.low)
        high = _compile(expr.high)
        negated = expr.negated

        def between(context, evaluator):
            value = operand(context, evaluator)
            result = V.sql_and(
                V.sql_compare(">=", value, low(context, evaluator)),
                V.sql_compare("<=", value, high(context, evaluator)),
            )
            return V.sql_not(result) if negated else result

        return between

    if isinstance(expr, ast.InList):
        operand = _compile(expr.operand)
        items = tuple(_compile(item) for item in expr.items)
        negated = expr.negated
        evaluate_in = Evaluator._evaluate_in
        return lambda context, evaluator: evaluate_in(
            operand(context, evaluator),
            [item(context, evaluator) for item in items],
            negated,
        )

    if isinstance(expr, ast.FuncCall):
        if expr.name in ast.AGGREGATE_FUNCTIONS:
            # Aggregates are invalid here; route through the evaluator so
            # the error is identical to the naive path's.
            return lambda context, evaluator: evaluator.evaluate(expr, context)
        name = expr.name
        args = tuple(_compile(arg) for arg in expr.args)
        return lambda context, evaluator: V.sql_scalar_function(
            name, [arg(context, evaluator) for arg in args]
        )

    # Subqueries (and any future node type) fall back to the tree-walking
    # evaluator; the subquery's SELECT is planned when it executes.
    return lambda context, evaluator: evaluator.evaluate(expr, context)


def _compile_binary(expr: ast.BinaryOp):
    op = expr.op
    left = _compile(expr.left)
    right = _compile(expr.right)
    as_bool = Evaluator._as_bool

    if op == "and":

        def kleene_and(context, evaluator):
            left_value = as_bool(left(context, evaluator))
            if left_value is False:
                return False
            return V.sql_and(left_value, as_bool(right(context, evaluator)))

        return kleene_and

    if op == "or":

        def kleene_or(context, evaluator):
            left_value = as_bool(left(context, evaluator))
            if left_value is True:
                return True
            return V.sql_or(left_value, as_bool(right(context, evaluator)))

        return kleene_or

    if op in ("=", "<>", "<", "<=", ">", ">="):
        compare = V.sql_compare
        return lambda context, evaluator: compare(
            op, left(context, evaluator), right(context, evaluator)
        )
    if op in ("+", "-", "*", "/", "%", "||"):
        arithmetic = V.sql_arithmetic
        return lambda context, evaluator: arithmetic(
            op, left(context, evaluator), right(context, evaluator)
        )
    if op == "like":
        return lambda context, evaluator: V.sql_like(
            left(context, evaluator), right(context, evaluator)
        )
    if op == "not like":
        return lambda context, evaluator: V.sql_not(
            V.sql_like(left(context, evaluator), right(context, evaluator))
        )
    # Unknown operator: defer to the evaluator's error path.
    return lambda context, evaluator: evaluator.evaluate(expr, context)


def _compile_negate(operand):
    from repro.errors import EvaluationError

    def negate(context, evaluator):
        value = operand(context, evaluator)
        if value is None:
            return None
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise EvaluationError("unary '-' needs a numeric operand")
        return -value

    return negate


# ----------------------------------------------------------------------
# Logical plans
# ----------------------------------------------------------------------


def split_conjuncts(expr: ast.Expression):
    """Yield the AND-conjuncts of *expr*, in source order."""
    if isinstance(expr, ast.BinaryOp) and expr.op == "and":
        yield from split_conjuncts(expr.left)
        yield from split_conjuncts(expr.right)
    else:
        yield expr


@dataclass
class SourcePlan:
    """The per-FROM-table slice of a :class:`Plan`.

    ``filters`` are pushed single-table conjuncts (compiled, original
    order); ``const_probes`` are ``(column_index, value_closure)`` pairs
    from equality-with-constant conjuncts, served by a hash index;
    ``join_cols``/``join_values`` describe the hash-join key when this
    level is the probe target of one or more equi-join conjuncts; and
    ``residuals`` are the remaining conjuncts whose deepest binding is
    this level.
    """

    binding: str
    filters: tuple = ()
    const_probes: tuple = ()
    join_cols: tuple[int, ...] | None = None
    join_values: tuple = ()
    residuals: tuple = ()


@dataclass
class Plan:
    """A lowered SELECT: scan/filter/join/residual structure.

    ``constant_gates`` are conjuncts with no local binding dependency
    (literals or outer-context references), evaluated once per execution
    before any scan; ``items`` are the compiled SELECT item expressions
    for the non-aggregate projection path (``None`` when the query is
    ``*``, grouped, or aggregated).
    """

    sources: tuple[SourcePlan, ...]
    constant_gates: tuple = ()
    items: tuple | None = None


@dataclass(frozen=True)
class ConstProbe:
    """A classified ``col = <row-independent expr>`` conjunct."""

    conjunct: ast.Expression
    column: int
    value: ast.Expression


@dataclass(frozen=True)
class JoinConjunct:
    """A classified equi-join conjunct probing one source.

    ``probe_column`` indexes the deeper (probe-target) source's columns;
    ``build`` is the shallower side's key expression.
    """

    conjunct: ast.Expression
    probe_column: int
    build: ast.Expression


@dataclass(frozen=True)
class Residual:
    """A conjunct applied at its deepest binding level.

    ``ambiguous`` marks conjuncts that defied static classification
    (a subquery, an ambiguous unqualified column, a qualified reference
    to a missing column) and were defaulted to the last source — the
    rete compiler refuses those; the planned executor evaluates them at
    full binding depth, reproducing the naive path's behavior.
    """

    conjunct: ast.Expression
    ambiguous: bool = False


@dataclass(frozen=True)
class SourceConjuncts:
    """The classified WHERE conjuncts charged to one FROM source."""

    binding: str
    filters: tuple[ast.Expression, ...] = ()
    const_probes: tuple[ConstProbe, ...] = ()
    joins: tuple[JoinConjunct, ...] = ()
    residuals: tuple[Residual, ...] = ()


@dataclass(frozen=True)
class SelectClassification:
    """A SELECT's WHERE clause, classified per source (AST level).

    This is the shared front half of planning: both :func:`_build_plan`
    (which compiles it into closures) and the rete network compiler
    (:mod:`repro.engine.rete`, which lowers it into alpha/beta nodes)
    consume it, so the two executors agree by construction on pushdown,
    equi-join detection, and residual placement.
    """

    sources: tuple[SourceConjuncts, ...]
    constant_gates: tuple[ast.Expression, ...] = ()

    @property
    def has_ambiguous(self) -> bool:
        return any(
            residual.ambiguous
            for source in self.sources
            for residual in source.residuals
        )


class _Ambiguous(Exception):
    """Internal marker: a conjunct cannot be classified statically."""


def _has_subquery(expr: ast.Expression) -> bool:
    return any(
        isinstance(node, _SUBQUERY_NODES) for node in ast.walk_expression(expr)
    )


def _conjunct_deps(
    expr: ast.Expression, binding_columns: dict[str, tuple[str, ...]]
) -> frozenset[str]:
    """The FROM bindings *expr* depends on.

    Raises :class:`_Ambiguous` when static classification is unsafe: the
    conjunct contains a subquery (which may correlate against anything),
    an unqualified column owned by several bindings, or a qualified
    reference to a binding column that does not exist (so the naive
    path's error must be reproduced at full binding depth).
    """
    if _has_subquery(expr):
        raise _Ambiguous
    deps: set[str] = set()
    for node in ast.walk_expression(expr):
        if not isinstance(node, ast.ColumnRef):
            continue
        if node.table:
            table = node.table.lower()
            if table in binding_columns:
                if node.column.lower() not in binding_columns[table]:
                    raise _Ambiguous
                deps.add(table)
            # else: outer-context reference, no local dependency
        else:
            column = node.column.lower()
            owners = [
                binding
                for binding, columns in binding_columns.items()
                if column in columns
            ]
            if len(owners) > 1:
                raise _Ambiguous
            if owners:
                deps.add(owners[0])
            # else: outer-context reference
    return frozenset(deps)


def _ref_binding(
    ref: ast.Expression, binding_columns: dict[str, tuple[str, ...]]
) -> tuple[str, int] | None:
    """Resolve a ColumnRef to ``(binding, column_index)``, or None."""
    if not isinstance(ref, ast.ColumnRef):
        return None
    column = ref.column.lower()
    if ref.table:
        binding = ref.table.lower()
        columns = binding_columns.get(binding)
        if columns is None or column not in columns:
            return None
        return binding, columns.index(column)
    owners = [
        (binding, columns.index(column))
        for binding, columns in binding_columns.items()
        if column in columns
    ]
    if len(owners) == 1:
        return owners[0]
    return None


_PLAN_CACHE: dict = {}
_CLASSIFY_CACHE: dict = {}


def classify_select(
    select: ast.Select,
    source_columns: tuple[tuple[str, tuple[str, ...]], ...],
) -> SelectClassification:
    """The (cached) per-source conjunct classification for *select*.

    Pure AST analysis — nothing is compiled. Keyed like the plan cache
    (AST + column layouts + literal-type fingerprint).
    """
    key = (select, source_columns, select_fingerprint(select))
    classified = _CLASSIFY_CACHE.get(key)
    if classified is not None:
        return classified

    binding_columns = {binding: columns for binding, columns in source_columns}
    order = {binding: i for i, (binding, __) in enumerate(source_columns)}
    last = len(source_columns) - 1

    filters: list[list] = [[] for __ in source_columns]
    const_probes: list[list] = [[] for __ in source_columns]
    joins: list[list] = [[] for __ in source_columns]
    residuals: list[list] = [[] for __ in source_columns]
    constant_gates: list = []

    conjuncts = (
        list(split_conjuncts(select.where)) if select.where is not None else []
    )
    for conjunct in conjuncts:
        try:
            deps = _conjunct_deps(conjunct, binding_columns)
        except _Ambiguous:
            residuals[last].append(Residual(conjunct, ambiguous=True))
            continue

        if not deps:
            constant_gates.append(conjunct)
            continue

        if len(deps) == 1:
            binding = next(iter(deps))
            probe = _as_const_probe(conjunct, binding, binding_columns)
            if probe is not None:
                const_probes[order[binding]].append(probe)
            else:
                filters[order[binding]].append(conjunct)
            continue

        deepest = max(order[binding] for binding in deps)
        join = _as_equi_join(conjunct, binding_columns, order, deepest)
        if join is not None:
            joins[deepest].append(join)
        else:
            residuals[deepest].append(Residual(conjunct))

    classified = SelectClassification(
        sources=tuple(
            SourceConjuncts(
                binding=binding,
                filters=tuple(filters[i]),
                const_probes=tuple(const_probes[i]),
                joins=tuple(joins[i]),
                residuals=tuple(residuals[i]),
            )
            for i, (binding, __) in enumerate(source_columns)
        ),
        constant_gates=tuple(constant_gates),
    )
    if len(_CLASSIFY_CACHE) >= _PLAN_CACHE_CAP:
        _CLASSIFY_CACHE.clear()
    _CLASSIFY_CACHE[key] = classified
    return classified


def plan_select(
    select: ast.Select,
    source_columns: tuple[tuple[str, tuple[str, ...]], ...],
) -> Plan:
    """The (cached) plan for *select* over sources with these columns.

    The cache key includes the per-binding column layouts because the
    same AST can resolve against different providers — two rules'
    ``select * from inserted`` conditions share an AST shape but carry
    their own table's columns.
    """
    key = (select, source_columns, select_fingerprint(select))
    plan = _PLAN_CACHE.get(key)
    if plan is not None:
        STATS.plan_cache_hits += 1
        return plan
    started = time.perf_counter()
    plan = _build_plan(select, source_columns)
    if len(_PLAN_CACHE) >= _PLAN_CACHE_CAP:
        _PLAN_CACHE.clear()
    _PLAN_CACHE[key] = plan
    STATS.plans_built += 1
    STATS.plan_seconds += time.perf_counter() - started
    return plan


def _build_plan(
    select: ast.Select,
    source_columns: tuple[tuple[str, tuple[str, ...]], ...],
) -> Plan:
    classified = classify_select(select, source_columns)

    sources = []
    for source in classified.sources:
        sources.append(
            SourcePlan(
                binding=source.binding,
                filters=tuple(
                    compile_predicate(conjunct) for conjunct in source.filters
                ),
                const_probes=tuple(
                    (probe.column, compile_predicate(probe.value))
                    for probe in source.const_probes
                ),
                join_cols=(
                    tuple(join.probe_column for join in source.joins)
                    if source.joins
                    else None
                ),
                join_values=tuple(
                    compile_predicate(join.build) for join in source.joins
                ),
                residuals=tuple(
                    compile_predicate(residual.conjunct)
                    for residual in source.residuals
                ),
            )
        )

    constant_gates = tuple(
        compile_predicate(gate) for gate in classified.constant_gates
    )

    items = None
    if select.items and not select.group_by:
        has_aggregate = any(
            isinstance(node, ast.FuncCall)
            and node.name in ast.AGGREGATE_FUNCTIONS
            for item in select.items
            for node in ast.walk_expression(item.expr)
        )
        if not has_aggregate:
            items = tuple(
                compile_predicate(item.expr) for item in select.items
            )

    return Plan(
        sources=tuple(sources),
        constant_gates=constant_gates,
        items=items,
    )


def _as_const_probe(conjunct, binding, binding_columns) -> ConstProbe | None:
    """``col = <row-independent expr>`` → a :class:`ConstProbe`."""
    if not (isinstance(conjunct, ast.BinaryOp) and conjunct.op == "="):
        return None
    for ref_side, value_side in (
        (conjunct.left, conjunct.right),
        (conjunct.right, conjunct.left),
    ):
        resolved = _ref_binding(ref_side, binding_columns)
        if resolved is None or resolved[0] != binding:
            continue
        try:
            value_deps = _conjunct_deps(value_side, binding_columns)
        except _Ambiguous:
            continue
        if value_deps:
            continue
        return ConstProbe(conjunct, resolved[1], value_side)
    return None


def _as_equi_join(
    conjunct, binding_columns, order, deepest
) -> JoinConjunct | None:
    """``a.x = b.y`` → a :class:`JoinConjunct` for the *deepest* binding
    (the probe target); ``build`` is the shallower binding's key
    expression."""
    if not (isinstance(conjunct, ast.BinaryOp) and conjunct.op == "="):
        return None
    left = _ref_binding(conjunct.left, binding_columns)
    right = _ref_binding(conjunct.right, binding_columns)
    if left is None or right is None or left[0] == right[0]:
        return None
    if order[left[0]] == deepest:
        local, remote_expr = left, conjunct.right
    elif order[right[0]] == deepest:
        local, remote_expr = right, conjunct.left
    else:
        return None
    return JoinConjunct(conjunct, local[1], remote_expr)


# ----------------------------------------------------------------------
# Plan execution
# ----------------------------------------------------------------------


def build_equality_index(rows, cols: tuple[int, ...]) -> dict:
    """Hash *rows* (value tuples) by the values at *cols*.

    Keys are :func:`~repro.engine.values.sort_key`-wrapped so that
    cross-type numeric equality (``1 = 1.0``) matches exactly the rows
    ``sql_compare`` would accept. Rows with a NULL in any key column are
    excluded — NULL never compares equal. Buckets preserve input (tid)
    order, which is what keeps planned results byte-identical to the
    naive nested loop.
    """
    sort_key = V.sort_key
    index: dict = {}
    for row in rows:
        key = []
        for col in cols:
            value = row[col]
            if value is None:
                key = None
                break
            key.append(sort_key(value))
        if key is None:
            continue
        index.setdefault(tuple(key), []).append(row)
    return index


def _probe_key(values) -> tuple | None:
    """The index key for probe *values*, or None when any value is NULL."""
    key = []
    for value in values:
        if value is None:
            return None
        key.append(V.sort_key(value))
    return tuple(key)


def _persistent_index(provider, table_name: str, cols: tuple[int, ...]):
    """The provider-backed persistent index, or None when unavailable."""
    getter = getattr(provider, "equality_index", None)
    if getter is None:
        return None
    return getter(table_name, cols)


def _shard_table(provider, table_name: str):
    """The sharded base TableData behind *table_name*, or None.

    None when the provider cannot expose base storage for the name (an
    overlay, a transition table) or when the table is flat — in either
    case the caller falls back to the ordinary scan/index paths.
    """
    getter = getattr(provider, "shard_table", None)
    if getter is None:
        return None
    data = getter(table_name)
    if data is None or data.shard_count == 0:
        return None
    return data


def execute_planned(
    provider,
    select: ast.Select,
    sources: list[tuple[str, tuple[str, ...], list[tuple]]],
    outer_context: RowContext | None,
    evaluator: Evaluator,
    config=None,
) -> tuple[list[RowContext], list[list[tuple]], Plan]:
    """Run *select*'s plan; returns (matched contexts, raw rows, plan).

    The matched contexts and per-source raw rows are exactly what the
    naive cross-product filter produces, in the same order.

    When *config* enables partitioning and a scanned table is sharded,
    two partition-aware paths apply. A const probe whose columns pin
    the partition key resolves through the single shard the probe value
    hashes to (``shard_probes``) — sound because
    :func:`~repro.engine.partition.stable_shard` is equality-consistent,
    so every row the probe can match lives in that shard, and the
    shard-local bucket holds them in the same tid order as the global
    index. A pushed-down filter scan over a full sharded table fans out
    across shards on the worker pool (``fanout_scans``) and merges the
    survivors by tid, reproducing the serial scan's output
    byte-identically. (Error behavior on ill-typed filter predicates
    falls in the module's documented divergence class: a fan-out scan
    may surface a different row's error than the tid-ordered serial
    scan.)
    """
    source_columns = tuple((binding, columns) for binding, columns, __ in sources)
    plan = plan_select(select, source_columns)
    table_names = tuple(ref.name.lower() for ref in select.tables)

    matched: list[RowContext] = []
    matched_rows: list[list[tuple]] = []

    base = RowContext(outer=outer_context)
    for gate in plan.constant_gates:
        if not V.sql_is_truthy(gate(base, evaluator)):
            return matched, matched_rows, plan

    n = len(sources)
    pools: list = [None] * n
    join_indexes: list = [None] * n

    partitioned = config is not None and config.partitions > 1

    filter_context = RowContext(outer=outer_context)
    for i, source_plan in enumerate(plan.sources):
        binding, columns, rows = sources[i]
        table_data = (
            _shard_table(provider, table_names[i]) if partitioned else None
        )

        if source_plan.const_probes:
            probe_values = [
                value(base, evaluator) for __, value in source_plan.const_probes
            ]
            key = _probe_key(probe_values)
            if key is None:
                rows = []
            else:
                cols = tuple(col for col, __ in source_plan.const_probes)
                index = None
                if (
                    table_data is not None
                    and table_data.partition_column in cols
                    and len(rows) == len(table_data)
                ):
                    at = cols.index(table_data.partition_column)
                    shard = table_data.shard_of_value(probe_values[at])
                    index = table_data.shard_equality_index(shard, cols)
                    STATS.shard_probes += 1
                if index is None:
                    index = _persistent_index(provider, table_names[i], cols)
                if index is None:
                    index = build_equality_index(rows, cols)
                    STATS.transient_index_builds += 1
                rows = index.get(key, [])
                STATS.index_probes += 1

        if source_plan.filters:
            truthy = V.sql_is_truthy
            filters = source_plan.filters
            if (
                table_data is not None
                and not source_plan.const_probes
                and len(rows) == len(table_data)
                and len(rows) >= PART.FAN_OUT_MIN_ROWS
            ):
                # Pushed-down filters are subquery-free single-binding
                # conjuncts by construction (classify_select routes
                # anything ambiguous to residuals), so workers only
                # need a private RowContext each.
                def scan_shard(shard, binding=binding, columns=columns,
                               table_data=table_data):
                    def task():
                        context = RowContext(outer=outer_context)
                        kept = []
                        for row in table_data.shard_rows(shard):
                            context.bind(binding, columns, row.values)
                            for predicate in filters:
                                if not truthy(predicate(context, evaluator)):
                                    break
                            else:
                                kept.append((row.tid, row.values))
                        return kept
                    return task

                chunks = PART.map_shards(
                    scan_shard(shard)
                    for shard in range(table_data.shard_count)
                )
                merged = [pair for chunk in chunks for pair in chunk]
                merged.sort(key=lambda pair: pair[0])
                STATS.rows_scanned += len(rows)
                STATS.fanout_scans += 1
                rows = [values for __, values in merged]
            else:
                kept = []
                for row in rows:
                    filter_context.bind(binding, columns, row)
                    for predicate in filters:
                        if not truthy(predicate(filter_context, evaluator)):
                            break
                    else:
                        kept.append(row)
                STATS.rows_scanned += len(rows)
                rows = kept

        if source_plan.join_cols is not None:
            if not source_plan.filters and not source_plan.const_probes:
                index = _persistent_index(
                    provider, table_names[i], source_plan.join_cols
                )
                if index is None:
                    index = build_equality_index(rows, source_plan.join_cols)
                    STATS.transient_index_builds += 1
            else:
                index = build_equality_index(rows, source_plan.join_cols)
                STATS.transient_index_builds += 1
            join_indexes[i] = index
        else:
            pools[i] = rows

    # Left-deep nested enumeration in FROM order. Probe levels pull their
    # candidates from a hash bucket (a tid-ordered subsequence of the
    # scan), so the emitted order matches the naive cross product.
    truthy = V.sql_is_truthy
    context = RowContext(outer=outer_context)
    raw: list = []

    def enumerate_level(level: int) -> None:
        if level == n:
            snapshot = RowContext(outer=outer_context)
            captured = list(raw)
            for (name, columns, __), row in zip(sources, captured):
                snapshot.bind(name, columns, row)
            matched.append(snapshot)
            matched_rows.append(captured)
            return
        source_plan = plan.sources[level]
        binding, columns, __ = sources[level]
        if source_plan.join_cols is not None:
            key = _probe_key(
                [value(context, evaluator) for value in source_plan.join_values]
            )
            candidates = () if key is None else join_indexes[level].get(key, ())
            STATS.hash_join_probes += 1
        else:
            candidates = pools[level]
        residuals = source_plan.residuals
        for row in candidates:
            context.bind(binding, columns, row)
            raw.append(row)
            for predicate in residuals:
                if not truthy(predicate(context, evaluator)):
                    break
            else:
                enumerate_level(level + 1)
            raw.pop()

    enumerate_level(0)
    return matched, matched_rows, plan


def clear_caches() -> None:
    """Drop the plan and predicate memo tables (tests and benchmarks)."""
    _PLAN_CACHE.clear()
    _PREDICATE_CACHE.clear()
    _CLASSIFY_CACHE.clear()
