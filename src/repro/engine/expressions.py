"""Expression evaluation over row contexts.

A :class:`RowContext` binds table names (or aliases) to concrete rows;
contexts chain to an optional outer context, which is how correlated
subqueries see the enclosing query's row. The :class:`Evaluator` walks
expression ASTs, delegating subqueries back to
:mod:`repro.engine.query` (imported lazily to avoid a module cycle).
"""

from __future__ import annotations

from repro.config import _UNSET, ExecutionConfig, resolve_config
from repro.engine import values as V
from repro.errors import EvaluationError, QueryError
from repro.lang import ast


class RowContext:
    """Bindings from table/alias names to (column names, row values)."""

    def __init__(self, outer: "RowContext | None" = None) -> None:
        self._bindings: dict[str, tuple[tuple[str, ...], tuple]] = {}
        self._outer = outer

    def bind(self, name: str, columns: tuple[str, ...], row: tuple) -> None:
        self._bindings[name.lower()] = (columns, row)

    def child(self) -> "RowContext":
        return RowContext(outer=self)

    def lookup_qualified(self, table: str, column: str):
        """Resolve ``table.column``, walking outward through contexts."""
        context: RowContext | None = self
        table = table.lower()
        column = column.lower()
        while context is not None:
            binding = context._bindings.get(table)
            if binding is not None:
                columns, row = binding
                if column in columns:
                    return row[columns.index(column)]
                raise EvaluationError(
                    f"table {table!r} has no column {column!r}"
                )
            context = context._outer
        raise EvaluationError(f"unknown table or alias {table!r}")

    def lookup_row(self, name: str) -> tuple:
        """The raw row bound to *name* at this context level."""
        binding = self._bindings.get(name.lower())
        if binding is None:
            raise EvaluationError(f"unknown table or alias {name!r}")
        return binding[1]

    def lookup_unqualified(self, column: str):
        """Resolve a bare column name.

        The innermost context level that knows the column wins; within
        one level the column must be unambiguous.
        """
        context: RowContext | None = self
        column = column.lower()
        while context is not None:
            matches = []
            for columns, row in context._bindings.values():
                if column in columns:
                    matches.append(row[columns.index(column)])
            if len(matches) == 1:
                return matches[0]
            if len(matches) > 1:
                raise EvaluationError(f"ambiguous column {column!r}")
            context = context._outer
        raise EvaluationError(f"unknown column {column!r}")


class Evaluator:
    """Evaluates expressions against a table provider and a row context.

    ``provider`` must implement ``resolve(name) -> (columns, rows)``; it
    is only consulted when a subquery must be executed. The execution
    options arrive as an :class:`~repro.config.ExecutionConfig` (the
    ``config.planner`` field selects the execution path for subqueries,
    so a naive-path query stays naive all the way down); the legacy
    ``planner=`` keyword still works behind a ``DeprecationWarning``.
    """

    def __init__(
        self,
        provider,
        planner: object = _UNSET,
        *,
        config: ExecutionConfig | None = None,
    ) -> None:
        self._provider = provider
        self._config = resolve_config(config, "Evaluator", planner=planner)
        self._planner = self._config.planner

    def evaluate(self, expr: ast.Expression, context: RowContext):
        if isinstance(expr, ast.Literal):
            return expr.value

        if isinstance(expr, ast.ColumnRef):
            if expr.table:
                return context.lookup_qualified(expr.table, expr.column)
            return context.lookup_unqualified(expr.column)

        if isinstance(expr, ast.BinaryOp):
            return self._evaluate_binary(expr, context)

        if isinstance(expr, ast.UnaryOp):
            operand = self.evaluate(expr.operand, context)
            if expr.op == "not":
                return V.sql_not(self._as_bool(operand))
            if expr.op == "-":
                if operand is None:
                    return None
                if isinstance(operand, bool) or not isinstance(
                    operand, (int, float)
                ):
                    raise EvaluationError("unary '-' needs a numeric operand")
                return -operand
            raise EvaluationError(f"unknown unary operator {expr.op!r}")

        if isinstance(expr, ast.IsNull):
            result = self.evaluate(expr.operand, context) is None
            return (not result) if expr.negated else result

        if isinstance(expr, ast.Between):
            operand = self.evaluate(expr.operand, context)
            low = self.evaluate(expr.low, context)
            high = self.evaluate(expr.high, context)
            result = V.sql_and(
                V.sql_compare(">=", operand, low),
                V.sql_compare("<=", operand, high),
            )
            return V.sql_not(result) if expr.negated else result

        if isinstance(expr, ast.InList):
            return self._evaluate_in(
                self.evaluate(expr.operand, context),
                [self.evaluate(item, context) for item in expr.items],
                expr.negated,
            )

        if isinstance(expr, ast.InSubquery):
            rows = self._run_subquery(expr.subquery, context)
            for row in rows:
                if len(row) != 1:
                    raise QueryError("IN subquery must produce one column")
            return self._evaluate_in(
                self.evaluate(expr.operand, context),
                [row[0] for row in rows],
                expr.negated,
            )

        if isinstance(expr, ast.Exists):
            rows = self._run_subquery(expr.subquery, context)
            result = bool(rows)
            return (not result) if expr.negated else result

        if isinstance(expr, ast.ScalarSubquery):
            rows = self._run_subquery(expr.subquery, context)
            if not rows:
                return None
            if len(rows) > 1:
                raise QueryError("scalar subquery produced more than one row")
            if len(rows[0]) != 1:
                raise QueryError("scalar subquery must produce one column")
            return rows[0][0]

        if isinstance(expr, ast.FuncCall):
            if expr.name in ast.AGGREGATE_FUNCTIONS:
                raise QueryError(
                    f"aggregate {expr.name}() is only allowed in SELECT items"
                )
            args = [self.evaluate(arg, context) for arg in expr.args]
            return V.sql_scalar_function(expr.name, args)

        raise EvaluationError(
            f"unsupported expression type: {type(expr).__name__}"
        )

    # ------------------------------------------------------------------

    def _evaluate_binary(self, expr: ast.BinaryOp, context: RowContext):
        op = expr.op
        if op == "and":
            # Short-circuit where possible, but preserve Kleene semantics.
            left = self._as_bool(self.evaluate(expr.left, context))
            if left is False:
                return False
            right = self._as_bool(self.evaluate(expr.right, context))
            return V.sql_and(left, right)
        if op == "or":
            left = self._as_bool(self.evaluate(expr.left, context))
            if left is True:
                return True
            right = self._as_bool(self.evaluate(expr.right, context))
            return V.sql_or(left, right)

        left = self.evaluate(expr.left, context)
        right = self.evaluate(expr.right, context)
        if op in ("=", "<>", "<", "<=", ">", ">="):
            return V.sql_compare(op, left, right)
        if op in ("+", "-", "*", "/", "%", "||"):
            return V.sql_arithmetic(op, left, right)
        if op == "like":
            return V.sql_like(left, right)
        if op == "not like":
            return V.sql_not(V.sql_like(left, right))
        raise EvaluationError(f"unknown binary operator {op!r}")

    @staticmethod
    def _as_bool(value) -> bool | None:
        if value is None or isinstance(value, bool):
            return value
        raise EvaluationError(
            f"expected a boolean, got {type(value).__name__}"
        )

    @staticmethod
    def _evaluate_in(needle, haystack: list, negated: bool) -> bool | None:
        if needle is None:
            return None
        found = False
        saw_null = False
        for candidate in haystack:
            if candidate is None:
                saw_null = True
                continue
            if V.sql_compare("=", needle, candidate) is True:
                found = True
                break
        if found:
            return False if negated else True
        if saw_null:
            return None
        return True if negated else False

    def _run_subquery(
        self, select: ast.Select, context: RowContext
    ) -> list[tuple]:
        from repro.engine.query import execute_select

        return execute_select(
            self._provider, select, outer_context=context, config=self._config
        ).rows
