"""Tuple storage for one table.

Every stored tuple carries a surrogate *tuple id* (tid), unique across
the whole database for its lifetime. Tids let the transition machinery
of :mod:`repro.transitions` track the history of an individual tuple
across multiple operations, which is what the net-effect composition
rules of [WF90] are defined over.

Copy-on-write. :meth:`TableData.copy` aliases the tid map and marks
both sides shared; the first mutation on either side copies the map
once. The execution-graph explorer forks the whole database at every
branch, so snapshots are O(tables) and only tables a branch actually
writes ever pay the O(rows) copy. The canonical form and the sorted
row list are memoized with write-invalidated dirty bits — and both
caches survive a copy, so a fork that never writes a table re-uses its
parent's sort work.
"""

from __future__ import annotations

from repro.engine.values import row_sort_key, sort_key
from repro.errors import ExecutionError


class Row:
    """A stored tuple: its tid and its column values (schema order)."""

    __slots__ = ("tid", "values")

    def __init__(self, tid: int, values: tuple) -> None:
        self.tid = tid
        self.values = values

    def value(self, index: int):
        return self.values[index]

    def __eq__(self, other) -> bool:
        if not isinstance(other, Row):
            return NotImplemented
        return self.tid == other.tid and self.values == other.values

    def __hash__(self) -> int:
        return hash((self.tid, self.values))

    def __repr__(self) -> str:
        return f"Row(tid={self.tid}, values={self.values!r})"


class TableData:
    """The extension of one table: a tid-keyed map of value tuples."""

    __slots__ = (
        "name",
        "arity",
        "_rows",
        "_shared",
        "_canonical",
        "_row_list",
        "_values_list",
        "_indexes",
    )

    def __init__(self, name: str, arity: int) -> None:
        self.name = name
        self.arity = arity
        self._rows: dict[int, tuple] = {}
        #: True while ``_rows`` is aliased by another TableData (copy-on-write)
        self._shared = False
        #: memoized canonical() — None when dirty
        self._canonical: tuple | None = None
        #: memoized rows() result (tid order) — None when dirty
        self._row_list: list[Row] | None = None
        #: memoized value_tuples() result (tid order) — None when dirty
        self._values_list: list[tuple] | None = None
        #: memoized equality indexes, column-index-tuple -> key -> rows.
        #: Shared with copy-on-write clones; writes never mutate a
        #: possibly-aliased dict — they replace it (see :meth:`_own`).
        self._indexes: dict[tuple[int, ...], dict] = {}

    def _own(self) -> None:
        if self._shared:
            self._rows = dict(self._rows)
            self._shared = False
            # The index cache may be aliased by the other side of the
            # share; start a fresh one rather than mutating it.
            self._indexes = {}

    def insert(self, tid: int, values: tuple) -> None:
        if len(values) != self.arity:
            raise ExecutionError(
                f"table {self.name!r} expects {self.arity} values, "
                f"got {len(values)}"
            )
        if tid in self._rows:
            raise ExecutionError(f"duplicate tid {tid} in table {self.name!r}")
        self._own()
        self._rows[tid] = values
        self._canonical = None
        self._row_list = None
        self._values_list = None
        if self._indexes:
            # Inserts maintain existing indexes incrementally: tids are
            # allocated monotonically, so appending keeps bucket (tid)
            # order. NULL keys stay excluded.
            for cols, index in self._indexes.items():
                key = []
                for col in cols:
                    value = values[col]
                    if value is None:
                        key = None
                        break
                    key.append(sort_key(value))
                if key is not None:
                    index.setdefault(tuple(key), []).append(values)

    def delete(self, tid: int) -> tuple:
        if tid not in self._rows:
            raise ExecutionError(f"no tid {tid} in table {self.name!r}")
        self._own()
        self._canonical = None
        self._row_list = None
        self._values_list = None
        self._indexes = {}
        return self._rows.pop(tid)

    def update(self, tid: int, values: tuple) -> tuple:
        """Replace the values at *tid*; returns the old values."""
        if tid not in self._rows:
            raise ExecutionError(f"no tid {tid} in table {self.name!r}")
        if len(values) != self.arity:
            raise ExecutionError(
                f"table {self.name!r} expects {self.arity} values, "
                f"got {len(values)}"
            )
        self._own()
        old = self._rows[tid]
        self._rows[tid] = values
        self._canonical = None
        self._row_list = None
        self._values_list = None
        self._indexes = {}
        return old

    def get(self, tid: int) -> tuple | None:
        return self._rows.get(tid)

    def rows(self) -> list[Row]:
        """All rows, in tid order (deterministic iteration).

        The returned list is cached and shared; callers must not
        mutate it.
        """
        if self._row_list is None:
            rows = self._rows
            self._row_list = [Row(tid, rows[tid]) for tid in sorted(rows)]
        return self._row_list

    def value_tuples(self) -> list[tuple]:
        """All value tuples, in tid order.

        The returned list is cached and shared (like :meth:`rows`);
        callers must not mutate it.
        """
        if self._values_list is None:
            self._values_list = [row.values for row in self.rows()]
        return self._values_list

    def equality_index(self, cols: tuple[int, ...]) -> dict:
        """A hash index over the columns at indexes *cols*.

        Maps :func:`~repro.engine.values.sort_key`-wrapped key tuples to
        value-tuple buckets in tid order; rows with a NULL key column are
        excluded (NULL never compares equal). The index is memoized like
        :meth:`canonical`: it survives copy-on-write :meth:`copy` forks,
        advances incrementally under inserts, and invalidates on
        deletes/updates (and on the first write after a fork). Callers
        must not mutate the returned dict or its buckets.
        """
        index = self._indexes.get(cols)
        if index is None:
            from repro.engine.plan import STATS, build_equality_index

            index = build_equality_index(self.value_tuples(), cols)
            self._indexes[cols] = index
            STATS.index_builds += 1
        return index

    def items(self) -> list[tuple[int, tuple]]:
        """All (tid, values) pairs in tid order.

        The WAL checkpoint frame serializes exactly this — tids
        included, so a recovered table is identical at tuple-identity
        granularity, not just canonically. Reuses the :meth:`rows`
        memo rather than re-sorting the tid map.
        """
        return [(row.tid, row.values) for row in self.rows()]

    def apply_effect(self, effect) -> None:
        """Apply a :class:`~repro.transitions.net_effect.TableNetEffect`.

        The three maps of a net effect are disjoint over tids (deletes
        and updates reference pre-transition tids, inserts allocate new
        ones), so the application order — deletes, updates, inserts —
        is the unique sequential order consistent with any primitive
        sequence that folds to *effect*. WAL recovery replays each
        committed transaction this way: the log records raw
        :class:`~repro.transitions.delta.Primitive` frames, and replay
        is ``NetEffect.fold`` over them followed by this application.
        """
        for tid in effect.deleted:
            self.delete(tid)
        for tid, (__, new) in effect.updated.items():
            self.update(tid, new)
        for tid, values in effect.inserted.items():
            self.insert(tid, values)

    def canonical(self) -> tuple:
        """The table's contents as a sorted bag of value tuples.

        Tids are deliberately excluded: two database states are "the
        same" (for execution-graph state identity and for confluence
        checking) when they hold the same bags of tuples, regardless of
        internal surrogate ids.
        """
        if self._canonical is None:
            self._canonical = tuple(
                sorted(self._rows.values(), key=row_sort_key)
            )
        return self._canonical

    def copy(self, cow: bool = True) -> "TableData":
        """A copy of this table's extension.

        With ``cow`` (the default) the tid map is aliased and both
        sides marked shared — O(1), the first write on either side pays
        the O(rows) copy. ``cow=False`` copies eagerly (the seed
        behavior, kept for benchmarking the non-incremental substrate).
        """
        clone = TableData(self.name, self.arity)
        if cow:
            self._shared = True
            clone._rows = self._rows
            clone._shared = True
            clone._canonical = self._canonical
            clone._row_list = self._row_list
            clone._values_list = self._values_list
            # Index cache sharing is safe: the first write on either
            # side replaces (never mutates) its _indexes dict via _own.
            clone._indexes = self._indexes
        else:
            clone._rows = dict(self._rows)
        return clone

    def __len__(self) -> int:
        return len(self._rows)

    def __contains__(self, tid: int) -> bool:
        return tid in self._rows

    def __repr__(self) -> str:
        return f"TableData({self.name}, {len(self._rows)} rows)"
