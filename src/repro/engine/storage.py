"""Tuple storage for one table.

Every stored tuple carries a surrogate *tuple id* (tid), unique across
the whole database for its lifetime. Tids let the transition machinery
of :mod:`repro.transitions` track the history of an individual tuple
across multiple operations, which is what the net-effect composition
rules of [WF90] are defined over.

Copy-on-write. :meth:`TableData.copy` aliases the tid map and marks
both sides shared; the first mutation on either side copies the map
once. The execution-graph explorer forks the whole database at every
branch, so snapshots are O(tables) and only tables a branch actually
writes ever pay the O(rows) copy. The canonical form and the sorted
row list are memoized with write-invalidated dirty bits — and both
caches survive a copy, so a fork that never writes a table re-uses its
parent's sort work.

Equality indexes are maintained *incrementally* under all three
primitive operations: inserts append to their bucket (bisecting only
when a tid arrives out of order, e.g. during WAL replay), deletes
bisect the bucket's parallel tid list and splice both lists, and
updates either patch the row in place (key unchanged) or move it
between buckets at its tid position. Buckets therefore stay in tid
order — the property the planned executor's byte-identical-results
guarantee rests on — without the old drop-everything invalidation that
forced an O(rows) rebuild after every DELETE/UPDATE statement.
``PlannerStats.index_maintains`` counts these incremental advances
against ``index_builds`` (full rebuilds). The first write after a
copy-on-write fork clones the index structures instead of dropping
them: a dict/list copy is far cheaper than re-deriving the same index
with per-row key extraction.

Sharding. :meth:`TableData.shard` hash-partitions the tid map into P
shards on a declared key column (:func:`repro.engine.partition.stable_shard`),
each shard with its own tid-ordered row memo and its own equality-index
cache. The flat ``_rows`` map stays authoritative — every existing
caller sees the exact same table — while partition-aware paths
(:mod:`repro.engine.dml` target scans, :mod:`repro.engine.plan`
fan-out) read single shards: an equality conjunct on the partition key
prunes a scan to one shard, and shard-local index caches survive
writes to the *other* shards' rows.
"""

from __future__ import annotations

from bisect import bisect_left, insort

from repro.engine.partition import stable_shard
from repro.engine.values import row_sort_key, sort_key
from repro.errors import ExecutionError

_PLAN_STATS = None


def _plan_stats():
    """The planner's counter bag (lazy import: plan imports the engine
    stack that imports this module)."""
    global _PLAN_STATS
    if _PLAN_STATS is None:
        from repro.engine.plan import STATS

        _PLAN_STATS = STATS
    return _PLAN_STATS


class Row:
    """A stored tuple: its tid and its column values (schema order)."""

    __slots__ = ("tid", "values")

    def __init__(self, tid: int, values: tuple) -> None:
        self.tid = tid
        self.values = values

    def value(self, index: int):
        return self.values[index]

    def __eq__(self, other) -> bool:
        if not isinstance(other, Row):
            return NotImplemented
        return self.tid == other.tid and self.values == other.values

    def __hash__(self) -> int:
        return hash((self.tid, self.values))

    def __repr__(self) -> str:
        return f"Row(tid={self.tid}, values={self.values!r})"


def index_key(values: tuple, cols: tuple[int, ...]) -> tuple | None:
    """The sort_key-wrapped index key of *values* at *cols* (None when
    any key column is NULL — NULL never compares equal)."""
    key = []
    for col in cols:
        value = values[col]
        if value is None:
            return None
        key.append(sort_key(value))
    return tuple(key)


class _EqualityIndexes:
    """The equality indexes over one row population (a table or shard).

    ``buckets[cols][key]`` is the value-tuple list consumers iterate
    (tid order); ``tids[cols][key]`` is the parallel tid list that makes
    deletes and updates O(log bucket) splices instead of full rebuilds.
    """

    __slots__ = ("buckets", "tids")

    def __init__(self) -> None:
        self.buckets: dict[tuple[int, ...], dict] = {}
        self.tids: dict[tuple[int, ...], dict] = {}

    def __bool__(self) -> bool:
        return bool(self.buckets)

    def build(self, cols: tuple[int, ...], rows: list[Row]) -> dict:
        bucket: dict = {}
        tids: dict = {}
        for row in rows:
            key = index_key(row.values, cols)
            if key is not None:
                bucket.setdefault(key, []).append(row.values)
                tids.setdefault(key, []).append(row.tid)
        # Publish tids before buckets: concurrent readers (parallel
        # batch forks sharing this structure copy-on-write) key on
        # ``buckets``, so any cols visible there has its tid list too.
        self.tids[cols] = tids
        self.buckets[cols] = bucket
        _plan_stats().index_builds += 1
        return bucket

    def insert(self, tid: int, values: tuple) -> None:
        stats = _plan_stats()
        for cols, bucket in self.buckets.items():
            key = index_key(values, cols)
            if key is None:
                continue
            tid_list = self.tids[cols].setdefault(key, [])
            row_list = bucket.setdefault(key, [])
            if not tid_list or tid > tid_list[-1]:
                tid_list.append(tid)
                row_list.append(values)
            else:
                # Out-of-order tid (WAL replay, hand-built fixtures):
                # splice at the tid position to preserve bucket order.
                at = bisect_left(tid_list, tid)
                tid_list.insert(at, tid)
                row_list.insert(at, values)
            stats.index_maintains += 1

    def delete(self, tid: int, values: tuple) -> None:
        stats = _plan_stats()
        for cols, bucket in self.buckets.items():
            key = index_key(values, cols)
            if key is None:
                continue
            tid_list = self.tids[cols].get(key)
            if not tid_list:
                continue
            at = bisect_left(tid_list, tid)
            if at < len(tid_list) and tid_list[at] == tid:
                del tid_list[at]
                del bucket[key][at]
                if not tid_list:
                    del self.tids[cols][key]
                    del bucket[key]
            stats.index_maintains += 1

    def update(self, tid: int, old: tuple, new: tuple) -> None:
        stats = _plan_stats()
        for cols, bucket in self.buckets.items():
            old_key = index_key(old, cols)
            new_key = index_key(new, cols)
            if old_key == new_key:
                if old_key is not None:
                    tid_list = self.tids[cols][old_key]
                    at = bisect_left(tid_list, tid)
                    bucket[old_key][at] = new
                stats.index_maintains += 1
                continue
            if old_key is not None:
                tid_list = self.tids[cols][old_key]
                at = bisect_left(tid_list, tid)
                del tid_list[at]
                del bucket[old_key][at]
                if not tid_list:
                    del self.tids[cols][old_key]
                    del bucket[old_key]
            if new_key is not None:
                tid_list = self.tids[cols].setdefault(new_key, [])
                at = bisect_left(tid_list, tid)
                tid_list.insert(at, tid)
                bucket.setdefault(new_key, []).insert(at, new)
            stats.index_maintains += 1

    def copy(self) -> "_EqualityIndexes":
        """A structurally independent copy (the first-write-after-fork
        path: cheaper than rebuilding, safe to maintain in place)."""
        clone = _EqualityIndexes()
        clone.buckets = {
            cols: {key: list(rows) for key, rows in bucket.items()}
            for cols, bucket in self.buckets.items()
        }
        clone.tids = {
            cols: {key: list(tids) for key, tids in bucket.items()}
            for cols, bucket in self.tids.items()
        }
        return clone


class TableData:
    """The extension of one table: a tid-keyed map of value tuples."""

    __slots__ = (
        "name",
        "arity",
        "_rows",
        "_shared",
        "_canonical",
        "_row_list",
        "_values_list",
        "_indexes",
        "_partition",
        "_shards",
        "_shard_rows",
        "_shard_indexes",
    )

    def __init__(self, name: str, arity: int) -> None:
        self.name = name
        self.arity = arity
        self._rows: dict[int, tuple] = {}
        #: True while ``_rows`` is aliased by another TableData (copy-on-write)
        self._shared = False
        #: memoized canonical() — None when dirty
        self._canonical: tuple | None = None
        #: memoized rows() result (tid order) — None when dirty
        self._row_list: list[Row] | None = None
        #: memoized value_tuples() result (tid order) — None when dirty
        self._values_list: list[tuple] | None = None
        #: equality indexes, maintained incrementally under writes.
        #: Shared with copy-on-write clones; the first write on either
        #: side deep-copies the structure (see :meth:`_own`).
        self._indexes = _EqualityIndexes()
        #: (key column index, shard count) when hash-partitioned
        self._partition: tuple[int, int] | None = None
        #: per-shard tid maps mirroring ``_rows`` (None when flat)
        self._shards: list[dict[int, tuple]] | None = None
        #: per-shard memoized tid-ordered Row lists (entries None when dirty)
        self._shard_rows: list[list[Row] | None] | None = None
        #: per-shard equality-index caches
        self._shard_indexes: list[_EqualityIndexes] | None = None

    def _own(self) -> None:
        if self._shared:
            self._rows = dict(self._rows)
            self._shared = False
            # The index and shard structures may be aliased by the other
            # side of the share; clone them (cheaper than the rebuild the
            # old drop-on-write discipline forced) before mutating.
            self._indexes = self._indexes.copy()
            if self._shards is not None:
                self._shards = [dict(shard) for shard in self._shards]
                self._shard_rows = list(self._shard_rows)
                self._shard_indexes = [
                    indexes.copy() for indexes in self._shard_indexes
                ]

    # ------------------------------------------------------------------
    # Partitioning
    # ------------------------------------------------------------------

    @property
    def shard_count(self) -> int:
        """How many shards this table is hash-partitioned into (0 = flat)."""
        return self._partition[1] if self._partition is not None else 0

    @property
    def partition_column(self) -> int | None:
        """The partition-key column index, or None when flat."""
        return self._partition[0] if self._partition is not None else None

    def shard(self, column: int, count: int) -> None:
        """Hash-partition the table into *count* shards on *column*.

        Builds fresh shard structures from the current rows (O(rows),
        paid once per session); the flat tid map stays authoritative so
        every non-partition-aware caller is unaffected. Safe on a
        shared (copy-on-write) table: nothing aliased is mutated.
        """
        if not 0 <= column < self.arity:
            raise ExecutionError(
                f"table {self.name!r} has no column index {column}"
            )
        if count < 1:
            raise ExecutionError(f"shard count must be >= 1, got {count}")
        shards: list[dict[int, tuple]] = [{} for __ in range(count)]
        for tid, values in self._rows.items():
            shards[stable_shard(values[column], count)][tid] = values
        self._partition = (column, count)
        self._shards = shards
        self._shard_rows = [None] * count
        self._shard_indexes = [_EqualityIndexes() for __ in range(count)]

    def shard_of_value(self, value) -> int:
        """The shard a partition-key *value* hashes to."""
        if self._partition is None:
            raise ExecutionError(f"table {self.name!r} is not partitioned")
        return stable_shard(value, self._partition[1])

    def shard_rows(self, shard: int) -> list[Row]:
        """One shard's rows, in tid order (memoized like :meth:`rows`).

        The returned list is cached and shared; callers must not
        mutate it.
        """
        rows = self._shard_rows[shard]
        if rows is None:
            source = self._shards[shard]
            rows = [Row(tid, source[tid]) for tid in sorted(source)]
            self._shard_rows[shard] = rows
        return rows

    def shard_equality_index(self, shard: int, cols: tuple[int, ...]) -> dict:
        """One shard's hash index over *cols* (shard-local memo).

        Same contract as :meth:`equality_index`, restricted to the
        shard's rows. Because every row with a given partition-key value
        lives in one shard, probing this index with a key that pins the
        partition column returns exactly the global index's bucket —
        while surviving writes to every other shard.
        """
        indexes = self._shard_indexes[shard]
        index = indexes.buckets.get(cols)
        if index is None:
            index = indexes.build(cols, self.shard_rows(shard))
        return index

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def insert(self, tid: int, values: tuple) -> None:
        if len(values) != self.arity:
            raise ExecutionError(
                f"table {self.name!r} expects {self.arity} values, "
                f"got {len(values)}"
            )
        if tid in self._rows:
            raise ExecutionError(f"duplicate tid {tid} in table {self.name!r}")
        self._own()
        self._rows[tid] = values
        self._canonical = None
        self._row_list = None
        self._values_list = None
        self._indexes.insert(tid, values)
        if self._shards is not None:
            shard = stable_shard(values[self._partition[0]], self._partition[1])
            self._shards[shard][tid] = values
            self._shard_rows[shard] = None
            self._shard_indexes[shard].insert(tid, values)

    def delete(self, tid: int) -> tuple:
        if tid not in self._rows:
            raise ExecutionError(f"no tid {tid} in table {self.name!r}")
        self._own()
        self._canonical = None
        self._row_list = None
        self._values_list = None
        old = self._rows.pop(tid)
        self._indexes.delete(tid, old)
        if self._shards is not None:
            shard = stable_shard(old[self._partition[0]], self._partition[1])
            del self._shards[shard][tid]
            self._shard_rows[shard] = None
            self._shard_indexes[shard].delete(tid, old)
        return old

    def update(self, tid: int, values: tuple) -> tuple:
        """Replace the values at *tid*; returns the old values."""
        if tid not in self._rows:
            raise ExecutionError(f"no tid {tid} in table {self.name!r}")
        if len(values) != self.arity:
            raise ExecutionError(
                f"table {self.name!r} expects {self.arity} values, "
                f"got {len(values)}"
            )
        self._own()
        old = self._rows[tid]
        self._rows[tid] = values
        self._canonical = None
        self._row_list = None
        self._values_list = None
        self._indexes.update(tid, old, values)
        if self._shards is not None:
            column, count = self._partition
            old_shard = stable_shard(old[column], count)
            new_shard = stable_shard(values[column], count)
            if old_shard == new_shard:
                self._shards[old_shard][tid] = values
                self._shard_rows[old_shard] = None
                self._shard_indexes[old_shard].update(tid, old, values)
            else:
                del self._shards[old_shard][tid]
                self._shards[new_shard][tid] = values
                self._shard_rows[old_shard] = None
                self._shard_rows[new_shard] = None
                self._shard_indexes[old_shard].delete(tid, old)
                self._shard_indexes[new_shard].insert(tid, values)
        return old

    def get(self, tid: int) -> tuple | None:
        return self._rows.get(tid)

    def rows(self) -> list[Row]:
        """All rows, in tid order (deterministic iteration).

        The returned list is cached and shared; callers must not
        mutate it.
        """
        if self._row_list is None:
            rows = self._rows
            self._row_list = [Row(tid, rows[tid]) for tid in sorted(rows)]
        return self._row_list

    def value_tuples(self) -> list[tuple]:
        """All value tuples, in tid order.

        The returned list is cached and shared (like :meth:`rows`);
        callers must not mutate it.
        """
        if self._values_list is None:
            self._values_list = [row.values for row in self.rows()]
        return self._values_list

    def equality_index(self, cols: tuple[int, ...]) -> dict:
        """A hash index over the columns at indexes *cols*.

        Maps :func:`~repro.engine.values.sort_key`-wrapped key tuples to
        value-tuple buckets in tid order; rows with a NULL key column are
        excluded (NULL never compares equal). The index is memoized like
        :meth:`canonical`: it survives copy-on-write :meth:`copy` forks
        and advances incrementally under inserts, deletes *and* updates
        (``PlannerStats.index_maintains``); only the first probe pays
        the O(rows) build (``index_builds``). Callers must not mutate
        the returned dict or its buckets.
        """
        index = self._indexes.buckets.get(cols)
        if index is None:
            index = self._indexes.build(cols, self.rows())
        return index

    def items(self) -> list[tuple[int, tuple]]:
        """All (tid, values) pairs in tid order.

        The WAL checkpoint frame serializes exactly this — tids
        included, so a recovered table is identical at tuple-identity
        granularity, not just canonically. Reuses the :meth:`rows`
        memo rather than re-sorting the tid map.
        """
        return [(row.tid, row.values) for row in self.rows()]

    def apply_effect(self, effect) -> None:
        """Apply a :class:`~repro.transitions.net_effect.TableNetEffect`.

        The three maps of a net effect are disjoint over tids (deletes
        and updates reference pre-transition tids, inserts allocate new
        ones), so the application order — deletes, updates, inserts —
        is the unique sequential order consistent with any primitive
        sequence that folds to *effect*. WAL recovery replays each
        committed transaction this way: the log records raw
        :class:`~repro.transitions.delta.Primitive` frames, and replay
        is ``NetEffect.fold`` over them followed by this application.
        """
        for tid in effect.deleted:
            self.delete(tid)
        for tid, (__, new) in effect.updated.items():
            self.update(tid, new)
        for tid, values in effect.inserted.items():
            self.insert(tid, values)

    def canonical(self) -> tuple:
        """The table's contents as a sorted bag of value tuples.

        Tids are deliberately excluded: two database states are "the
        same" (for execution-graph state identity and for confluence
        checking) when they hold the same bags of tuples, regardless of
        internal surrogate ids.
        """
        if self._canonical is None:
            self._canonical = tuple(
                sorted(self._rows.values(), key=row_sort_key)
            )
        return self._canonical

    def copy(self, cow: bool = True) -> "TableData":
        """A copy of this table's extension.

        With ``cow`` (the default) the tid map is aliased and both
        sides marked shared — O(1), the first write on either side pays
        the O(rows) copy. ``cow=False`` copies eagerly (the seed
        behavior, kept for benchmarking the non-incremental substrate).
        The partition layout (shards, shard memos, shard index caches)
        rides along under the same discipline.
        """
        clone = TableData(self.name, self.arity)
        if cow:
            self._shared = True
            clone._rows = self._rows
            clone._shared = True
            clone._canonical = self._canonical
            clone._row_list = self._row_list
            clone._values_list = self._values_list
            # Index/shard cache sharing is safe: the first write on
            # either side clones (never mutates) the shared structures
            # via _own.
            clone._indexes = self._indexes
            clone._partition = self._partition
            clone._shards = self._shards
            clone._shard_rows = self._shard_rows
            clone._shard_indexes = self._shard_indexes
        else:
            clone._rows = dict(self._rows)
            if self._partition is not None:
                clone.shard(*self._partition)
        return clone

    def __len__(self) -> int:
        return len(self._rows)

    def __contains__(self, tid: int) -> bool:
        return tid in self._rows

    def __repr__(self) -> str:
        suffix = ""
        if self._partition is not None:
            suffix = f", {self._partition[1]} shards"
        return f"TableData({self.name}, {len(self._rows)} rows{suffix})"
