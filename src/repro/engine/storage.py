"""Tuple storage for one table.

Every stored tuple carries a surrogate *tuple id* (tid), unique across
the whole database for its lifetime. Tids let the transition machinery
of :mod:`repro.transitions` track the history of an individual tuple
across multiple operations, which is what the net-effect composition
rules of [WF90] are defined over.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine.values import row_sort_key
from repro.errors import ExecutionError


@dataclass(frozen=True)
class Row:
    """A stored tuple: its tid and its column values (schema order)."""

    tid: int
    values: tuple

    def value(self, index: int):
        return self.values[index]


class TableData:
    """The extension of one table: a tid-keyed map of value tuples."""

    def __init__(self, name: str, arity: int) -> None:
        self.name = name
        self.arity = arity
        self._rows: dict[int, tuple] = {}

    def insert(self, tid: int, values: tuple) -> None:
        if len(values) != self.arity:
            raise ExecutionError(
                f"table {self.name!r} expects {self.arity} values, "
                f"got {len(values)}"
            )
        if tid in self._rows:
            raise ExecutionError(f"duplicate tid {tid} in table {self.name!r}")
        self._rows[tid] = values

    def delete(self, tid: int) -> tuple:
        try:
            return self._rows.pop(tid)
        except KeyError:
            raise ExecutionError(
                f"no tid {tid} in table {self.name!r}"
            ) from None

    def update(self, tid: int, values: tuple) -> tuple:
        """Replace the values at *tid*; returns the old values."""
        if tid not in self._rows:
            raise ExecutionError(f"no tid {tid} in table {self.name!r}")
        if len(values) != self.arity:
            raise ExecutionError(
                f"table {self.name!r} expects {self.arity} values, "
                f"got {len(values)}"
            )
        old = self._rows[tid]
        self._rows[tid] = values
        return old

    def get(self, tid: int) -> tuple | None:
        return self._rows.get(tid)

    def rows(self) -> list[Row]:
        """All rows, in tid order (deterministic iteration)."""
        return [Row(tid, self._rows[tid]) for tid in sorted(self._rows)]

    def value_tuples(self) -> list[tuple]:
        return [self._rows[tid] for tid in sorted(self._rows)]

    def canonical(self) -> tuple:
        """The table's contents as a sorted bag of value tuples.

        Tids are deliberately excluded: two database states are "the
        same" (for execution-graph state identity and for confluence
        checking) when they hold the same bags of tuples, regardless of
        internal surrogate ids.
        """
        return tuple(sorted(self._rows.values(), key=row_sort_key))

    def copy(self) -> "TableData":
        clone = TableData(self.name, self.arity)
        clone._rows = dict(self._rows)
        return clone

    def __len__(self) -> int:
        return len(self._rows)

    def __contains__(self, tid: int) -> bool:
        return tid in self._rows

    def __repr__(self) -> str:
        return f"TableData({self.name}, {len(self._rows)} rows)"
