"""Command-line analyzer: ``starburst-analyze``.

Reads a schema spec and a rule file, runs the three analyses, and prints
the report the paper's interactive environment would show: verdicts,
isolated problem rules, and repair suggestions.

Usage::

    starburst-analyze --schema schema.txt rules.txt
    starburst-analyze --schema schema.txt rules.txt --tables stock,orders
    starburst-analyze --schema schema.txt rules.txt --json --stats
    starburst-analyze --schema schema.txt rules.txt --certify-commutes a,b \\
        --certify-termination shed_overload --order high,low
    starburst-analyze --schema schema.txt rules.txt \\
        --data data.txt --run "insert into orders values (1, 2)" --explore

The schema file holds lines of the form ``table: col1, col2, ...``
(append ``:string``/``:float``/``:bool`` to a column for non-integer
types). A data file holds lines ``table: (v, v, ...), (v, v, ...)``
with integer, float, quoted-string, true/false, or null values.

With ``--run`` the rules are also *executed*: the statements form the
initial transition, rule processing runs to quiescence with a full
trace, and the final table contents are printed. Adding ``--explore``
additionally enumerates every execution order (the Section 4 execution
graph) and reports the observed termination/confluence/determinism of
this concrete instance.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.analysis.analyzer import RuleAnalyzer
from repro.config import ExecutionConfig
from repro.engine import plan
from repro.engine import rete
from repro.engine.database import Database
from repro.errors import ReproError
from repro.lang.parser import Parser
from repro.rules.ruleset import RuleSet
from repro.runtime.exec_graph import explore
from repro.runtime.processor import RuleProcessor
from repro.runtime.trace import render_trace, trace_run
from repro.schema.catalog import Schema, schema_from_spec
from repro.stats import render_stats


def load_schema(path: str) -> Schema:
    spec: dict[str, list[str]] = {}
    with open(path) as handle:
        for raw_line in handle:
            line = raw_line.split("#", 1)[0].strip()
            if not line:
                continue
            table, __, columns = line.partition(":")
            spec[table.strip()] = [
                column.strip() for column in columns.split(",") if column.strip()
            ]
    return schema_from_spec(spec)


def load_data(path: str, schema: Schema) -> Database:
    """Load ``table: (v, ...), (v, ...)`` lines into a fresh database."""
    database = Database(schema)
    with open(path) as handle:
        for raw_line in handle:
            line = raw_line.split("#", 1)[0].strip()
            if not line:
                continue
            table, __, rows_text = line.partition(":")
            # Reuse the expression parser for the row tuples: a VALUES
            # clause has exactly the right shape.
            parser = Parser(f"insert into {table.strip()} values {rows_text}")
            statement = parser.parse_statement()
            from repro.engine.dml import execute_statement

            execute_statement(database, statement)
    return database


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="starburst-analyze",
        description=(
            "Static analysis of Starburst-style production rules: "
            "termination, confluence, observable determinism "
            "(Aiken/Widom/Hellerstein, SIGMOD 1992)."
        ),
    )
    parser.add_argument("rules", help="file of create-rule statements")
    parser.add_argument(
        "--schema", required=True, help="schema spec file (table: col, col, ...)"
    )
    parser.add_argument(
        "--tables",
        help="comma-separated tables: also analyze partial confluence w.r.t. them",
    )
    parser.add_argument(
        "--certify-commutes",
        action="append",
        default=[],
        metavar="RULE,RULE",
        help="declare that a pair of rules actually commutes (repeatable)",
    )
    parser.add_argument(
        "--certify-termination",
        action="append",
        default=[],
        metavar="RULE",
        help="declare that cycles through RULE make progress (repeatable)",
    )
    parser.add_argument(
        "--order",
        action="append",
        default=[],
        metavar="HIGHER,LOWER",
        help="add a priority ordering (repeatable)",
    )
    parser.add_argument(
        "--dataflow",
        action="store_true",
        help="judge Lemma 6.1 with the attribute-level dataflow "
        "refinement (column-precise read/write overlap tests; "
        "strictly pruning and sound)",
    )
    parser.add_argument(
        "--termination",
        choices=("tg", "stratified", "critical"),
        default="tg",
        help="termination analysis depth — 'tg' (plain Theorem 5.1 "
        "triggering-graph acyclicity, the default), 'stratified' "
        "(refined-graph edge pruning plus the stratification "
        "fixpoint), or 'critical' (additionally the critical-instance "
        "abstraction and a concrete non-termination witness search)",
    )
    parser.add_argument(
        "--witness-out",
        metavar="FILE.json",
        help="with --termination critical: write any non-termination "
        "witnesses (seed statements + looping trace, replayable via "
        "`repro replay-witness`) as JSON to FILE.json",
    )
    parser.add_argument(
        "--verbose",
        action="store_true",
        help="also print violations and repair suggestions",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the full analysis report as JSON on stdout "
        "(AnalysisReport.to_dict(); suppresses the human-readable output)",
    )
    parser.add_argument(
        "--stats",
        action="store_true",
        help="print the analysis engine's cache and timing counters "
        "(pairs judged, memo hits, invalidations, per-phase wall-clock) "
        "plus the query planner's counters (plans built/cached, index "
        "builds and probes, hash-join probes)",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="print per-phase wall time (parse, plan, triggering, pair "
        "analysis, and with --run execution/exploration) for perf triage",
    )
    parser.add_argument(
        "--report",
        metavar="FILE.md",
        help="write a full markdown analysis report to FILE.md",
    )
    parser.add_argument(
        "--dot",
        metavar="FILE.dot",
        help="write the triggering graph (with priorities and cycle "
        "highlighting) as Graphviz DOT to FILE.dot",
    )
    parser.add_argument(
        "--data",
        help="data file (table: (v, ...), ...) loaded before --run",
    )
    parser.add_argument(
        "--run",
        action="append",
        default=[],
        metavar="STATEMENT",
        help="execute STATEMENT as part of the initial transition, then "
        "process rules with a full trace (repeatable)",
    )
    parser.add_argument(
        "--explore",
        action="store_true",
        help="with --run: also enumerate every execution order and report "
        "the instance's observed behavior",
    )
    parser.add_argument(
        "--matching",
        choices=("rete", "planned", "naive"),
        default="planned",
        help="with --run: how rule conditions are matched at "
        "consideration time — 'rete' (incremental discrimination "
        "network, planned fallback for unsupported conditions), "
        "'planned' (compiled predicates, the default), or 'naive' "
        "(tree-walking reference evaluator and naive statement "
        "execution)",
    )
    parser.add_argument(
        "--durable",
        metavar="FILE.wal",
        help="with --run: log the transaction to a write-ahead log at "
        "FILE.wal and commit at quiescence; `repro recover FILE.wal` "
        "replays it after a crash",
    )
    parser.add_argument(
        "--scheduler",
        choices=("serial", "parallel"),
        default="serial",
        help="with --run: rule scheduling — 'serial' (one rule per "
        "round, the default) or 'parallel' (rules with a static "
        "partition or Definition 6.5 commutativity certificate run "
        "concurrently on copy-on-write forks; pairs without a proof "
        "serialize)",
    )
    parser.add_argument(
        "--partitions",
        type=int,
        default=1,
        metavar="P",
        help="with --run: hash-partition tables with declared partition "
        "keys into P shards (enables partition-pruned and fanned-out "
        "scans; default 1 = flat)",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)

    profile: dict[str, float] = {}
    try:
        started = time.perf_counter()
        schema = load_schema(args.schema)
        with open(args.rules) as handle:
            rules_text = handle.read()
        ruleset = RuleSet.parse(rules_text, schema)
        profile["parse"] = time.perf_counter() - started

        analyzer = RuleAnalyzer(ruleset, column_dataflow=args.dataflow)
        for pair in args.certify_commutes:
            first, __, second = pair.partition(",")
            analyzer.certify_commutes(first.strip(), second.strip())
        for rule in args.certify_termination:
            analyzer.certify_termination(rule.strip())
        for pair in args.order:
            higher, __, lower = pair.partition(",")
            analyzer.add_priority(higher.strip(), lower.strip())

        table_groups = []
        if args.tables:
            table_groups.append(
                [table.strip() for table in args.tables.split(",")]
            )
        started = time.perf_counter()
        report = analyzer.analyze(
            tables=table_groups,
            termination_mode=args.termination,
            rules_source=rules_text,
        )
        profile["pair_analysis"] = time.perf_counter() - started
    except (ReproError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    if args.json:
        import json

        payload = report.to_dict()
        if args.run:
            try:
                payload.update(_run_json(ruleset, schema, args, profile))
            except ReproError as error:
                print(f"error: {error}", file=sys.stderr)
                return 2
        if args.profile:
            payload["profile"] = _profile_section(profile)
        print(json.dumps(payload, indent=2))
    else:
        print(f"analyzed {len(ruleset)} rules over {len(schema)} tables")
        print(report.summary())

        if args.verbose:
            _print_details(report)

    layered = report.termination_report
    if args.witness_out:
        import json

        witnesses = layered.witnesses() if layered is not None else []
        with open(args.witness_out, "w") as handle:
            json.dump(
                [witness.to_dict() for witness in witnesses],
                handle,
                indent=2,
            )
            handle.write("\n")
        print(
            f"{len(witnesses)} non-termination witness(es) written to "
            f"{args.witness_out}",
            file=sys.stderr if args.json else sys.stdout,
        )

    if args.dot:
        from repro.analysis.graphviz import triggering_graph_dot

        termination = analyzer.termination_analyzer.analyze()
        suggested = frozenset(
            rule
            for rules in termination.auto_certifiable.values()
            for rule in rules
        )
        witness_rules: frozenset[str] = frozenset()
        strata = None
        if layered is not None:
            strata = layered.strata or None
            witness_rules = frozenset(
                rule
                for verdict in layered.verdicts
                if verdict.witness is not None
                for rule in verdict.component
            )
        with open(args.dot, "w") as handle:
            handle.write(
                triggering_graph_dot(
                    analyzer.termination_analyzer.graph,
                    priorities=ruleset.priorities,
                    certified=analyzer.termination_analyzer.certified_rules,
                    certified_pairs=analyzer.engine.certified_commutes,
                    suggested=suggested,
                    legend=True,
                    strata=strata,
                    witness_rules=witness_rules,
                )
            )
        print(
            f"triggering graph written to {args.dot}",
            file=sys.stderr if args.json else sys.stdout,
        )

    if args.report:
        from repro.analysis.report import render_markdown

        partial = []
        if args.tables:
            partial.append(
                [table.strip() for table in args.tables.split(",")]
            )
        with open(args.report, "w") as handle:
            handle.write(
                render_markdown(analyzer, report, partial_tables=partial)
            )
        print(
            f"markdown report written to {args.report}",
            file=sys.stderr if args.json else sys.stdout,
        )

    if args.run and not args.json:
        try:
            _run_and_trace(ruleset, schema, args, profile)
        except ReproError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2

    # After --run, so execution-side counters (planner, rete) reflect
    # the run they describe rather than the pre-run state.
    if args.stats and not args.json:
        _print_stats(analyzer.engine.stats)

    if args.profile and not args.json:
        _print_profile(profile)

    all_good = (
        report.terminates
        and report.confluent
        and report.observably_deterministic
    )
    return 0 if all_good else 1


def _execution_config(args) -> tuple[ExecutionConfig, str | None]:
    """The run's ExecutionConfig (and the WAL path, when durable)."""
    durable = getattr(args, "durable", None)
    matching = getattr(args, "matching", "planned")
    return (
        ExecutionConfig(
            matching=matching,
            planner=matching != "naive",
            durable=durable is not None,
            wal=durable,
            profile=bool(getattr(args, "profile", False)),
            scheduler=getattr(args, "scheduler", "serial"),
            partitions=getattr(args, "partitions", 1),
        ),
        durable,
    )


def _run_json(
    ruleset: RuleSet, schema: Schema, args, profile: dict | None = None
) -> dict:
    """Execute --run (and --explore) for machine-readable output.

    Returns an ``execution`` section (outcome, steps, final tables,
    processor substrate counters) and, with ``--explore``, an
    ``exploration`` section (``ExecutionGraph.stats()``) — so that the
    runtime's observability lands in the same JSON surface as the
    analysis engine's counters.
    """
    database = (
        load_data(args.data, schema) if args.data else Database(schema)
    )

    config, durable = _execution_config(args)
    processor = RuleProcessor(ruleset, database.copy(), config=config)
    started = time.perf_counter()
    for statement in args.run:
        processor.execute_user(statement)
    result = processor.run()
    wal_section = _finish_durable(processor, durable)
    if profile is not None:
        profile["execution"] = time.perf_counter() - started
        profile["triggering"] = processor.stats.trigger_seconds

    sections: dict = {
        "execution": {
            "outcome": result.outcome,
            "steps": len(result.steps),
            "rules_considered": result.rules_considered,
            "observables": [str(action) for action in result.observables],
            "final_tables": {
                table.name: processor.database.table(
                    table.name
                ).value_tuples()
                for table in schema
            },
            "stats": processor.stats.to_dict(),
            "planner_stats": plan.STATS.to_dict(),
            "rete_stats": rete.STATS.to_dict(),
        }
    }
    if config.scheduler == "parallel":
        from repro.runtime import parallel

        sections["execution"]["scheduler_stats"] = parallel.STATS.to_dict()
    if wal_section is not None:
        sections["execution"]["wal"] = wal_section

    if args.explore:
        fresh = RuleProcessor(
            ruleset,
            database.copy(),
            config=config.with_options(durable=False, wal=None),
        )
        for statement in args.run:
            fresh.execute_user(statement)
        started = time.perf_counter()
        graph = explore(fresh)
        if profile is not None:
            profile["exploration"] = time.perf_counter() - started
        sections["exploration"] = graph.stats()
        sections["exploration"]["substrate_stats"] = fresh.stats.to_dict()
    return sections


def _finish_durable(processor: RuleProcessor, durable: str | None):
    """Commit (or abort-close) the durable run; return the WAL summary.

    A rolled-back transaction already wrote its abort marker — closing
    without a commit leaves recovery at the previous durable state,
    which is exactly the rollback semantics.
    """
    if durable is None:
        return None
    stats = processor.wal.stats
    frames = None if processor.rolled_back else processor.commit()
    processor.close()
    return {
        "path": durable,
        "committed": frames is not None,
        "frames": frames if frames is not None else stats.frames_emitted,
        **stats.to_dict(),
    }


def _run_and_trace(
    ruleset: RuleSet, schema: Schema, args, profile: dict | None = None
) -> None:
    database = (
        load_data(args.data, schema) if args.data else Database(schema)
    )

    config, durable = _execution_config(args)
    processor = RuleProcessor(ruleset, database.copy(), config=config)
    started = time.perf_counter()
    for statement in args.run:
        processor.execute_user(statement)
    if config.scheduler == "parallel":
        # The step trace narrates one serial choice sequence; a batch
        # round has no single such sequence, so parallel runs report
        # outcomes and stats without the per-step narration.
        result, events = processor.run(), None
    else:
        result, events = trace_run(processor)
    wal_section = _finish_durable(processor, durable)
    if profile is not None:
        profile["execution"] = time.perf_counter() - started
        profile["triggering"] = processor.stats.trigger_seconds

    print("\n== rule processing trace ==")
    if events is None:
        print("(per-step trace unavailable under --scheduler parallel)")
    else:
        print(render_trace(events))
    print(f"outcome: {result.outcome} after {len(result.steps)} steps")
    print("final state:")
    for table in schema:
        rows = processor.database.table(table.name).value_tuples()
        print(f"  {table.name}: {rows}")
    if wal_section is not None:
        print("\n== durability ==")
        state = "committed" if wal_section["committed"] else "aborted"
        print(f"WAL {wal_section['path']}: {state}")
        print(
            f"frames: {wal_section['frames']}  "
            f"primitives: {wal_section['primitives_logged']}  "
            f"bytes: {wal_section['bytes_written']}  "
            f"fsyncs: {wal_section['syncs']}"
        )

    if args.explore:
        fresh = RuleProcessor(
            ruleset,
            database.copy(),
            config=config.with_options(durable=False, wal=None),
        )
        for statement in args.run:
            fresh.execute_user(statement)
        started = time.perf_counter()
        graph = explore(fresh)
        if profile is not None:
            profile["exploration"] = time.perf_counter() - started
        print("\n== execution-graph exploration ==")
        print(f"states explored:     {graph.state_count}")
        print(f"states deduped:      {graph.states_deduped}")
        print(f"terminates:          {graph.terminates}")
        print(f"confluent:           {graph.is_confluent}")
        print(f"observable streams:  {len(graph.observable_streams)}")
        print(f"paths to final:      {graph.paths_to_final()}")
        if graph.streams_truncated:
            print("(stream enumeration truncated by budget)")


def _print_stats(stats) -> None:
    """Render every subsystem's counters through the one shared renderer.

    Sections appear in pipeline order: analysis engine, query planner,
    and — whenever a match network was compiled this process — the
    incremental matcher.
    """
    engine = stats.to_dict()
    timings = engine.pop("timings")
    data = {key: engine[key] for key in sorted(engine)}
    data["timings (s)"] = timings
    sections = {
        "analysis engine": data,
        "query planner": plan.STATS.to_dict(),
    }
    if rete.STATS.networks_compiled:
        sections["incremental match"] = rete.STATS.to_dict()
    from repro.runtime import parallel

    if parallel.STATS.rounds:
        sections["parallel scheduler"] = parallel.STATS.to_dict()
    print(render_stats(sections))


def _profile_section(profile: dict) -> dict:
    """The per-phase wall-time report: measured phases plus the planner's
    accumulated planning time (every query planned by this process)."""
    section = {phase: round(seconds, 6) for phase, seconds in profile.items()}
    section["plan"] = round(plan.STATS.plan_seconds, 6)
    if rete.STATS.networks_compiled:
        section["rete_advance"] = round(rete.STATS.advance_seconds, 6)
    from repro.runtime import parallel

    if parallel.STATS.rounds:
        section["parallel_merge"] = round(parallel.STATS.merge_seconds, 6)
    return section


def _print_profile(profile: dict) -> None:
    print("\n== per-phase wall time (s) ==")
    for phase, seconds in _profile_section(profile).items():
        print(f"  {phase}: {seconds}")


def _print_details(report) -> None:
    layered = report.termination_report
    if layered is not None and layered.verdicts:
        print(f"\nper-cycle termination verdicts [{layered.mode}]:")
        for verdict in layered.verdicts:
            members = ", ".join(sorted(verdict.component))
            stratum = (
                f", stratum {verdict.stratum}"
                if verdict.stratum is not None
                else ""
            )
            print(f"  {{{members}}}: {verdict.label()}{stratum}")
            if verdict.detail:
                print(f"    {verdict.detail}")
            if verdict.witness is not None:
                trace = " -> ".join(verdict.witness.trace)
                print(f"    witness trace: {trace}")
        if layered.pruned_edges:
            print("refined-graph edges pruned:")
            for source, target, reason in layered.pruned_edges:
                print(f"  {source} -> {target}: {reason}")

    termination = report.termination
    if not termination.guaranteed and (
        layered is None or not layered.terminates
    ):
        print("\ntriggering-graph cycles (certify a rule on each to proceed):")
        for component in termination.uncertified_components:
            members = ", ".join(sorted(component))
            print(f"  {{{members}}}")
            auto = termination.auto_certifiable.get(component, frozenset())
            if auto:
                print(
                    "    delete-only heuristic would certify: "
                    + ", ".join(sorted(auto))
                )

    confluence = report.confluence
    if confluence.violations:
        print("\nconfluence violations:")
        for violation in confluence.violations:
            print(f"  {violation.describe()}")
        print("suggestions:")
        for suggestion in confluence.suggestions():
            print(f"  - {suggestion.describe()}")

    od = report.observable_determinism
    if od.observable_rules and not od.observably_deterministic:
        print("\nobservable-determinism violations (Sig(Obs) analysis):")
        for violation in od.confluence.violations:
            print(f"  {violation.describe()}")


# ----------------------------------------------------------------------
# The ``repro`` multi-command entry point
# ----------------------------------------------------------------------


def build_repro_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Production-rule program tooling: static analysis and lint "
            "(Aiken/Widom/Hellerstein, SIGMOD 1992)."
        ),
    )
    commands = parser.add_subparsers(dest="command", required=True)

    lint = commands.add_parser(
        "lint",
        help="run the rule-program linter (diagnostic codes RPL001...)",
        description=(
            "Static diagnostics over a rule program: never-triggerable "
            "rules, dead writes, uncertified self-triggers, "
            "unsatisfiable conditions, shadowed priority edges, "
            "unknown/ambiguous column references, and suggested cycle "
            "certifications. Exits 1 when any error-severity finding "
            "is reported, 2 on parse/usage errors, 0 otherwise."
        ),
    )
    lint.add_argument("rules", help="file of create-rule statements")
    lint.add_argument(
        "--schema",
        required=True,
        help="schema spec file (table: col, col, ...)",
    )
    lint.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="output format (default: text)",
    )
    lint.add_argument(
        "--entry",
        metavar="TABLE,TABLE",
        help="tables user transactions may touch (Section 9); enables "
        "the never-triggerable-rule check RPL001",
    )
    lint.add_argument(
        "--certify-termination",
        action="append",
        default=[],
        metavar="RULE",
        help="treat RULE as termination-certified (silences RPL003 "
        "and RPL007 for its cycles; repeatable)",
    )
    lint.add_argument(
        "--select",
        metavar="CODE,CODE",
        help="run only the listed diagnostic codes (e.g. RPL004,RPL006)",
    )
    lint.add_argument(
        "--output",
        metavar="FILE",
        help="write the report to FILE instead of stdout",
    )

    analyze = commands.add_parser(
        "analyze",
        help="run the termination/confluence/determinism analyzer "
        "(same as starburst-analyze)",
        add_help=False,
    )
    analyze.add_argument("args", nargs=argparse.REMAINDER)

    replay = commands.add_parser(
        "replay-witness",
        help="re-execute a non-termination witness and verify it loops",
        description=(
            "Replay non-termination witnesses produced by "
            "starburst-analyze --termination critical --witness-out "
            "FILE.json. Each witness embeds its schema, seed "
            "statements, and looping trace; a state-cycle witness must "
            "return to an identical processor state after one cycle, a "
            "pumped-growth witness must keep growing the database by a "
            "constant non-zero delta per pump round. Exits 0 when every "
            "witness replays to a genuine loop, 1 when any fails to, "
            "2 on load errors."
        ),
    )
    replay.add_argument(
        "witness",
        help="witness JSON file (one witness object or a list of them)",
    )
    replay.add_argument(
        "--rules",
        help="rule file to replay against (default: the rules text "
        "embedded in the witness)",
    )
    replay.add_argument(
        "--schema",
        help="schema spec file (default: the spec embedded in the "
        "witness)",
    )
    replay.add_argument(
        "--periods",
        type=int,
        default=4,
        metavar="N",
        help="pump rounds to verify for pumped-growth witnesses "
        "(default 4)",
    )
    replay.add_argument(
        "--json",
        action="store_true",
        help="emit the replay results as JSON",
    )

    recover = commands.add_parser(
        "recover",
        help="replay the committed prefix of a write-ahead log",
        description=(
            "Recover the database state as of the last committed "
            "transaction in a WAL written by a durable run "
            "(starburst-analyze --run ... --durable FILE.wal). Torn or "
            "corrupt tails are truncated; uncommitted and aborted "
            "transactions are discarded. Exits 2 if the file is not a "
            "readable WAL."
        ),
    )
    recover.add_argument("wal", help="WAL file to replay")
    recover.add_argument(
        "--schema",
        help="schema spec file to verify against the log's header "
        "(the log is self-describing; this cross-checks it)",
    )
    recover.add_argument(
        "--json",
        action="store_true",
        help="emit the recovery report and recovered tables as JSON",
    )

    serve = commands.add_parser(
        "serve",
        help="run concurrent rule-processing sessions over one store",
        description=(
            "Drive N concurrent snapshot-isolated sessions through the "
            "MVCC rule server (first-committer-wins validation, "
            "optional group-commit WAL). By default the built-in "
            "seeded streaming-ingestion workload provides the traffic; "
            "with a rules file, --schema, and repeated --transaction "
            "flags the server runs your transactions instead. Exits 1 "
            "if --verify finds a divergence, 2 on usage errors."
        ),
    )
    serve.add_argument(
        "rules",
        nargs="?",
        help="file of create-rule statements (omit to serve the "
        "built-in streaming workload)",
    )
    serve.add_argument(
        "--schema",
        help="schema spec file (required with a rules file)",
    )
    serve.add_argument(
        "--data",
        help="data file (table: (v, ...), ...) loaded before serving",
    )
    serve.add_argument(
        "--transaction",
        action="append",
        default=[],
        metavar="STMT;STMT",
        help="one transaction: semicolon-separated statements, run as a "
        "session plus rule cascade plus commit (repeatable; dealt over "
        "the session threads)",
    )
    serve.add_argument(
        "--sessions",
        type=int,
        default=8,
        metavar="N",
        help="concurrent session threads (default 8)",
    )
    serve.add_argument(
        "--rows",
        type=int,
        default=8_000,
        help="streaming workload: total event rows (default 8000)",
    )
    serve.add_argument(
        "--batch-rows",
        type=int,
        default=100,
        help="streaming workload: rows per ingestion batch (default 100)",
    )
    serve.add_argument(
        "--durable",
        metavar="FILE.wal",
        help="write committed sessions through a group-commit WAL at "
        "FILE.wal; `repro recover FILE.wal` replays them",
    )
    serve.add_argument(
        "--no-group-commit",
        action="store_true",
        help="with --durable: fsync every commit by itself instead of "
        "coalescing (the per-commit baseline)",
    )
    serve.add_argument(
        "--isolation",
        choices=("serializable", "snapshot"),
        default="serializable",
        help="what first-committer-wins validation checks (default "
        "serializable: reads and writes)",
    )
    serve.add_argument(
        "--granularity",
        choices=("column", "table"),
        default="column",
        help="conflict-footprint resolution (default column)",
    )
    serve.add_argument(
        "--max-delay",
        type=float,
        default=0.002,
        metavar="SECONDS",
        help="group commit: longest a commit waits for company "
        "(default 0.002)",
    )
    serve.add_argument(
        "--max-batch",
        type=int,
        default=8,
        metavar="N",
        help="group commit: most commits per fsync (default 8)",
    )
    serve.add_argument(
        "--verify",
        action="store_true",
        help="after serving, replay the committed sessions serially in "
        "commit order (and recover the WAL, when durable) and check "
        "both land on the server's exact final state",
    )
    serve.add_argument(
        "--json",
        action="store_true",
        help="emit the serving report as JSON",
    )
    serve.add_argument(
        "--stats",
        action="store_true",
        help="print the server's counters (commits, conflicts, "
        "retries, group-commit batch-size histogram, fsyncs)",
    )
    serve.add_argument(
        "--profile",
        action="store_true",
        help="print per-phase wall time (parse, drive, commit_validate, "
        "commit_publish, commit_wait, verify)",
    )

    crosscheck = commands.add_parser(
        "crosscheck",
        help="differential-check the declarative semantics against "
        "every execution mode",
        description=(
            "Compute a workload's declarative outcome (per-stratum "
            "fixpoints, Flesca/Greco style) and run its transition "
            "through the execution-mode cross product — condition "
            "matching (naive/planned/rete) x scheduling "
            "(serial/parallel) x persistence (memory/durable/server). "
            "Certified-confluent workloads must match the declarative "
            "final exactly in every mode; others must contain it in "
            "the explore()-reachable set. Exits 1 on any divergence "
            "(with a minimized counterexample), 2 on usage errors."
        ),
    )
    crosscheck.add_argument(
        "workload",
        nargs="*",
        help="workloads to check: powernet, powernet_scaled, "
        "termination_zoo, streaming, partitioned, iot, fraud "
        "(default: all but the scaled ones)",
    )
    crosscheck.add_argument(
        "--rows",
        type=int,
        metavar="N",
        help="scale the instance (workload-specific default; iot/fraud "
        "default to 1,000,000 rows)",
    )
    crosscheck.add_argument(
        "--seed",
        type=int,
        default=0,
        help="workload generator seed (default 0)",
    )
    crosscheck.add_argument(
        "--modes",
        default="all",
        metavar="SPEC",
        help="'all' (18 modes), 'quick' (one per axis), or a comma "
        "list like planned-serial-memory,rete-parallel-durable",
    )
    crosscheck.add_argument(
        "--no-minimize",
        action="store_true",
        help="on divergence, skip counterexample minimization",
    )
    crosscheck.add_argument(
        "--json",
        action="store_true",
        help="emit the reports as JSON",
    )
    return parser


def _run_lint(args) -> int:
    from repro.lint import lint_ruleset

    try:
        schema = load_schema(args.schema)
        with open(args.rules) as handle:
            source = handle.read()
        ruleset = RuleSet.parse(source, schema)
        report = lint_ruleset(
            ruleset,
            source=source,
            path=args.rules,
            entry_tables=(
                [table.strip() for table in args.entry.split(",")]
                if args.entry
                else None
            ),
            certified_termination=[
                rule.strip() for rule in args.certify_termination
            ],
            only=(
                [code.strip().upper() for code in args.select.split(",")]
                if args.select
                else None
            ),
        )
    except (ReproError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    if args.format == "text":
        rendered = report.render_text()
    else:
        import json

        payload = (
            report.to_sarif()
            if args.format == "sarif"
            else report.to_json_dict()
        )
        rendered = json.dumps(payload, indent=2)

    if args.output:
        with open(args.output, "w") as handle:
            handle.write(rendered + "\n")
        print(
            f"lint report ({args.format}) written to {args.output}",
            file=sys.stderr,
        )
    else:
        print(rendered)
    return 1 if report.has_errors else 0


def _run_replay_witness(args) -> int:
    import json

    from repro.analysis.critical import Witness, replay_witness

    try:
        with open(args.witness) as handle:
            payload = json.load(handle)
        entries = payload if isinstance(payload, list) else [payload]
        witnesses = [Witness.from_dict(entry) for entry in entries]
        ruleset = None
        if args.rules:
            if args.schema:
                schema = load_schema(args.schema)
            elif witnesses:
                schema = schema_from_spec(witnesses[0].schema_spec)
            else:
                raise ReproError(
                    "--rules needs --schema when the witness file is empty"
                )
            with open(args.rules) as handle:
                ruleset = RuleSet.parse(handle.read(), schema)
    except (ReproError, OSError, ValueError, KeyError, TypeError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    outcomes = []
    for witness in witnesses:
        result = replay_witness(
            witness, ruleset=ruleset, periods=args.periods
        )
        outcomes.append((witness, result))

    all_valid = all(result.valid for __, result in outcomes)
    if args.json:
        print(
            json.dumps(
                {
                    "witnesses": len(outcomes),
                    "all_valid": all_valid,
                    "results": [
                        {
                            "kind": witness.kind,
                            "component": list(witness.component),
                            "valid": result.valid,
                            "reason": result.reason,
                            "steps": result.steps,
                        }
                        for witness, result in outcomes
                    ],
                },
                indent=2,
            )
        )
    else:
        if not outcomes:
            print("no witnesses to replay")
        for witness, result in outcomes:
            members = ", ".join(witness.component)
            state = "LOOPS" if result.valid else "FAILED"
            print(
                f"{state}: {witness.kind} witness for {{{members}}} — "
                f"{result.reason} ({result.steps} considerations)"
            )
    return 0 if all_valid else 1


def _run_recover(args) -> int:
    from repro.engine.wal import recover_database

    try:
        schema = load_schema(args.schema) if args.schema else None
        result = recover_database(args.wal, schema=schema)
    except (ReproError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    database = result.database
    tables = {
        table.name: database.table(table.name).value_tuples()
        for table in database.schema
    }
    if args.json:
        import json

        print(
            json.dumps(
                {"report": result.report.to_dict(), "tables": tables},
                indent=2,
            )
        )
        return 0

    report = result.report
    print(f"recovered {args.wal}: {report.frames_read} frames")
    print(
        f"transactions: {report.transactions_committed} committed, "
        f"{report.transactions_aborted} aborted"
        + (", 1 in-flight discarded" if report.open_transaction_discarded else "")
    )
    if report.torn_tail:
        print(f"torn tail truncated ({report.tail_reason})")
    print(
        f"replayed {report.primitives_replayed} primitives "
        f"(+{report.checkpoint_rows} checkpoint rows) "
        f"in {report.replay_seconds:.4f}s"
    )
    print("recovered state:")
    for name, rows in tables.items():
        print(f"  {name}: {rows}")
    return 0


def _serve_drive_transactions(server, transactions, sessions: int):
    """Deal *transactions* (statement tuples) over *sessions* worker
    threads; returns a :class:`~repro.workloads.streaming.DriveReport`."""
    import queue as queue_module
    import threading

    from repro.workloads.streaming import DriveReport

    work: "queue_module.Queue" = queue_module.Queue()
    for transaction in transactions:
        work.put(transaction)
    report = DriveReport(
        workers=sessions,
        committed=0,
        rows_ingested=0,
        retries=0,
        elapsed_seconds=0.0,
    )
    lock = threading.Lock()
    failures: list[BaseException] = []

    def run() -> None:
        while True:
            try:
                transaction = work.get_nowait()
            except queue_module.Empty:
                return
            began = time.perf_counter()
            try:
                outcome = server.run_transaction(transaction)
            except BaseException as error:
                with lock:
                    failures.append(error)
                return
            latency = time.perf_counter() - began
            with lock:
                if outcome.committed:
                    report.committed += 1
                report.retries += outcome.retries
                report.latencies.append(latency)

    threads = [
        threading.Thread(target=run, name=f"repro-serve-{index}")
        for index in range(min(sessions, max(1, len(transactions))))
    ]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    report.elapsed_seconds = time.perf_counter() - started
    if failures:
        raise failures[0]
    return report


def _run_serve(args) -> int:
    import json

    from repro.config import ServerOptions
    from repro.runtime.server import RuleServer, serial_replay
    from repro.workloads.streaming import (
        drive_streaming,
        streaming_workload,
    )

    profile: dict[str, float] = {}
    try:
        if args.rules and not args.schema:
            raise ReproError("serving a rules file requires --schema")
        if args.rules and not args.transaction:
            raise ReproError(
                "serving a rules file requires at least one --transaction"
            )
        started = time.perf_counter()
        if args.rules:
            schema = load_schema(args.schema)
            with open(args.rules) as handle:
                ruleset = RuleSet.parse(handle.read(), schema)
            build_database = lambda: (  # noqa: E731 — rebuilt for --verify
                load_data(args.data, schema)
                if args.data
                else Database(schema)
            )
            workload = None
        else:
            workload = streaming_workload(
                rows=args.rows, batch_rows=args.batch_rows
            )
            schema, ruleset = workload.schema, workload.ruleset
        profile["parse"] = time.perf_counter() - started

        options = ServerOptions(
            isolation=args.isolation,
            granularity=args.granularity,
            group_commit=not args.no_group_commit,
            max_delay=args.max_delay,
            max_batch=args.max_batch,
        )
        config = ExecutionConfig(
            durable=args.durable is not None, wal=args.durable
        )
        database = (
            workload.database if workload is not None else build_database()
        )
        server = RuleServer(
            ruleset,
            database,
            config=config,
            options=options,
            record_history=args.verify,
        )
        started = time.perf_counter()
        if workload is not None:
            report = drive_streaming(
                server, workload.batches, workers=args.sessions
            )
        else:
            transactions = [
                tuple(
                    statement.strip()
                    for statement in transaction.split(";")
                    if statement.strip()
                )
                for transaction in args.transaction
            ]
            report = _serve_drive_transactions(
                server, transactions, args.sessions
            )
        server.close()
        profile["drive"] = time.perf_counter() - started
        profile["commit_validate"] = server.stats.validate_seconds
        profile["commit_publish"] = server.stats.publish_seconds
        profile["commit_wait"] = server.stats.commit_wait_seconds

        verify_section = None
        if args.verify:
            started = time.perf_counter()
            if workload is not None:
                fresh = streaming_workload(
                    rows=args.rows, batch_rows=args.batch_rows
                )
                replay_ruleset, replay_database = (
                    fresh.ruleset,
                    fresh.database,
                )
            else:
                replay_ruleset, replay_database = ruleset, build_database()
            replayed = serial_replay(
                replay_ruleset, replay_database, server.history
            )
            final = database.canonical()
            verify_section = {
                "replay_equal": replayed.canonical() == final
            }
            if args.durable:
                recovered = Database.recover(args.durable, schema=schema)
                verify_section["recovery_equal"] = (
                    recovered.canonical() == final
                )
            profile["verify"] = time.perf_counter() - started
    except (ReproError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    sections = server.stats_sections()
    if args.json:
        payload: dict = {"serve": report.to_dict(), **sections}
        if verify_section is not None:
            payload["verify"] = verify_section
        if args.profile:
            payload["profile"] = _profile_section(profile)
        print(json.dumps(payload, indent=2))
    else:
        summary = report.to_dict()
        print(
            f"served {summary['committed']} committed transactions over "
            f"{args.sessions} session threads in "
            f"{summary['elapsed_seconds']}s "
            f"({summary['commits_per_second']}/s)"
        )
        print(
            f"latency p50 {summary['p50_commit_seconds']}s  "
            f"p99 {summary['p99_commit_seconds']}s  "
            f"abort rate {summary['abort_rate']}"
        )
        if args.durable:
            print(f"WAL {args.durable}: committed sessions are durable")
        if verify_section is not None:
            for check, equal in verify_section.items():
                state = "equal" if equal else "DIVERGED"
                print(f"{check.removesuffix('_equal')}: {state}")
        if args.stats:
            print()
            print(render_stats(sections))
        if args.profile:
            _print_profile(profile)

    if verify_section is not None and not all(verify_section.values()):
        return 1
    return 0


#: crosscheck's default sweep — every registered workload that fits in
#: an interactive run (the scaled builds are opt-in by name)
_CROSSCHECK_DEFAULT = (
    "powernet",
    "termination_zoo",
    "streaming",
    "partitioned",
)


def _run_crosscheck(args) -> int:
    from repro.validate.crosscheck import (
        build_case,
        case_names,
        crosscheck_case,
        parse_modes,
    )

    try:
        modes = parse_modes(args.modes)
        names = tuple(args.workload) or _CROSSCHECK_DEFAULT
        for name in names:
            if name not in case_names():
                raise ValueError(
                    f"unknown workload {name!r}; choose from "
                    f"{', '.join(case_names())}"
                )
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    reports = []
    for name in names:
        case = build_case(name, rows=args.rows, seed=args.seed)
        reports.append(
            crosscheck_case(case, modes, minimize=not args.no_minimize)
        )

    if args.json:
        import json

        print(
            json.dumps(
                [report.to_dict() for report in reports],
                indent=2,
                default=str,
            )
        )
    else:
        for report in reports:
            verdict = "ok" if report.passed else "DIVERGED"
            declarative = report.declarative
            print(
                f"{report.case}: {verdict} "
                f"[{report.classification.label}] "
                f"declarative={declarative.status} "
                f"firings={declarative.firings} "
                f"modes={len(report.modes)}"
            )
            for result in report.modes:
                flags = ""
                if result.recovered_matches is not None:
                    state = "ok" if result.recovered_matches else "DIVERGED"
                    flags = f" recovery={state}"
                print(
                    f"  {result.mode}: {result.status} "
                    f"{result.seconds:.3f}s{flags}"
                )
            if report.exploration:
                print(f"  explore: {report.exploration}")
            for divergence in report.divergences:
                print(
                    f"  divergence[{divergence['kind']}] "
                    f"{divergence['mode']}: {divergence['detail']}"
                )
            if report.counterexample:
                print(f"  counterexample: {report.counterexample}")

    return 0 if all(report.passed for report in reports) else 1


def repro_main(argv: list[str] | None = None) -> int:
    args = build_repro_parser().parse_args(argv)
    if args.command == "lint":
        return _run_lint(args)
    if args.command == "replay-witness":
        return _run_replay_witness(args)
    if args.command == "recover":
        return _run_recover(args)
    if args.command == "serve":
        return _run_serve(args)
    if args.command == "crosscheck":
        return _run_crosscheck(args)
    return main(args.args)


if __name__ == "__main__":
    raise SystemExit(main())
