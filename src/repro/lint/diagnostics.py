"""Diagnostic vocabulary of the rule-program linter.

Every finding a lint pass can emit is identified by a stable code
(``RPL001``, ``RPL002``, ...) with a fixed default severity. The codes
are the public contract: formatters key on them, CI suppressions
reference them, and the fixture tests assert each one fires — so codes
are never renumbered, only appended.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Severity(enum.Enum):
    """Ranked finding severity; also the SARIF ``level`` vocabulary."""

    ERROR = "error"
    WARNING = "warning"
    NOTE = "note"

    @property
    def rank(self) -> int:
        return {"error": 0, "warning": 1, "note": 2}[self.value]


@dataclass(frozen=True)
class CodeInfo:
    """Registry entry for one diagnostic code."""

    code: str
    name: str
    severity: Severity
    short_description: str


#: The stable diagnostic-code registry, in code order.
DIAGNOSTIC_CODES: dict[str, CodeInfo] = {
    info.code: info
    for info in (
        CodeInfo(
            "RPL001",
            "never-triggerable-rule",
            Severity.WARNING,
            "Rule can never be triggered: no rule performs its "
            "triggering events and the declared entry tables cannot "
            "root it (Section 9 reachability).",
        ),
        CodeInfo(
            "RPL002",
            "dead-write",
            Severity.WARNING,
            "Rule updates a column that no rule reads and whose "
            "updates trigger nothing.",
        ),
        CodeInfo(
            "RPL003",
            "uncertified-self-trigger",
            Severity.WARNING,
            "Rule triggers itself and carries no termination "
            "certification (Theorem 5.1 cannot discharge the "
            "self-loop).",
        ),
        CodeInfo(
            "RPL004",
            "unsatisfiable-condition",
            Severity.ERROR,
            "Rule condition is provably unsatisfiable (constant "
            "folding / interval analysis): the action can never run.",
        ),
        CodeInfo(
            "RPL005",
            "shadowed-priority-edge",
            Severity.WARNING,
            "Declared priority edge is already implied by the "
            "transitive closure of the other declared edges.",
        ),
        CodeInfo(
            "RPL006",
            "unknown-column-reference",
            Severity.ERROR,
            "Expression references a column that resolves to no "
            "table/column of the schema; the analysis silently "
            "ignores such reads.",
        ),
        CodeInfo(
            "RPL007",
            "suggested-cycle-certification",
            Severity.NOTE,
            "Uncertified triggering cycle that the delete-only or "
            "monotonic-update heuristic could certify.",
        ),
        CodeInfo(
            "RPL008",
            "ambiguous-column-reference",
            Severity.WARNING,
            "Unqualified column reference resolves to more than one "
            "bound table; the analysis conservatively charges all of "
            "them.",
        ),
        CodeInfo(
            "RPL009",
            "auto-certified-cycle",
            Severity.NOTE,
            "Triggering cycle discharged automatically by the layered "
            "termination analysis (delete-only, monotonic, stratified "
            "or critical-instance); no user certification needed.",
        ),
        CodeInfo(
            "RPL010",
            "non-termination-witness",
            Severity.ERROR,
            "A concrete replayable looping run exists for this "
            "triggering cycle: rule processing does not terminate "
            "(witness trace attached).",
        ),
    )
}


@dataclass(frozen=True)
class Diagnostic:
    """One lint finding.

    ``rule`` is the offending rule's (lower-cased) name, or ``None`` for
    program-level findings (e.g. priority-edge issues attach to the
    higher rule, so in practice it is always set). ``line`` is the
    1-based line of the rule's ``create rule`` in the linted source,
    when the source text was provided.
    """

    code: str
    severity: Severity
    rule: str | None
    message: str
    line: int | None = None
    #: rule-consideration trace for executable findings (RPL010: the
    #: witness prefix + cycle); rendered as a SARIF codeFlow
    trace: tuple[str, ...] | None = None

    @property
    def info(self) -> CodeInfo:
        return DIAGNOSTIC_CODES[self.code]

    def sort_key(self) -> tuple:
        return (
            self.severity.rank,
            self.code,
            self.rule or "",
            self.message,
        )

    def to_dict(self) -> dict:
        payload = {
            "code": self.code,
            "name": self.info.name,
            "severity": self.severity.value,
            "rule": self.rule,
            "message": self.message,
            "line": self.line,
        }
        if self.trace is not None:
            payload["trace"] = list(self.trace)
        return payload

    def render(self, path: str | None = None) -> str:
        place = path or "<rules>"
        if self.line is not None:
            place = f"{place}:{self.line}"
        subject = f" [{self.rule}]" if self.rule else ""
        return (
            f"{place}: {self.severity.value} {self.code}"
            f"{subject}: {self.message}"
        )
