"""The registered lint passes (RPL001–RPL010).

Each pass is a function from a :class:`LintContext` to an iterable of
:class:`~repro.lint.diagnostics.Diagnostic`, registered under its
diagnostic code via :func:`lint_pass`. The runner in
:mod:`repro.lint` executes every registered pass and collates the
findings by severity.

The passes deliberately reuse the analysis substrate rather than
re-deriving it: RPL001 is Section 9 reachability
(:func:`repro.analysis.restricted.reachable_rules`), RPL002 consumes
the attribute-level ``Writes`` sets of
:mod:`repro.analysis.dataflow`, RPL003 rides on the
:class:`~repro.analysis.termination.TerminationAnalyzer`,
RPL007/RPL009/RPL010 share one layered
:class:`~repro.analysis.termination.TerminationReport` (critical mode,
cached on the context), and RPL006/RPL008 mirror the column-resolution
scoping of ``derived._compute_reads`` — so what the linter reports is
exactly what the analyses see (or silently ignore).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Iterable, Iterator

from repro.analysis.derived import DerivedDefinitions, _bind_table, _Scope
from repro.analysis.restricted import reachable_rules
from repro.analysis.termination import (
    VERDICT_AUTO,
    VERDICT_WITNESS,
    TerminationAnalyzer,
    TerminationReport,
    build_termination_report,
)
from repro.lang import ast
from repro.lint.diagnostics import DIAGNOSTIC_CODES, Diagnostic
from repro.lint.folding import unsatisfiable
from repro.rules.events import all_events
from repro.rules.rule import Rule
from repro.rules.ruleset import RuleSet


@dataclass
class LintContext:
    """Everything a lint pass may consult."""

    ruleset: RuleSet
    definitions: DerivedDefinitions
    #: tables user transactions may touch; None = unrestricted (every
    #: table is an entry point, so RPL001 degrades to never firing)
    entry_tables: frozenset[str] | None = None
    #: rules the user has certified for termination (lint equivalent of
    #: the analyzer's certify_termination)
    certified_termination: frozenset[str] = frozenset()
    #: rule name -> 1-based line of its ``create rule`` in the source
    lines: dict[str, int] = field(default_factory=dict)
    #: the linted source text, when available; witnesses embed it so
    #: RPL010 findings replay standalone (``repro replay-witness``)
    source: str | None = None
    _termination_report: TerminationReport | None = field(
        default=None, repr=False
    )

    def termination_report(self) -> TerminationReport:
        """The layered critical-mode termination report, computed once
        and shared by the RPL007/RPL009/RPL010 passes."""
        if self._termination_report is None:
            self._termination_report = build_termination_report(
                self.ruleset,
                mode="critical",
                certified=tuple(sorted(self.certified_termination)),
                definitions=self.definitions,
                rules_source=self.source,
            )
        return self._termination_report

    def diagnostic(self, code: str, rule: str | None, message: str) -> Diagnostic:
        return Diagnostic(
            code=code,
            severity=DIAGNOSTIC_CODES[code].severity,
            rule=rule,
            message=message,
            line=self.lines.get(rule) if rule else None,
        )


#: code -> pass function, in registration (= code) order.
LINT_PASSES: dict[str, Callable[[LintContext], Iterable[Diagnostic]]] = {}


def lint_pass(code: str):
    if code not in DIAGNOSTIC_CODES:
        raise ValueError(f"unregistered diagnostic code {code!r}")

    def register(fn):
        LINT_PASSES[code] = fn
        return fn

    return register


# ----------------------------------------------------------------------
# RPL001 — never-triggerable rules (Section 9 reachability)
# ----------------------------------------------------------------------


@lint_pass("RPL001")
def never_triggerable(ctx: LintContext) -> Iterator[Diagnostic]:
    """A rule outside the triggering-graph closure of the rules the
    declared entry tables can root is dead code: no user transaction
    and no rule action can ever trigger it."""
    schema = ctx.ruleset.schema
    if ctx.entry_tables is None:
        initial = all_events(schema)
    else:
        initial = frozenset(
            event
            for event in all_events(schema)
            if event.table in ctx.entry_tables
        )
    reachable = reachable_rules(ctx.definitions, initial)
    for name in ctx.definitions.rule_names:
        if name in reachable:
            continue
        entry = (
            ", ".join(sorted(ctx.entry_tables))
            if ctx.entry_tables is not None
            else "any table"
        )
        yield ctx.diagnostic(
            "RPL001",
            name,
            f"rule can never be triggered: no rule performs its "
            f"triggering events and user operations on {entry} "
            f"cannot reach it",
        )


# ----------------------------------------------------------------------
# RPL002 — dead writes
# ----------------------------------------------------------------------


@lint_pass("RPL002")
def dead_writes(ctx: LintContext) -> Iterator[Diagnostic]:
    """An updated column nobody reads and whose updates trigger no rule
    has no observable effect inside the rule program. (The table may of
    course be queried by applications — hence a warning, not an error.)

    Reads are judged at the coarse Section 3 granularity on purpose: a
    ``select *`` counts as reading every column, so the pass errs
    toward silence."""
    all_reads: set[tuple[str, str]] = set()
    triggering_updates: set[tuple[str, str]] = set()
    for name in ctx.definitions.rule_names:
        all_reads |= ctx.definitions.reads(name)
        for event in ctx.definitions.triggered_by(name):
            if event.kind == "U":
                triggering_updates.add((event.table, event.column))
    for name in ctx.definitions.rule_names:
        footprint = ctx.definitions.dataflow(name)
        dead = sorted(
            (write.table, write.column)
            for write in footprint.writes
            if write.kind == "U"
            and (write.table, write.column) not in all_reads
            and (write.table, write.column) not in triggering_updates
        )
        for table, column in dead:
            yield ctx.diagnostic(
                "RPL002",
                name,
                f"update of {table}.{column} is dead: no rule reads "
                f"the column and (U, {table}.{column}) triggers "
                f"nothing",
            )


# ----------------------------------------------------------------------
# RPL003 — self-triggering rules lacking termination certification
# ----------------------------------------------------------------------


@lint_pass("RPL003")
def uncertified_self_triggers(ctx: LintContext) -> Iterator[Diagnostic]:
    for name in ctx.definitions.rule_names:
        if name not in ctx.definitions.triggers(name):
            continue
        if name in ctx.certified_termination:
            continue
        events = sorted(
            str(event)
            for event in (
                ctx.definitions.performs(name)
                & ctx.definitions.triggered_by(name)
            )
        )
        yield ctx.diagnostic(
            "RPL003",
            name,
            f"rule triggers itself via {', '.join(events)} and has no "
            f"termination certification",
        )


# ----------------------------------------------------------------------
# RPL004 — unsatisfiable conditions
# ----------------------------------------------------------------------


@lint_pass("RPL004")
def unsatisfiable_conditions(ctx: LintContext) -> Iterator[Diagnostic]:
    for rule in ctx.ruleset:
        if rule.condition is None:
            continue
        proof = unsatisfiable(rule.condition)
        if proof is not None:
            yield ctx.diagnostic(
                "RPL004",
                rule.name,
                f"condition is unsatisfiable ({proof}): the action "
                f"can never execute",
            )


# ----------------------------------------------------------------------
# RPL005 — shadowed priority edges
# ----------------------------------------------------------------------


@lint_pass("RPL005")
def shadowed_priority_edges(ctx: LintContext) -> Iterator[Diagnostic]:
    """A declared ``precedes``/``follows`` edge already implied by the
    transitive closure of the *other* declared edges is redundant.
    (Cyclic priority declarations are rejected at parse time, so
    shadowing is the surviving edge pathology.)"""
    direct = ctx.ruleset.priorities.direct_pairs()
    adjacency: dict[str, set[str]] = {}
    for higher, lower in direct:
        adjacency.setdefault(higher, set()).add(lower)

    def reaches_without(start: str, goal: str, skip: tuple[str, str]) -> bool:
        stack = [start]
        seen = {start}
        while stack:
            node = stack.pop()
            for successor in adjacency.get(node, ()):
                if (node, successor) == skip:
                    continue
                if successor == goal:
                    return True
                if successor not in seen:
                    seen.add(successor)
                    stack.append(successor)
        return False

    for higher, lower in sorted(direct):
        if reaches_without(higher, lower, (higher, lower)):
            yield ctx.diagnostic(
                "RPL005",
                higher,
                f"priority edge {higher} > {lower} is shadowed: it is "
                f"already implied by the other declared orderings",
            )


# ----------------------------------------------------------------------
# RPL006 / RPL008 — column-reference resolution issues
# ----------------------------------------------------------------------


def _scoped_expressions(
    rule: Rule,
) -> Iterator[tuple[ast.Expression, _Scope]]:
    """Every top-level expression of *rule* with the scope the analyses
    resolve it under — the exact scoping of ``derived._compute_reads``."""
    root = _Scope()
    if rule.condition is not None:
        yield rule.condition, root
    for action in rule.actions:
        if isinstance(action, ast.Select):
            yield from _select_expressions(action, root, rule)
        elif isinstance(action, ast.Insert):
            scope = _Scope(outer=root)
            for row in action.rows:
                for value in row:
                    yield value, scope
            if action.query is not None:
                yield from _select_expressions(action.query, root, rule)
        elif isinstance(action, (ast.Delete, ast.Update)):
            scope = _Scope(outer=root)
            _bind_table(scope, action.alias or action.table, action.table, rule)
            if action.alias:
                _bind_table(scope, action.table, action.table, rule)
            if isinstance(action, ast.Update):
                for assignment in action.assignments:
                    yield assignment.value, scope
            if action.where is not None:
                yield action.where, scope


def _select_expressions(
    select: ast.Select, outer: _Scope, rule: Rule
) -> Iterator[tuple[ast.Expression, _Scope]]:
    scope = _Scope(outer=outer)
    for ref in select.tables:
        _bind_table(scope, ref.binding_name, ref.name, rule)
    for item in select.items:
        yield item.expr, scope
    if select.where is not None:
        yield select.where, scope
    for key in select.group_by:
        yield key, scope
    if select.having is not None:
        yield select.having, scope


def _column_refs_with_scopes(
    rule: Rule,
) -> Iterator[tuple[ast.ColumnRef, _Scope]]:
    pending = list(_scoped_expressions(rule))
    while pending:
        expr, scope = pending.pop(0)
        for node in ast.walk_expression(expr):
            if isinstance(node, ast.ColumnRef):
                yield node, scope
            elif isinstance(node, (ast.InSubquery, ast.Exists)):
                pending.extend(
                    _select_expressions(node.subquery, scope, rule)
                )
            elif isinstance(node, ast.ScalarSubquery):
                pending.extend(
                    _select_expressions(node.subquery, scope, rule)
                )


@lint_pass("RPL006")
def unknown_column_references(ctx: LintContext) -> Iterator[Diagnostic]:
    """Rule validation checks FROM tables and write targets, but not
    the columns referenced inside expressions; the read computation
    silently drops unresolvable references. Surface them."""
    schema = ctx.ruleset.schema
    for rule in ctx.ruleset:
        seen: set[str] = set()
        for ref, scope in _column_refs_with_scopes(rule):
            if ref.table:
                actual = scope.resolve_qualified(ref.table)
                if actual is None:
                    if ref.table.lower() in ast.TRANSITION_TABLE_NAMES:
                        actual = rule.table
                    else:
                        actual = ref.table.lower()
                if not schema.has_table(actual):
                    message = (
                        f"reference {ref.table}.{ref.column} resolves "
                        f"to unknown table {actual!r}"
                    )
                elif not schema.table(actual).has_column(ref.column):
                    message = (
                        f"reference {ref.table}.{ref.column}: table "
                        f"{actual!r} has no column {ref.column.lower()!r}"
                    )
                else:
                    continue
            else:
                if scope.candidate_tables(ref.column, rule):
                    continue
                message = (
                    f"unqualified column {ref.column!r} matches no "
                    f"table in scope"
                )
            if message not in seen:
                seen.add(message)
                yield ctx.diagnostic("RPL006", rule.name, message)


@lint_pass("RPL008")
def ambiguous_column_references(ctx: LintContext) -> Iterator[Diagnostic]:
    for rule in ctx.ruleset:
        seen: set[str] = set()
        for ref, scope in _column_refs_with_scopes(rule):
            if ref.table:
                continue
            candidates = scope.candidate_tables(ref.column, rule)
            if len(set(candidates)) <= 1:
                continue
            tables = ", ".join(sorted(set(candidates)))
            message = (
                f"unqualified column {ref.column!r} is ambiguous: it "
                f"matches {tables}; the analysis charges reads of all "
                f"of them"
            )
            if message not in seen:
                seen.add(message)
                yield ctx.diagnostic("RPL008", rule.name, message)


# ----------------------------------------------------------------------
# RPL007 — suggested cycle certifications
# ----------------------------------------------------------------------


@lint_pass("RPL007")
def suggested_cycle_certifications(ctx: LintContext) -> Iterator[Diagnostic]:
    """Certification suggestions for cycles the layered analysis could
    NOT discharge. Components the stratified or critical-instance
    layers certify automatically fire RPL009 instead; here each
    suggestion names the analyzer that justifies it, the stratum the
    rule occupies in the refined-graph condensation, and which members
    remain entirely unjustified (the ones blocking auto-discharge)."""
    report = ctx.termination_report()
    analyzer = TerminationAnalyzer(ctx.definitions)
    for name in sorted(ctx.certified_termination):
        if name in ctx.definitions.rule_names:
            analyzer.certify_rule(name)
    for verdict in report.verdicts:
        if verdict.discharged:
            continue
        component = frozenset(verdict.component)
        members = "{" + ", ".join(sorted(component)) + "}"
        delete_only = analyzer.auto_certifiable_rules(component)
        monotonic = analyzer.auto_certifiable_monotonic_rules(component)
        unjustified = sorted(component - delete_only - monotonic)
        for name in sorted(delete_only | monotonic):
            justifying = []
            if name in delete_only:
                justifying.append("delete-only")
            if name in monotonic:
                justifying.append("monotonic-update")
            stratum = report.strata.get(name)
            where = f" (stratum {stratum})" if stratum is not None else ""
            remainder = (
                f"; {{{', '.join(unjustified)}}} still need manual "
                f"certification"
                if unjustified
                else ""
            )
            yield ctx.diagnostic(
                "RPL007",
                name,
                f"triggering cycle {members} is {verdict.label()}: "
                f"certifying {name}{where} is justified by the "
                f"{' and '.join(justifying)} analyzer{remainder}; pass "
                f"--certify-termination {name}",
            )


# ----------------------------------------------------------------------
# RPL009 — cycles the layered analysis discharges automatically
# ----------------------------------------------------------------------


@lint_pass("RPL009")
def auto_certified_cycles(ctx: LintContext) -> Iterator[Diagnostic]:
    """One NOTE per triggering cycle the layered termination analysis
    certifies without user help (replacing the RPL007 suggestion that
    the pre-layered linter would have emitted for it)."""
    report = ctx.termination_report()
    for verdict in report.verdicts:
        if verdict.verdict != VERDICT_AUTO:
            continue
        members = "{" + ", ".join(sorted(verdict.component)) + "}"
        stratum = (
            f" (stratum {verdict.stratum})"
            if verdict.stratum is not None
            else ""
        )
        detail = f": {verdict.detail}" if verdict.detail else ""
        yield ctx.diagnostic(
            "RPL009",
            min(verdict.component),
            f"triggering cycle {members} auto-certified by the "
            f"{verdict.analyzer} analyzer{stratum}{detail}; no "
            f"--certify-termination needed",
        )


# ----------------------------------------------------------------------
# RPL010 — replayable non-termination witnesses
# ----------------------------------------------------------------------


@lint_pass("RPL010")
def non_termination_witnesses(ctx: LintContext) -> Iterator[Diagnostic]:
    """One ERROR per cycle with a validated concrete looping run. The
    witness trace rides on the diagnostic (SARIF ``codeFlows``); the
    full witness — seed statements included — is in the analyzer's
    JSON report and replays via ``repro replay-witness``."""
    report = ctx.termination_report()
    for verdict in report.verdicts:
        if verdict.verdict != VERDICT_WITNESS or verdict.witness is None:
            continue
        witness = verdict.witness
        members = "{" + ", ".join(sorted(verdict.component)) + "}"
        anchor = (
            witness.cycle[0] if witness.cycle else min(verdict.component)
        )
        loop = " -> ".join(witness.cycle)
        diagnostic = ctx.diagnostic(
            "RPL010",
            anchor,
            f"rule processing does not terminate: cycle {members} has "
            f"a replayable {witness.kind} witness looping on [{loop}]; "
            f"replay it with `repro replay-witness`",
        )
        yield replace(diagnostic, trace=witness.trace)
