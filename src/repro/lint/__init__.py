"""``repro.lint`` — static diagnostics over parsed rule programs.

The lint subsystem runs a pipeline of registered passes over a bound
:class:`~repro.rules.ruleset.RuleSet` and reports severity-ranked
findings with stable codes (``RPL001``...). It shares the analysis
substrate — derived definitions, attribute-level dataflow, Section 9
reachability, the termination heuristics — so its findings are exactly
consistent with what the Section 5–9 analyses conclude (or silently
tolerate).

Programmatic entry point::

    from repro.lint import lint_ruleset
    report = lint_ruleset(ruleset, source=text, path="my.rules",
                          entry_tables={"orders"})
    for diagnostic in report.diagnostics:
        print(diagnostic.render(report.path))
    exit(1 if report.has_errors else 0)

``repro lint`` (see :mod:`repro.cli`) is the command-line face, with
``--format text|json|sarif``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Iterable

from repro.analysis.derived import DerivedDefinitions
from repro.lint.diagnostics import (
    DIAGNOSTIC_CODES,
    CodeInfo,
    Diagnostic,
    Severity,
)
from repro.lint.passes import LINT_PASSES, LintContext
from repro.lint.sarif import to_sarif
from repro.rules.ruleset import RuleSet

__all__ = [
    "DIAGNOSTIC_CODES",
    "LINT_PASSES",
    "CodeInfo",
    "Diagnostic",
    "LintContext",
    "LintReport",
    "Severity",
    "lint_ruleset",
    "rule_source_lines",
]

_CREATE_RULE = re.compile(r"^\s*create\s+rule\s+([A-Za-z_][A-Za-z0-9_]*)", re.I)


def rule_source_lines(source: str) -> dict[str, int]:
    """Map each rule name to the 1-based line of its ``create rule``."""
    lines: dict[str, int] = {}
    for number, line in enumerate(source.splitlines(), start=1):
        match = _CREATE_RULE.match(line)
        if match:
            lines.setdefault(match.group(1).lower(), number)
    return lines


@dataclass
class LintReport:
    """The collated outcome of one lint run."""

    diagnostics: list[Diagnostic]
    path: str | None = None
    #: codes that were executed (the full registry, for SARIF tooling)
    codes: tuple[str, ...] = field(
        default_factory=lambda: tuple(sorted(DIAGNOSTIC_CODES))
    )

    @property
    def has_errors(self) -> bool:
        return any(
            diagnostic.severity is Severity.ERROR
            for diagnostic in self.diagnostics
        )

    def counts(self) -> dict[str, int]:
        counts = {severity.value: 0 for severity in Severity}
        for diagnostic in self.diagnostics:
            counts[diagnostic.severity.value] += 1
        return counts

    def render_text(self) -> str:
        if not self.diagnostics:
            return f"{self.path or '<rules>'}: no findings"
        lines = [
            diagnostic.render(self.path) for diagnostic in self.diagnostics
        ]
        counts = self.counts()
        lines.append(
            f"{len(self.diagnostics)} finding(s): "
            f"{counts['error']} error(s), {counts['warning']} warning(s), "
            f"{counts['note']} note(s)"
        )
        return "\n".join(lines)

    def to_json_dict(self) -> dict:
        return {
            "path": self.path,
            "summary": self.counts(),
            "diagnostics": [
                diagnostic.to_dict() for diagnostic in self.diagnostics
            ],
        }

    def to_sarif(self) -> dict:
        return to_sarif(self.diagnostics, artifact_uri=self.path)


def lint_ruleset(
    ruleset: RuleSet,
    *,
    source: str | None = None,
    path: str | None = None,
    entry_tables: Iterable[str] | None = None,
    certified_termination: Iterable[str] = (),
    only: Iterable[str] | None = None,
) -> LintReport:
    """Run every registered lint pass over *ruleset*.

    ``source``/``path`` attach physical locations to the findings.
    ``entry_tables`` declares which tables user transactions may touch
    (Section 9); without it RPL001 cannot fire. ``only`` restricts the
    run to a subset of diagnostic codes.
    """
    context = LintContext(
        ruleset=ruleset,
        definitions=DerivedDefinitions(ruleset),
        entry_tables=(
            frozenset(table.lower() for table in entry_tables)
            if entry_tables is not None
            else None
        ),
        certified_termination=frozenset(
            name.lower() for name in certified_termination
        ),
        lines=rule_source_lines(source) if source else {},
        source=source,
    )
    wanted = frozenset(only) if only is not None else None
    diagnostics: list[Diagnostic] = []
    for code in sorted(LINT_PASSES):
        if wanted is not None and code not in wanted:
            continue
        diagnostics.extend(LINT_PASSES[code](context))
    diagnostics.sort(key=Diagnostic.sort_key)
    return LintReport(diagnostics=diagnostics, path=path)
