"""Condition satisfiability checks: constant folding + interval analysis.

Two cheap, purely syntactic engines power the RPL004 lint pass:

* **Constant folding** reuses the runtime expression evaluator on an
  empty row context: any (sub)expression with no column references and
  no subqueries evaluates to its SQL value, three-valued logic included.
  A rule condition folding to FALSE or UNKNOWN can never be satisfied
  (Starburst runs the action only when the condition is *true*).

* **Interval analysis** looks at the top-level conjuncts of a predicate
  and accumulates, per column reference, the bounds imposed by
  ``column op literal`` comparisons. An empty interval — ``c > 5 and
  c < 3``, ``c = 1 and c = 2``, ``c = 1 and c <> 1`` — proves the
  conjunction unsatisfiable even though no single conjunct folds.

Both are *definitely-unsatisfiable* proofs: :func:`unsatisfiable`
returning ``None`` means nothing was proven, never that the condition
is satisfiable.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.engine.expressions import Evaluator, RowContext
from repro.engine.values import sql_is_truthy
from repro.errors import ReproError
from repro.lang import ast

_UNFOLDABLE = object()


def fold_constant(expr: ast.Expression):
    """The SQL value of *expr* when it is a closed constant expression,
    else the ``_UNFOLDABLE`` sentinel (exposed via :func:`is_folded`)."""
    try:
        return Evaluator(provider=None).evaluate(expr, RowContext())
    except (ReproError, ZeroDivisionError, TypeError, AttributeError):
        # AttributeError: a subquery reached the provider-less evaluator;
        # the expression is not a closed constant.
        return _UNFOLDABLE


def is_folded(value) -> bool:
    return value is not _UNFOLDABLE


def _conjuncts(expr: ast.Expression):
    if isinstance(expr, ast.BinaryOp) and expr.op == "and":
        yield from _conjuncts(expr.left)
        yield from _conjuncts(expr.right)
    else:
        yield expr


def _render_value(value) -> str:
    if value is None:
        return "UNKNOWN"
    return str(value)


# ----------------------------------------------------------------------
# Interval accumulation
# ----------------------------------------------------------------------

_FLIPPED = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "=", "<>": "<>"}


@dataclass
class _Interval:
    """Accumulated constraints on one column reference."""

    lower: object = None
    lower_strict: bool = False
    upper: object = None
    upper_strict: bool = False
    equal: object = None
    has_equal: bool = False
    not_equal: set = field(default_factory=set)
    equality_conflict: str | None = None

    def add(self, op: str, value) -> None:
        if op == "=":
            if not self.has_equal:
                self.equal = value
                self.has_equal = True
            elif self.equal != value:
                self.equality_conflict = (
                    f"= {self.equal!r} contradicts = {value!r}"
                )
        elif op == "<>":
            self.not_equal.add(value)
        elif op in ("<", "<="):
            strict = op == "<"
            if self.upper is None or _lt(value, self.upper) or (
                value == self.upper and strict and not self.upper_strict
            ):
                self.upper = value
                self.upper_strict = strict
        elif op in (">", ">="):
            strict = op == ">"
            if self.lower is None or _lt(self.lower, value) or (
                value == self.lower and strict and not self.lower_strict
            ):
                self.lower = value
                self.lower_strict = strict

    def contradiction(self) -> str | None:
        if self.equality_conflict is not None:
            return self.equality_conflict
        if self.has_equal:
            if self.equal in self.not_equal:
                return f"= {self.equal!r} contradicts <> {self.equal!r}"
            if self.lower is not None and (
                _lt(self.equal, self.lower)
                or (self.equal == self.lower and self.lower_strict)
            ):
                op = ">" if self.lower_strict else ">="
                return f"= {self.equal!r} contradicts {op} {self.lower!r}"
            if self.upper is not None and (
                _lt(self.upper, self.equal)
                or (self.equal == self.upper and self.upper_strict)
            ):
                op = "<" if self.upper_strict else "<="
                return f"= {self.equal!r} contradicts {op} {self.upper!r}"
            return None
        if self.lower is not None and self.upper is not None:
            if _lt(self.upper, self.lower) or (
                self.lower == self.upper
                and (self.lower_strict or self.upper_strict)
            ):
                low_op = ">" if self.lower_strict else ">="
                up_op = "<" if self.upper_strict else "<="
                return (
                    f"{low_op} {self.lower!r} contradicts "
                    f"{up_op} {self.upper!r}"
                )
        return None


def _lt(a, b) -> bool:
    try:
        return a < b
    except TypeError:
        return False


def _column_key(expr: ast.Expression) -> str | None:
    if isinstance(expr, ast.ColumnRef):
        if expr.table:
            return f"{expr.table.lower()}.{expr.column.lower()}"
        return expr.column.lower()
    return None


def conjunction_contradiction(conjuncts: list[ast.Expression]) -> str | None:
    """An interval contradiction among *conjuncts*, or ``None``.

    Only ``column op literal-constant`` comparisons participate; every
    other conjunct is ignored (it can only further restrict the row
    set, so ignoring it is sound for an unsatisfiability proof).
    """
    intervals: dict[str, _Interval] = {}
    for conjunct in conjuncts:
        if not isinstance(conjunct, ast.BinaryOp):
            continue
        if conjunct.op not in _FLIPPED:
            continue
        key = _column_key(conjunct.left)
        op = conjunct.op
        other = conjunct.right
        if key is None:
            key = _column_key(conjunct.right)
            op = _FLIPPED[conjunct.op]
            other = conjunct.left
        if key is None:
            continue
        value = fold_constant(other)
        if not is_folded(value) or value is None:
            continue
        intervals.setdefault(key, _Interval()).add(op, value)
    for key in sorted(intervals):
        conflict = intervals[key].contradiction()
        if conflict is not None:
            return f"{key}: {conflict}"
    return None


# ----------------------------------------------------------------------
# The combined satisfiability verdict
# ----------------------------------------------------------------------


def unsatisfiable(expr: ast.Expression, _depth: int = 0) -> str | None:
    """A proof that *expr* can never be SQL-true, or ``None``.

    Combines whole-expression folding, per-conjunct folding, interval
    contradictions, disjunction recursion (an OR is unsatisfiable only
    when both branches are), and positive-``EXISTS`` recursion (an
    ``EXISTS`` whose subquery WHERE is unsatisfiable yields no rows).
    """
    if _depth > 8:
        return None

    value = fold_constant(expr)
    if is_folded(value):
        if not sql_is_truthy(value):
            return f"folds to {_render_value(value)}"
        return None

    if isinstance(expr, ast.BinaryOp) and expr.op == "or":
        left = unsatisfiable(expr.left, _depth + 1)
        if left is None:
            return None
        right = unsatisfiable(expr.right, _depth + 1)
        if right is None:
            return None
        return f"both OR branches unsatisfiable ({left}; {right})"

    conjuncts = list(_conjuncts(expr))
    for conjunct in conjuncts:
        if conjunct is expr:
            continue
        folded = fold_constant(conjunct)
        if is_folded(folded) and not sql_is_truthy(folded):
            return f"conjunct folds to {_render_value(folded)}"

    conflict = conjunction_contradiction(conjuncts)
    if conflict is not None:
        return f"contradictory bounds on {conflict}"

    for conjunct in conjuncts:
        if (
            isinstance(conjunct, ast.Exists)
            and not conjunct.negated
            and conjunct.subquery.where is not None
        ):
            inner = unsatisfiable(conjunct.subquery.where, _depth + 1)
            if inner is not None:
                return f"EXISTS subquery WHERE unsatisfiable: {inner}"
    return None
