"""SARIF 2.1.0 rendering of lint findings.

The `Static Analysis Results Interchange Format
<https://docs.oasis-open.org/sarif/sarif/v2.1.0/sarif-v2.1.0.html>`_ is
the lingua franca of CI code-scanning surfaces. One ``run`` is emitted
per lint invocation; the tool driver advertises the full stable
diagnostic-code registry (so suppressions and dashboards can key on
codes that did not fire this run), and every finding becomes a
``result`` with its rule's logical location and — when the linted
source text was available — the physical line of its ``create rule``.
"""

from __future__ import annotations

from repro.lint.diagnostics import DIAGNOSTIC_CODES, Diagnostic

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)
TOOL_NAME = "repro-lint"
TOOL_VERSION = "1.0.0"


def to_sarif(
    diagnostics: list[Diagnostic], *, artifact_uri: str | None = None
) -> dict:
    """One SARIF log dict covering *diagnostics* (JSON-serializable)."""
    codes = sorted(DIAGNOSTIC_CODES)
    rule_index = {code: index for index, code in enumerate(codes)}

    results = []
    for diagnostic in diagnostics:
        result: dict = {
            "ruleId": diagnostic.code,
            "ruleIndex": rule_index[diagnostic.code],
            "level": diagnostic.severity.value,
            "message": {"text": diagnostic.message},
        }
        location: dict = {}
        if artifact_uri is not None:
            physical: dict = {
                "artifactLocation": {"uri": artifact_uri},
            }
            if diagnostic.line is not None:
                physical["region"] = {"startLine": diagnostic.line}
            location["physicalLocation"] = physical
        if diagnostic.rule is not None:
            location["logicalLocations"] = [
                {"name": diagnostic.rule, "kind": "rule"}
            ]
        if location:
            result["locations"] = [location]
        if diagnostic.trace is not None:
            # Executable findings (RPL010 non-termination witnesses)
            # carry the rule-consideration trace as a codeFlow so
            # code-scanning UIs can step through the looping run.
            result["codeFlows"] = [
                {
                    "threadFlows": [
                        {
                            "locations": [
                                {
                                    "location": {
                                        "logicalLocations": [
                                            {"name": rule, "kind": "rule"}
                                        ],
                                        "message": {
                                            "text": (
                                                f"step {step}: "
                                                f"consider {rule}"
                                            )
                                        },
                                    }
                                }
                                for step, rule in enumerate(
                                    diagnostic.trace, start=1
                                )
                            ]
                        }
                    ]
                }
            ]
        results.append(result)

    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": TOOL_NAME,
                        "version": TOOL_VERSION,
                        "informationUri": (
                            "https://dl.acm.org/doi/10.1145/130283.130293"
                        ),
                        "rules": [
                            {
                                "id": code,
                                "name": DIAGNOSTIC_CODES[code].name,
                                "shortDescription": {
                                    "text": DIAGNOSTIC_CODES[
                                        code
                                    ].short_description
                                },
                                "defaultConfiguration": {
                                    "level": DIAGNOSTIC_CODES[
                                        code
                                    ].severity.value
                                },
                            }
                            for code in codes
                        ],
                    }
                },
                "results": results,
            }
        ],
    }
