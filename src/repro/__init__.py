"""repro — Behavior of Database Production Rules (SIGMOD 1992), reproduced.

A complete implementation of Aiken, Widom & Hellerstein's static
analyses for database production rules — termination (triggering
graphs), confluence (the Confluence Requirement over rule
commutativity), partial confluence (significant rule sets), and
observable determinism (the ``Obs`` reduction) — together with the full
substrate they are defined over: a Starburst-style rule language and
rule processor on a small relational engine with net-effect transition
semantics, plus an execution-graph oracle for validating every verdict.

Quickstart::

    from repro import Database, RuleAnalyzer, RuleSet, schema_from_spec

    schema = schema_from_spec({"emp": ["id", "dept", "salary"]})
    rules = RuleSet.parse('''
        create rule cap_salary on emp
        when updated(salary)
        if exists (select * from new_updated where salary > 100)
        then update emp set salary = 100 where salary > 100
    ''', schema)

    analyzer = RuleAnalyzer(rules)
    report = analyzer.analyze()
    print(report.summary())
"""

from repro.config import (
    DEFAULT_CONFIG,
    DEFAULT_SERVER_OPTIONS,
    ExecutionConfig,
    ServerOptions,
)
from repro.errors import ConflictError
from repro.schema.catalog import (
    ColumnDef,
    ColumnType,
    Schema,
    TableDef,
    schema_from_spec,
)
from repro.engine.database import Database
from repro.engine.dml import execute_statement
from repro.lang.parser import (
    parse_expression,
    parse_rule,
    parse_rules,
    parse_statement,
)
from repro.rules.rule import Rule
from repro.rules.ruleset import RuleSet
from repro.rules.events import TriggerEvent
from repro.runtime.processor import RuleProcessor
from repro.runtime.server import RuleServer, Session, serial_replay
from repro.runtime.exec_graph import ExecutionGraph, explore, explore_ruleset
from repro.analysis.analyzer import AnalysisReport, RuleAnalyzer
from repro.analysis.derived import DerivedDefinitions
from repro.analysis.engine import AnalysisEngine, EngineStats
from repro.analysis.incremental import IncrementalAnalyzer
from repro.analysis.report import render_markdown
from repro.runtime.trace import render_trace, trace_run
from repro.validate.oracle import OracleVerdict, oracle_verdict
from repro.validate.sampling import SampleReport, sample_runs
from repro.validate.soundness import SoundnessReport, check_soundness

__version__ = "1.0.0"

__all__ = [
    "DEFAULT_CONFIG",
    "DEFAULT_SERVER_OPTIONS",
    "ExecutionConfig",
    "ServerOptions",
    "ConflictError",
    "ColumnDef",
    "ColumnType",
    "Schema",
    "TableDef",
    "schema_from_spec",
    "Database",
    "execute_statement",
    "parse_expression",
    "parse_rule",
    "parse_rules",
    "parse_statement",
    "Rule",
    "RuleSet",
    "TriggerEvent",
    "RuleProcessor",
    "RuleServer",
    "Session",
    "serial_replay",
    "ExecutionGraph",
    "explore",
    "explore_ruleset",
    "AnalysisReport",
    "RuleAnalyzer",
    "AnalysisEngine",
    "EngineStats",
    "DerivedDefinitions",
    "IncrementalAnalyzer",
    "render_markdown",
    "render_trace",
    "trace_run",
    "OracleVerdict",
    "oracle_verdict",
    "SampleReport",
    "sample_runs",
    "SoundnessReport",
    "check_soundness",
    "__version__",
]
