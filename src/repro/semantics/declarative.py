"""A declarative-semantics baseline: iterated per-stratum fixpoints.

Flesca/Greco give active-rule programs a stable-model-style declarative
semantics: partition the rules into strata along the (refined)
triggering graph, then compute one fixpoint per stratum, bottom up —
the outcome of a *stratified* program is the unique model this
iteration reaches, independent of any operational scheduling choice.
This module computes that outcome directly from the strata produced by
:class:`repro.analysis.stratification.StratificationAnalyzer`, giving
the repository an oracle that is **independent of the operational
runtime**: no :class:`~repro.runtime.processor.RuleProcessor`, no
marker dictionary, no consideration strategies, no match network, no
scheduler. What it shares with the runtime is only the storage/DML
substrate (tables, statements, net-effect folding) — the machinery
under test is re-derived, not reused.

How the fixpoints run
---------------------

The engine keeps, per rule, its own *pending transition*: the net
effect of every primitive logged since the rule last fired (or since
the start of the transaction). A rule is **enabled** when that pending
net effect intersects its Triggered-By set and no higher-priority
enabled rule exists (Section 3's ``Choose``). Each step fires the
enabled rule in the **lowest stratum** (ties broken by definition
order): stratum 0 runs to fixpoint before stratum 1 starts, and —
because refined-graph edges always point from lower to higher strata —
a stratified program never re-enables a completed stratum. For
inputs that are *not* stratified (the refined graph has cycles) the
iteration simply drops back to the re-enabled stratum, which keeps the
computation total and keeps a key containment property:

**Reachability.** Every rule this engine fires is, at that moment,
eligible under the operational semantics (enabled ∩ ``Choose``), so
the declarative run *is* one of the execution orders ``explore()``
enumerates. Hence the declarative outcome is always contained in the
reachable-final set; for stratified, confluence-certified programs the
reachable set is a singleton and the two semantics must agree exactly
(the property :mod:`repro.validate.crosscheck` asserts).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.derived import DerivedDefinitions
from repro.analysis.stratification import (
    StratificationAnalysis,
    StratificationAnalyzer,
)
from repro.config import ExecutionConfig
from repro.engine import plan as P
from repro.engine.database import Database
from repro.engine.dml import execute_statement
from repro.engine.expressions import Evaluator, RowContext
from repro.engine.query import DatabaseProvider, OverlayProvider
from repro.engine.values import sql_is_truthy
from repro.errors import RollbackSignal, RuleProcessingError
from repro.lang.parser import parse_statement
from repro.rules.ruleset import RuleSet
from repro.transitions.delta import DeltaLog
from repro.transitions.net_effect import NetEffect
from repro.transitions.transition_tables import transition_table_overlays

__all__ = [
    "DeclarativeEngine",
    "DeclarativeOutcome",
    "ProgramClassification",
    "classify_program",
    "declarative_outcome",
]

#: default firing budget before the engine reports non-quiescence
DEFAULT_MAX_FIRINGS = 20_000


@dataclass(frozen=True)
class ProgramClassification:
    """Where a rule program sits on the soundness boundary.

    ``stratified`` — the refined triggering graph is acyclic, so the
    per-stratum iteration is a genuine bottom-up fixpoint computation
    (Flesca/Greco's class). ``confluent`` — every execution order
    reaches the same final database (statically certified, or declared
    by a workload that is confluent by construction — the Section 6.1
    user-certification escape hatch). The differential contract:

    * stratified and confluent — the declarative outcome **equals**
      every reachable final;
    * otherwise — the declarative outcome is **contained in** the
      reachable-final set (it is itself a reachable final), nothing
      stronger.
    """

    stratified: bool
    confluent: bool
    strata: dict[str, int]
    analysis: StratificationAnalysis | None = None

    @property
    def label(self) -> str:
        if self.stratified and self.confluent:
            return "stratified-confluent"
        if self.stratified:
            return "stratified"
        return "unstratified"


def classify_program(
    ruleset: RuleSet, *, certified_confluent: bool | None = None
) -> ProgramClassification:
    """Stratify *ruleset* and settle its differential contract.

    ``certified_confluent`` short-circuits the pairwise confluence
    analysis: workloads whose construction guarantees a unique final
    (disjoint per-region write slices, idempotent absolute updates)
    pass ``True`` — the analyzer's Lemma 6.1 test is sound but too
    conservative to see slice-disjointness. ``None`` runs the static
    analysis (with refinements).
    """
    analysis = StratificationAnalyzer(DerivedDefinitions(ruleset)).analyze()
    stratified = not analysis.refined.cyclic_components()
    if certified_confluent is None:
        from repro.analysis.analyzer import RuleAnalyzer

        certified_confluent = RuleAnalyzer(
            ruleset, refine=True
        ).analyze_confluence().requirement_holds
    return ProgramClassification(
        stratified=stratified,
        confluent=bool(certified_confluent),
        strata=dict(analysis.strata),
        analysis=analysis,
    )


@dataclass
class DeclarativeOutcome:
    """What the per-stratum fixpoint iteration computed.

    ``status`` is ``"quiescent"`` (a fixpoint of every stratum was
    reached), ``"rolled_back"`` (a rule action rolled the transaction
    back — the declarative outcome is the pre-transaction state), or
    ``"nonterminating"`` (the firing budget ran out without reaching a
    fixpoint; ``final`` is ``None`` and nothing is asserted).
    """

    status: str
    final: tuple | None
    firings: int
    #: enabled-rule considerations whose condition was false (counted
    #: separately: they advance the rule's transition but write nothing)
    refutations: int
    #: completed per-stratum fixpoints, in completion order; a stratum
    #: re-entered after completing (unstratified inputs only) appears
    #: again
    stratum_fixpoints: tuple[int, ...] = ()
    #: rule names in firing order (the replayable witness that the
    #: declarative run is one of explore()'s execution orders)
    firing_sequence: tuple[str, ...] = ()

    @property
    def quiescent(self) -> bool:
        return self.status == "quiescent"


class _Pending:
    """One rule's pending transition under the declarative iteration:
    the net effect folded from the log suffix past its last firing."""

    __slots__ = ("position", "net")

    def __init__(self, position: int) -> None:
        self.position = position
        self.net = NetEffect()


class DeclarativeEngine:
    """Computes declarative outcomes over one database.

    The engine owns *database* (pass a copy to keep the original) and
    mutates it to the declarative outcome of each transaction. The
    ``config`` only selects the statement-execution path (planned by
    default, ``matching="naive"`` for interpreted evaluation) — there
    is deliberately no rete, scheduler, durability, or strategy knob:
    those are operational concerns this baseline exists to check.
    """

    def __init__(
        self,
        ruleset: RuleSet,
        database: Database,
        *,
        strata: dict[str, int] | None = None,
        config: ExecutionConfig | None = None,
        max_firings: int = DEFAULT_MAX_FIRINGS,
    ) -> None:
        if ruleset.schema is not database.schema:
            raise RuleProcessingError(
                "rule set and database use different schemas"
            )
        self.ruleset = ruleset
        self.database = database
        if strata is None:
            strata = classify_program(
                ruleset, certified_confluent=False
            ).strata
        self.strata = {name.lower(): level for name, level in strata.items()}
        self.config = config or ExecutionConfig()
        self.max_firings = max_firings
        self._column_names = {
            table.name: table.column_names for table in ruleset.schema
        }
        #: definition order resolves stratum ties deterministically
        self._order = {name: i for i, name in enumerate(ruleset.names)}
        self.log = DeltaLog()
        self._pending: dict[str, _Pending] = {
            rule.name: _Pending(0) for rule in ruleset
        }

    # ------------------------------------------------------------------
    # Pending transitions and enablement
    # ------------------------------------------------------------------

    def _advance(self, rule_name: str) -> _Pending:
        pending = self._pending[rule_name]
        position = self.log.position
        if pending.position < position:
            pending.net = pending.net.fold(
                self.log.iter_range(pending.position, position)
            )
            pending.position = position
        return pending

    def _enabled_rules(self) -> tuple[str, ...]:
        """Triggered rules filtered by ``Choose`` (definition order)."""
        triggered = []
        for rule in self.ruleset:
            if not self.ruleset.is_active(rule.name):
                continue
            net = self._advance(rule.name).net
            operations = net.operations_for(
                rule.table, self._column_names[rule.table]
            )
            if operations & rule.triggered_by:
                triggered.append(rule.name)
        return self.ruleset.choose(triggered)

    def _next_rule(self, enabled: tuple[str, ...]) -> str:
        """The enabled rule in the lowest stratum (ties: definition)."""
        return min(
            enabled,
            key=lambda name: (
                self.strata.get(name, len(self.strata)),
                self._order[name],
            ),
        )

    # ------------------------------------------------------------------
    # Firing one rule
    # ------------------------------------------------------------------

    def _fire(self, rule_name: str) -> tuple[bool, bool]:
        """Fire one enabled rule; returns (wrote, rolled_back).

        Mirrors the *specification* of rule consideration (transition
        tables from the pending net effect, condition, actions; the
        pending transition resets before the actions run so the rule's
        own writes form its next transition) without reusing the
        runtime's implementation of it.
        """
        rule = self.ruleset.rule(rule_name)
        pending = self._advance(rule_name)
        overlays = transition_table_overlays(
            pending.net, rule.table, self._column_names[rule.table]
        )
        provider = OverlayProvider(DatabaseProvider(self.database), overlays)
        self._pending[rule_name] = _Pending(self.log.position)

        if rule.condition is not None:
            evaluator = Evaluator(provider, config=self.config)
            if self.config.matching == "naive":
                value = evaluator.evaluate(rule.condition, RowContext())
            else:
                predicate = P.compile_predicate(rule.condition)
                value = predicate(RowContext(), evaluator)
            if not sql_is_truthy(value):
                return False, False

        try:
            for action in rule.actions:
                execute_statement(
                    self.database,
                    action,
                    provider=provider,
                    log=self.log,
                    config=self.config,
                )
        except RollbackSignal:
            return True, True
        return True, False

    # ------------------------------------------------------------------
    # Transactions
    # ------------------------------------------------------------------

    def transaction(self, statements) -> DeclarativeOutcome:
        """Run user *statements* and iterate strata to a fixpoint.

        Accepts statement ASTs or source strings. Sequential calls model
        sequential transactions: each starts from the previous outcome
        with every pending transition empty (quiescence advances all of
        them past the log, matching Section 2's assertion-point rule).
        """
        snapshot = self.database.snapshot()
        for statement in statements:
            if isinstance(statement, str):
                statement = parse_statement(statement)
            execute_statement(
                self.database, statement, log=self.log, config=self.config
            )

        firings = 0
        refutations = 0
        sequence: list[str] = []
        fixpoints: list[int] = []
        active_stratum: int | None = None
        while True:
            enabled = self._enabled_rules()
            if not enabled:
                if active_stratum is not None:
                    fixpoints.append(active_stratum)
                self._quiesce_pendings()
                return DeclarativeOutcome(
                    status="quiescent",
                    final=self.database.canonical(),
                    firings=firings,
                    refutations=refutations,
                    stratum_fixpoints=tuple(fixpoints),
                    firing_sequence=tuple(sequence),
                )
            if firings + refutations >= self.max_firings:
                return DeclarativeOutcome(
                    status="nonterminating",
                    final=None,
                    firings=firings,
                    refutations=refutations,
                    stratum_fixpoints=tuple(fixpoints),
                    firing_sequence=tuple(sequence),
                )
            chosen = self._next_rule(enabled)
            stratum = self.strata.get(chosen, len(self.strata))
            if active_stratum is None:
                active_stratum = stratum
            elif stratum != active_stratum:
                # The previous stratum reached its fixpoint (stratified
                # inputs only move upward; a drop-back re-enters below).
                fixpoints.append(active_stratum)
                active_stratum = stratum
            wrote, rolled_back = self._fire(chosen)
            if rolled_back:
                self.database.restore(snapshot)
                self._quiesce_pendings()
                return DeclarativeOutcome(
                    status="rolled_back",
                    final=self.database.canonical(),
                    firings=firings + 1,
                    refutations=refutations,
                    stratum_fixpoints=tuple(fixpoints),
                    firing_sequence=tuple(sequence) + (chosen,),
                )
            if wrote:
                firings += 1
                sequence.append(chosen)
            else:
                refutations += 1

    def _quiesce_pendings(self) -> None:
        position = self.log.position
        for name in self._pending:
            self._pending[name] = _Pending(position)


def declarative_outcome(
    ruleset: RuleSet,
    database: Database,
    statements,
    *,
    strata: dict[str, int] | None = None,
    config: ExecutionConfig | None = None,
    max_firings: int = DEFAULT_MAX_FIRINGS,
) -> DeclarativeOutcome:
    """The declarative outcome of one transaction (database is copied)."""
    engine = DeclarativeEngine(
        ruleset,
        database.copy(),
        strata=strata,
        config=config,
        max_firings=max_firings,
    )
    return engine.transaction(statements)
