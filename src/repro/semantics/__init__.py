"""Declarative (stable-model-style) semantics for stratified rule sets.

An *independent* semantics for rule programs, after Flesca/Greco's
"Declarative Semantics for Active Rules" (see PAPERS.md): the outcome
of a stratified program is computed directly from the refined strata of
:mod:`repro.analysis.stratification` by iterated per-stratum fixpoints
over net effects — no operational scheduler, no markers, no match
network. The differential harness in :mod:`repro.validate.crosscheck`
checks every operational executor against it.
"""

from repro.semantics.declarative import (
    DeclarativeEngine,
    DeclarativeOutcome,
    ProgramClassification,
    classify_program,
    declarative_outcome,
)

__all__ = [
    "DeclarativeEngine",
    "DeclarativeOutcome",
    "ProgramClassification",
    "classify_program",
    "declarative_outcome",
]
