"""Rule-processing runtime: the Starburst execution semantics of Section 2.

* :mod:`repro.runtime.processor` — the rule processor: per-rule
  consideration markers over a shared delta log, composite-transition
  triggering, ``Choose`` eligibility, rollback, observable actions.
* :mod:`repro.runtime.strategies` — pluggable policies for picking one
  rule when several are eligible (the source of nondeterminism the
  paper's confluence/determinism analyses are about).
* :mod:`repro.runtime.exec_graph` — the execution-graph explorer of
  Section 4: exhaustively enumerates all choice orders, yielding the
  ground truth ("oracle") for termination, confluence and observable
  determinism on concrete instances.
* :mod:`repro.runtime.server` — the concurrent multi-session server:
  snapshot-isolation MVCC over copy-on-write forks with
  first-committer-wins validation and a group-commit WAL.
"""

from repro.runtime.observer import ObservableAction
from repro.runtime.parallel import ParallelScheduler, SchedulerStats
from repro.runtime.processor import ConsiderationOutcome, ProcessingResult, RuleProcessor
from repro.runtime.server import (
    CommitReceipt,
    RuleServer,
    ServerStats,
    Session,
    TransactionOutcome,
    serial_replay,
)
from repro.runtime.strategies import (
    FirstEligibleStrategy,
    RandomStrategy,
    ScriptedStrategy,
)
from repro.runtime.exec_graph import ExecutionGraph, explore

__all__ = [
    "ObservableAction",
    "ParallelScheduler",
    "SchedulerStats",
    "CommitReceipt",
    "RuleServer",
    "ServerStats",
    "Session",
    "TransactionOutcome",
    "serial_replay",
    "ConsiderationOutcome",
    "ProcessingResult",
    "RuleProcessor",
    "FirstEligibleStrategy",
    "RandomStrategy",
    "ScriptedStrategy",
    "ExecutionGraph",
    "explore",
]
