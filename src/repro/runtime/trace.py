"""Human-readable rule-processing traces.

The paper motivates its analyses with how opaque rule processing is to
the programmer ("unstructured, unpredictable, and often
nondeterministic behavior ... can be a nightmare"). A trace makes one
concrete run legible: which rules were triggered by what, which was
chosen, what its condition saw, and what its action did.

:func:`trace_run` drives a processor to quiescence exactly like
:meth:`RuleProcessor.run` while recording a structured
:class:`TraceEvent` per step; :func:`render_trace` turns the events
into indented text.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import RuleProcessingLimitExceeded
from repro.runtime.processor import ProcessingResult, RuleProcessor
from repro.transitions.net_effect import NetEffect


@dataclass(frozen=True)
class TraceEvent:
    """One step of rule processing.

    ``kind`` is ``"consider"``, ``"rollback"`` or ``"quiescent"``.
    """

    kind: str
    step: int
    rule: str = ""
    triggered: tuple[str, ...] = ()
    eligible: tuple[str, ...] = ()
    transition_summary: str = ""
    condition_was_true: bool | None = None
    operations_performed: int = 0
    observables: tuple[str, ...] = ()


def summarize_net_effect(net: NetEffect) -> str:
    """One line: per-table insert/delete/update counts."""
    parts = []
    for table in net.tables:
        effect = net.table(table)
        counts = []
        if effect.inserted:
            counts.append(f"+{len(effect.inserted)}")
        if effect.deleted:
            counts.append(f"-{len(effect.deleted)}")
        if effect.updated:
            counts.append(f"~{len(effect.updated)}")
        parts.append(f"{table}({' '.join(counts)})")
    return ", ".join(parts) or "(empty)"


def trace_run(
    processor: RuleProcessor,
) -> tuple[ProcessingResult, list[TraceEvent]]:
    """Run *processor* to quiescence, returning the result and a trace."""
    events: list[TraceEvent] = []
    steps = []
    observables_before = len(processor.observables)
    step = 0

    while True:
        triggered = processor.triggered_rules()
        eligible = processor.eligible_rules()
        if not eligible:
            outcome = (
                "rolled_back" if processor.rolled_back else "quiescent"
            )
            events.append(
                TraceEvent(kind=outcome, step=step, triggered=triggered)
            )
            for name in processor.markers:
                processor.markers[name] = processor.log.position
            return (
                ProcessingResult(
                    outcome=outcome,
                    steps=steps,
                    observables=processor.observables[observables_before:],
                ),
                events,
            )
        if step >= processor.max_steps:
            raise RuleProcessingLimitExceeded(processor.max_steps)

        chosen = processor.strategy.choose(eligible)
        transition = summarize_net_effect(
            processor.pending_net_effect(chosen)
        )
        observables_at = len(processor.observables)
        outcome = processor.consider(chosen, eligible=eligible)
        steps.append(outcome)
        new_observables = tuple(
            str(action)
            for action in processor.observables[observables_at:]
        )
        events.append(
            TraceEvent(
                kind="rollback" if outcome.rolled_back else "consider",
                step=step,
                rule=chosen,
                triggered=triggered,
                eligible=eligible,
                transition_summary=transition,
                condition_was_true=outcome.condition_was_true,
                operations_performed=outcome.operations_performed,
                observables=new_observables,
            )
        )
        step += 1


def render_trace(events: list[TraceEvent]) -> str:
    """Render a trace as indented text, one block per step."""
    lines: list[str] = []
    for event in events:
        if event.kind in ("quiescent", "rolled_back"):
            lines.append(f"[{event.step}] {event.kind}")
            continue
        header = f"[{event.step}] consider {event.rule}"
        if event.kind == "rollback":
            header += "  -> ROLLBACK"
        lines.append(header)
        lines.append(
            f"      triggered: {', '.join(event.triggered)}"
            + (
                f"   eligible: {', '.join(event.eligible)}"
                if event.eligible != event.triggered
                else ""
            )
        )
        lines.append(f"      transition: {event.transition_summary}")
        if event.condition_was_true is False:
            lines.append("      condition: false (no action)")
        elif event.operations_performed:
            lines.append(
                f"      action: {event.operations_performed} tuple "
                "operations"
            )
        for observable in event.observables:
            lines.append(f"      observable: {observable}")
    return "\n".join(lines)
