"""Execution-graph exploration (Section 4).

An execution graph has states ``S = (D, TR)`` — database state plus
triggered rules with their transitions — an initial state created by the
user-generated initial transition, and edges labeled with rules, one per
eligible choice. Exploring all branches yields ground truth for the
three properties the paper analyzes statically:

* **termination** — no infinite path: in the explored (finite,
  deduplicated) graph, no reachable cycle and no budget overrun;
* **confluence** — at most one final state: all paths end in the same
  database state;
* **observable determinism** — a unique stream of observable actions
  over all complete paths.

Observable streams are path-dependent (not a function of the state), so
the explorer tracks the set of observable streams that can reach each
state and the streams at final states.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.errors import ExplorationLimitExceeded
from repro.runtime.observer import ObservableAction
from repro.runtime.processor import RuleProcessor


@dataclass
class ExecutionGraph:
    """The result of exhaustive exploration from one initial state."""

    #: canonical key of the initial state
    initial: tuple
    #: state key -> list of (rule label, successor state key)
    edges: dict[tuple, list[tuple[str, tuple]]] = field(default_factory=dict)
    #: keys of final states (no triggered rules)
    final_states: set[tuple] = field(default_factory=set)
    #: canonical database state for each final state key
    final_databases: dict[tuple, tuple] = field(default_factory=dict)
    #: distinct full observable streams over all complete paths
    observable_streams: set[tuple[ObservableAction, ...]] = field(
        default_factory=set
    )
    #: True if exploration saw a cycle (an infinite path exists)
    has_cycle: bool = False
    #: True if exploration hit its state/depth budget (result is partial)
    truncated: bool = False
    #: True if path enumeration hit its budget (streams are partial)
    streams_truncated: bool = False
    #: duplicate states merged during exploration: a consider() produced
    #: a state whose fingerprint (memoized Database.canonical() plus the
    #: per-rule pending transitions) was already seen, so the branch was
    #: folded into the existing node instead of re-explored
    states_deduped: int = 0
    #: complete paths enumerated by the stream phase (0 when that phase
    #: was skipped because the graph is cyclic or truncated)
    _path_count: int = 0

    @property
    def state_count(self) -> int:
        return len(self.edges)

    @property
    def terminates(self) -> bool:
        """True iff every path is finite (only meaningful if not truncated)."""
        return not self.has_cycle and not self.truncated

    @property
    def is_confluent(self) -> bool:
        """At most one final database state (Section 6's definition).

        Only a guaranteed verdict when the graph is complete
        (``terminates`` is True).
        """
        return len(set(self.final_databases.values())) <= 1

    def is_confluent_for(self, projections: dict[tuple, tuple]) -> bool:
        """Partial confluence given per-final-state projected databases."""
        return len(set(projections.values())) <= 1

    @property
    def is_observably_deterministic(self) -> bool:
        """A single stream of observable actions across all paths."""
        return len(self.observable_streams) <= 1

    def paths_to_final(self) -> int:
        """Number of distinct complete paths (may be exponential; capped
        by the explorer's budget — partial iff ``streams_truncated``)."""
        return self._path_count

    def looping_path(self) -> tuple[tuple[str, ...], tuple[str, ...]] | None:
        """A concrete path witnessing ``has_cycle``.

        Returns ``(prefix, cycle)``: rule labels leading from the
        initial state to some state ``s``, then labels returning to
        ``s``. Replaying ``prefix`` followed by ``cycle`` repeatedly is
        an infinite execution. ``None`` when no reachable cycle exists.
        """
        WHITE, GRAY, BLACK = 0, 1, 2
        color: dict[tuple, int] = {}
        position: dict[tuple, int] = {}
        labels: list[str] = []
        if self.initial not in self.edges:
            return None
        stack: list[tuple[tuple, int]] = [(self.initial, 0)]
        color[self.initial] = GRAY
        position[self.initial] = 0
        while stack:
            node, index = stack[-1]
            successors = self.edges.get(node, [])
            if index < len(successors):
                stack[-1] = (node, index + 1)
                label, child = successors[index]
                child_color = color.get(child, WHITE)
                if child_color == GRAY:
                    split = position[child]
                    return tuple(labels[:split]), tuple(labels[split:] + [label])
                if child_color == WHITE and child in self.edges:
                    color[child] = GRAY
                    labels.append(label)
                    position[child] = len(labels)
                    stack.append((child, 0))
            else:
                color[node] = BLACK
                stack.pop()
                if stack:
                    labels.pop()
        return None

    def stats(self) -> dict:
        """Exploration counters, machine-readable (the CLI ``--json``
        surface; mirrors the analysis engine's stats section)."""
        return {
            "states": self.state_count,
            "states_deduped": self.states_deduped,
            "final_states": len(self.final_states),
            "distinct_final_databases": len(set(self.final_databases.values())),
            "observable_streams": len(self.observable_streams),
            "paths_to_final": self.paths_to_final(),
            "terminates": self.terminates,
            "confluent": self.is_confluent,
            "observably_deterministic": self.is_observably_deterministic,
            "has_cycle": self.has_cycle,
            "truncated": self.truncated,
            "streams_truncated": self.streams_truncated,
        }


def explore(
    processor: RuleProcessor,
    max_states: int = 2_000,
    max_depth: int = 200,
    max_paths: int = 20_000,
    on_limit: str = "mark",
) -> ExecutionGraph:
    """Explore every execution order from *processor*'s current state.

    The processor should already hold the initial transition (user
    operations executed, rules not yet processed). It is forked, never
    mutated.

    ``on_limit`` is ``"mark"`` (set ``truncated`` and return the partial
    graph) or ``"raise"`` (raise :class:`ExplorationLimitExceeded`).
    """
    initial = processor.fork()
    initial_key = initial.state_key()

    graph = ExecutionGraph(initial=initial_key)

    # Phase 1: build the deduplicated state graph (termination/confluence).
    # Frontier entries carry the state key computed at enqueue time —
    # state_key() is memoized per processor but re-deriving the tuple
    # for every dequeue is still O(rules).
    frontier: deque[tuple[RuleProcessor, int, tuple]] = deque(
        [(initial, 0, initial_key)]
    )
    seen: dict[tuple, bool] = {initial_key: True}

    while frontier:
        current, depth, key = frontier.popleft()
        if key in graph.edges or key in graph.final_states:
            continue

        eligible = current.eligible_rules()
        if not eligible:
            graph.final_states.add(key)
            graph.final_databases[key] = current.database.canonical()
            continue

        if len(graph.edges) >= max_states:
            if on_limit == "raise":
                raise ExplorationLimitExceeded(max_states)
            graph.truncated = True
            break
        if depth >= max_depth:
            if on_limit == "raise":
                raise ExplorationLimitExceeded(max_depth)
            graph.truncated = True
            break

        successors: list[tuple[str, tuple]] = []
        for rule_name in eligible:
            # The fork shares the parent's cached per-rule net effects,
            # canonical fragments, and COW database pages; consider()
            # reuses the eligibility already computed on this state.
            child = current.fork()
            child.consider(rule_name, eligible=eligible)
            child_key = child.state_key()
            successors.append((rule_name, child_key))
            if child_key not in seen:
                seen[child_key] = True
                frontier.append((child, depth + 1, child_key))
            else:
                graph.states_deduped += 1
        graph.edges[key] = successors

    graph.has_cycle = _has_reachable_cycle(graph)

    # Phase 2: enumerate complete paths for observable streams. Skipped
    # when the graph is cyclic or truncated (streams would be unbounded).
    if not graph.has_cycle and not graph.truncated:
        _collect_observable_streams(processor, graph, max_paths)

    return graph


def _has_reachable_cycle(graph: ExecutionGraph) -> bool:
    """Detect a cycle among explored states (iterative DFS, 3-color)."""
    WHITE, GRAY, BLACK = 0, 1, 2
    color: dict[tuple, int] = {}

    for root in list(graph.edges):
        if color.get(root, WHITE) != WHITE:
            continue
        stack: list[tuple[tuple, int]] = [(root, 0)]
        color[root] = GRAY
        while stack:
            node, index = stack[-1]
            successors = graph.edges.get(node, [])
            if index < len(successors):
                stack[-1] = (node, index + 1)
                __, child = successors[index]
                child_color = color.get(child, WHITE)
                if child_color == GRAY:
                    return True
                if child_color == WHITE and child in graph.edges:
                    color[child] = GRAY
                    stack.append((child, 0))
            else:
                color[node] = BLACK
                stack.pop()
    return False


def _collect_observable_streams(
    processor: RuleProcessor, graph: ExecutionGraph, max_paths: int
) -> None:
    """Enumerate all complete paths, recording their observable streams.

    Uses depth-first traversal over live processor forks: observables
    depend on the path taken, not just the state reached, so the state
    graph alone is not enough.
    """
    paths_done = 0
    stack: list[RuleProcessor] = [processor.fork()]

    while stack:
        current = stack.pop()
        eligible = current.eligible_rules()
        if not eligible:
            graph.observable_streams.add(tuple(current.observables))
            paths_done += 1
            if paths_done >= max_paths:
                # Only a genuine cut-off counts as truncation: when the
                # budget lands exactly on the last path the enumeration
                # is complete and the count exact.
                graph.streams_truncated = bool(stack)
                break
            continue
        for rule_name in eligible:
            child = current.fork()
            child.consider(rule_name, eligible=eligible)
            stack.append(child)

    graph._path_count = paths_done


def explore_ruleset(
    ruleset,
    database,
    user_statements: list,
    **kwargs,
) -> ExecutionGraph:
    """Convenience wrapper: build a processor, run the user statements as
    the initial transition, and explore."""
    processor = RuleProcessor(ruleset, database)
    for statement in user_statements:
        processor.execute_user(statement)
    return explore(processor, **kwargs)
