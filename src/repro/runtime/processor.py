"""The rule processor: Starburst rule-processing semantics (Section 2).

The key mechanism is the pair (delta log, per-rule markers):

* every tuple-level operation — user-generated or from a rule action —
  is appended to one shared :class:`~repro.transitions.delta.DeltaLog`;
* each rule holds a *marker*, the log position of its last consideration
  (initially the position of the current assertion point);
* a rule is **triggered** iff the net effect of the log suffix past its
  marker contains one of its ``Triggered-By`` operations;
* when a rule is considered, its transition tables are materialized from
  that suffix, its marker advances to the pre-action log position, its
  condition is checked, and (if true) its action runs — so the rule sees
  its own action's operations as a fresh transition, while rules not yet
  considered keep accumulating the composite transition.

This reproduces exactly the triggering discipline described in the
paper: "a given rule is triggered if its transition predicate holds with
respect to the (composite) transition since the last time it was
considered."

Incremental substrate. With ``incremental=True`` (the default) the
processor maintains one cached :class:`~repro.transitions.net_effect.NetEffect`
per rule, advanced by :meth:`NetEffect.fold` over only the primitives
appended since the rule's transition was last examined — each primitive
is folded at most once per rule, instead of the whole suffix being
refolded on every triggering check. A per-table touch index over the
log skips rules whose table was not written since their marker without
touching their net effect at all, and the triggering verdict itself is
cached until the rule's table is written again. ``incremental=False``
recomputes everything from scratch (the seed behavior); the substrate
benchmark gate asserts both modes produce byte-identical results.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.config import _UNSET, ExecutionConfig, resolve_config
from repro.engine import plan as P
from repro.engine.database import Database
from repro.engine.dml import execute_statement
from repro.engine.expressions import Evaluator, RowContext
from repro.engine.query import DatabaseProvider, OverlayProvider
from repro.engine.rete import ReteInstance, ReteNetwork
from repro.engine.values import sql_is_truthy
from repro.errors import (
    RollbackSignal,
    RuleProcessingError,
    RuleProcessingLimitExceeded,
)
from repro.lang import ast
from repro.lang.parser import parse_statement
from repro.runtime.observer import ObservableAction
from repro.runtime.strategies import FirstEligibleStrategy
from repro.rules.ruleset import RuleSet
from repro.stats import StatsBase
from repro.transitions.delta import DeltaLog
from repro.transitions.net_effect import NetEffect
from repro.transitions.transition_tables import transition_table_overlays


@dataclass(frozen=True)
class ConsiderationOutcome:
    """What happened when one rule was considered."""

    rule: str
    condition_was_true: bool
    operations_performed: int
    rolled_back: bool = False


@dataclass
class ProcessingResult:
    """The outcome of running rule processing to quiescence."""

    outcome: str  # "quiescent" or "rolled_back"
    steps: list[ConsiderationOutcome] = field(default_factory=list)
    observables: list[ObservableAction] = field(default_factory=list)

    @property
    def rules_considered(self) -> list[str]:
        return [step.rule for step in self.steps]


class ProcessorStats(StatsBase):
    """Work counters for the runtime substrate (benchmark gate input).

    ``primitives_folded`` counts incremental net-effect advances;
    ``primitives_scanned`` counts from-scratch suffix refolds (the
    non-incremental path). The substrate gate's triggering-work ratio
    is ``scanned(incremental=False) / folded(incremental=True)`` over
    the same workload. ``touch_skips`` counts triggering checks
    answered by the per-table touch index alone; ``verdict_hits``
    counts checks answered by the cached verdict (no refold);
    ``trigger_seconds`` is wall time spent in triggered_rules() scans
    (the --profile surface).
    """

    FIELDS = (
        "trigger_checks",
        "touch_skips",
        "verdict_hits",
        "primitives_folded",
        "primitives_scanned",
        "forks",
        "considerations",
        "trigger_seconds",
    )
    SECONDS = frozenset({"trigger_seconds"})


class _RuleTransition:
    """A rule's cached pending transition: the net effect of the log
    suffix past its marker, advanced incrementally.

    ``marker`` is the marker value the fold started from (stale folds —
    the marker moved without :meth:`RuleProcessor.consider`, e.g. by the
    tracer — are detected and rebuilt); ``position`` is the log position
    folded up to. ``triggered``/``checked_at`` cache the triggering
    verdict; the verdict stays valid until the rule's table is written
    past ``checked_at``. ``canonical_at`` keys the memoized canonical
    form used by ``state_key``.
    """

    __slots__ = (
        "marker",
        "position",
        "net",
        "triggered",
        "checked_at",
        "canonical",
        "canonical_at",
    )

    def __init__(self, marker: int) -> None:
        self.marker = marker
        self.position = marker
        self.net = NetEffect()
        self.triggered: bool | None = None
        self.checked_at = -1
        self.canonical: tuple | None = None
        self.canonical_at = -1

    def fork(self) -> "_RuleTransition":
        clone = _RuleTransition(self.marker)
        clone.position = self.position
        clone.net = self.net.share()
        clone.triggered = self.triggered
        clone.checked_at = self.checked_at
        clone.canonical = self.canonical
        clone.canonical_at = self.canonical_at
        return clone


class RuleProcessor:
    """Processes rules over a database at assertion points."""

    def __init__(
        self,
        ruleset: RuleSet,
        database: Database,
        strategy=None,
        max_steps: int = 10_000,
        incremental: object = _UNSET,
        planner: object = _UNSET,
        durable: object = _UNSET,
        wal_path: object = _UNSET,
        wal: object = _UNSET,
        *,
        config: ExecutionConfig | None = None,
    ) -> None:
        if ruleset.schema is not database.schema:
            raise RuleProcessingError(
                "rule set and database use different schemas"
            )
        self.ruleset = ruleset
        self.database = database
        self.strategy = strategy or FirstEligibleStrategy()
        self.max_steps = max_steps
        #: the session's execution options; the legacy keyword arguments
        #: map onto it (with a DeprecationWarning) via resolve_config
        self.config = resolve_config(
            config,
            "RuleProcessor",
            incremental=incremental,
            planner=planner,
            durable=durable,
            wal_path=wal_path,
            wal=wal,
        )
        self.incremental = self.config.incremental
        #: route condition/action SELECTs through the planned executor
        #: (plans and compiled predicates are cached per rule AST, so
        #: every processor step and every explore() fork reuses them)
        self.planner = self.config.planner

        self.log = DeltaLog()
        self.markers: dict[str, int] = {rule.name: 0 for rule in ruleset}
        self.observables: list[ObservableAction] = []
        self.stats = ProcessorStats()
        self._column_names = {
            table.name: table.column_names for table in ruleset.schema
        }
        self._transitions: dict[str, _RuleTransition] = {}

        #: hash-partition declared tables before the first snapshot so
        #: every fork and restore carries the shard layout
        if self.config.partitions > 1:
            database.apply_partitioning(self.config.partitions)
        #: the cached ParallelScheduler (scheduler="parallel" only);
        #: built lazily on the first run() so its memoized pair
        #: verdicts and static partition map persist across assertion
        #: points
        self._parallel = None

        self._transaction_snapshot = database.snapshot()
        self._rolled_back = False

        #: the incremental match network (rete matching only): topology
        #: compiled once per processor, memories built lazily and shared
        #: copy-on-write across fork()s
        self._rete = None
        if self.config.matching == "rete":
            self._rete = ReteInstance(
                ReteNetwork(ruleset), database, self.log
            )

        #: WAL writer when running durably, else None. Every primitive
        #: the delta log records is framed into the WAL under the open
        #: transaction id; begin/commit/abort markers bracket it.
        wal_setting = self.config.wal
        self.wal = None
        if wal_setting is not None and not isinstance(wal_setting, str):
            self.wal = wal_setting
        self._txn_id = 1
        if self.wal is None and self.config.wants_wal:
            if not isinstance(wal_setting, str):
                raise RuleProcessingError(
                    "durable mode needs wal_path (or a WalWriter via wal=)"
                )
            from repro.engine.wal import WalWriter

            self.wal = WalWriter(wal_setting, schema=database.schema)
        if self.wal is not None:
            if any(len(database.table(t.name)) for t in database.schema):
                # The session may start from a pre-loaded database whose
                # rows were never logged; checkpoint them so recovery
                # replays onto the same base state.
                self.wal.checkpoint(database)
            self.wal.begin(self._txn_id)
            self.log.set_sink(self._log_to_wal)

    # ------------------------------------------------------------------
    # Transaction control and user operations
    # ------------------------------------------------------------------

    def _log_to_wal(self, primitive) -> None:
        self.wal.primitive(self._txn_id, primitive)

    def begin_transaction(self) -> None:
        """Start a fresh transaction at the current database state."""
        self._transaction_snapshot = self.database.snapshot()
        self._rolled_back = False
        if self.wal is not None:
            self._txn_id += 1
            self.wal.begin(self._txn_id)

    def commit(self) -> int | None:
        """Commit the current transaction durably.

        Flushes and fsyncs the WAL through this transaction's commit
        marker — the instant the marker is on disk, recovery lands on
        this exact state. The next transaction begins immediately (so
        every later primitive has an open transaction to belong to),
        and the rollback restore point advances to the commit point.

        Returns the WAL frame count as of the commit marker (None when
        not durable) — the crash-simulation harness keys on it.
        """
        if self._rolled_back:
            raise RuleProcessingError("transaction was rolled back")
        frames = None
        if self.wal is not None:
            frames = self.wal.commit(self._txn_id)
        self._transaction_snapshot = self.database.snapshot()
        if self.wal is not None:
            self._txn_id += 1
            self.wal.begin(self._txn_id)
        return frames

    def close(self) -> None:
        """Close the WAL (if any) without committing the open
        transaction — its frames may reach disk but recovery discards
        them, exactly like a crash at this point."""
        if self.wal is not None:
            self.log.set_sink(None)
            self.wal.close()
            self.wal = None

    def execute_user(self, statement: ast.Statement | str):
        """Execute a user-generated operation (no rule processing yet).

        These operations form the initial transition of the next
        assertion point. Accepts an AST statement or source text.
        """
        if self._rolled_back:
            raise RuleProcessingError("transaction was rolled back")
        if isinstance(statement, str):
            statement = parse_statement(statement)
        return execute_statement(
            self.database, statement, log=self.log, config=self.config
        )

    # ------------------------------------------------------------------
    # Triggering
    # ------------------------------------------------------------------

    def _transition_for(self, rule_name: str) -> _RuleTransition:
        """The rule's cached transition, advanced to the current log end.

        Each primitive is folded into a given rule's net effect at most
        once (amortized); markers moved behind our back (the tracer
        pokes ``markers`` directly) invalidate the fold wholesale.
        """
        marker = self.markers[rule_name]
        transition = self._transitions.get(rule_name)
        if transition is None or transition.marker != marker:
            transition = _RuleTransition(marker)
            self._transitions[rule_name] = transition
        position = self.log.position
        if transition.position < position:
            self.stats.primitives_folded += position - transition.position
            transition.net = transition.net.fold(
                self.log.iter_range(transition.position, position)
            )
            transition.position = position
            transition.triggered = None
        return transition

    def pending_net_effect(self, rule_name: str) -> NetEffect:
        """The composite transition since *rule_name* was last considered."""
        rule_name = rule_name.lower()
        if not self.incremental:
            marker = self.markers[rule_name]
            suffix = self.log.since(marker)
            self.stats.primitives_scanned += len(suffix)
            return NetEffect.from_primitives(suffix)
        # The cached net effect escapes to the caller: mark it shared so
        # later folds copy instead of mutating what the caller holds.
        return self._transition_for(rule_name).net.share()

    def _is_triggered(self, rule) -> bool:
        """One rule's triggering check against its pending transition."""
        self.stats.trigger_checks += 1
        if not self.incremental:
            net = self.pending_net_effect(rule.name)
            if net.is_empty():
                return False
            return bool(net.operations(self._column_names) & rule.triggered_by)

        marker = self.markers[rule.name]
        if not self.log.written_since(rule.table, marker):
            # Touch index: the rule's table was not written since its
            # marker, so its triggering transition contains no operation
            # on that table — nothing in Triggered-By can hold. The
            # cached net effect is not even consulted (or advanced).
            self.stats.touch_skips += 1
            return False
        transition = self._transitions.get(rule.name)
        if (
            transition is not None
            and transition.marker == marker
            and transition.triggered is not None
            and not self.log.written_since(rule.table, transition.checked_at)
        ):
            # Cached verdict: no primitive on the rule's table appeared
            # since it was computed, so the verdict is unchanged.
            self.stats.verdict_hits += 1
            return transition.triggered
        transition = self._transition_for(rule.name)
        operations = transition.net.operations_for(
            rule.table, self._column_names[rule.table]
        )
        transition.triggered = bool(operations & rule.triggered_by)
        transition.checked_at = transition.position
        return transition.triggered

    def triggered_rules(self) -> tuple[str, ...]:
        """All currently triggered rules, in definition order."""
        if self._rolled_back:
            return ()
        started = time.perf_counter()
        triggered = tuple(
            rule.name
            for rule in self.ruleset
            if self.ruleset.is_active(rule.name) and self._is_triggered(rule)
        )
        self.stats.trigger_seconds += time.perf_counter() - started
        return triggered

    def eligible_rules(self) -> tuple[str, ...]:
        """``Choose`` applied to the current triggered set."""
        return self.ruleset.choose(self.triggered_rules())

    # ------------------------------------------------------------------
    # Consideration of a single rule
    # ------------------------------------------------------------------

    def consider(
        self, rule_name: str, *, eligible: tuple[str, ...] | None = None
    ) -> ConsiderationOutcome:
        """Consider one rule: check its condition, maybe run its action.

        The caller must pass a currently eligible rule (this is checked).
        A caller that just computed :meth:`eligible_rules` passes it as
        *eligible* so the scan is not repeated; the membership check
        against the provided tuple is O(|eligible|).
        """
        rule_name = rule_name.lower()
        if eligible is None:
            eligible = self.eligible_rules()
        if rule_name not in eligible:
            raise RuleProcessingError(
                f"rule {rule_name!r} is not eligible for consideration"
            )
        rule = self.ruleset.rule(rule_name)
        self.stats.considerations += 1

        triggering_net = self.pending_net_effect(rule_name)
        overlays = transition_table_overlays(
            triggering_net, rule.table, self._column_names[rule.table]
        )
        provider = OverlayProvider(DatabaseProvider(self.database), overlays)

        # Mark the rule considered *before* running its action: the rule
        # sees its own action's operations as a fresh transition (and may
        # re-trigger itself), per Section 2.
        self.markers[rule_name] = self.log.position
        self._transitions[rule_name] = _RuleTransition(self.log.position)

        condition_true = True
        if rule.condition is not None:
            verdict = None
            if self._rete is not None:
                # The network's verdict equals the planned executor's by
                # construction; None means this condition is not
                # network-supported (or the instance got poisoned) and
                # the planned path below answers instead.
                verdict = self._rete.verdict(rule_name)
            if verdict is not None:
                condition_true = verdict
            else:
                evaluator = Evaluator(provider, config=self.config)
                if self.config.matching == "naive":
                    value = evaluator.evaluate(rule.condition, RowContext())
                else:
                    condition = P.compile_predicate(rule.condition)
                    value = condition(RowContext(), evaluator)
                condition_true = sql_is_truthy(value)

        if not condition_true:
            return ConsiderationOutcome(
                rule=rule_name,
                condition_was_true=False,
                operations_performed=0,
            )

        operations_before = self.log.position
        try:
            for action in rule.actions:
                result = execute_statement(
                    self.database,
                    action,
                    provider=provider,
                    log=self.log,
                    config=self.config,
                )
                if result.kind == "select":
                    self.observables.append(
                        ObservableAction.select(
                            rule_name, result.query_result.rows
                        )
                    )
        except RollbackSignal as signal:
            self._rollback(rule_name, signal.message)
            return ConsiderationOutcome(
                rule=rule_name,
                condition_was_true=True,
                operations_performed=0,
                rolled_back=True,
            )

        return ConsiderationOutcome(
            rule=rule_name,
            condition_was_true=True,
            operations_performed=self.log.position - operations_before,
        )

    def _rollback(self, rule_name: str, message: str) -> None:
        self.database.restore(self._transaction_snapshot)
        self.observables.append(ObservableAction.rollback(rule_name, message))
        self._rolled_back = True
        if self.wal is not None:
            self.wal.abort(self._txn_id)
        # Advance every marker past the aborted suffix and drop cached
        # transitions: the undone primitives must not compose into any
        # rule's next transition. run() used to do this at quiescence,
        # which left step-by-step callers (the explorer, tests driving
        # consider() directly) seeing phantom pending transitions after
        # a rollback — and a begin_transaction() after such a rollback
        # would re-trigger rules from operations that never happened.
        position = self.log.position
        for name in self.markers:
            self.markers[name] = position
        self._transitions.clear()
        if self._rete is not None:
            # The restore rewrote the database underneath the network's
            # memories (the log is not truncated); rebuild lazily from
            # the restored state.
            self._rete.invalidate()

    @property
    def rolled_back(self) -> bool:
        return self._rolled_back

    # ------------------------------------------------------------------
    # The rule-processing loop (an assertion point)
    # ------------------------------------------------------------------

    def run(self) -> ProcessingResult:
        """Process rules at an assertion point until quiescence.

        Raises :class:`RuleProcessingLimitExceeded` past ``max_steps`` —
        callers treat that as possible nontermination.

        When processing completes, every rule's marker advances to the
        end of the log: Section 2 specifies that at the *next* assertion
        point a not-yet-considered rule is triggered by "the transition
        since the last rule assertion point", not since the start of the
        transaction. (During processing this advance is invisible — no
        rule is triggered at quiescence — but it changes what composes
        into the next assertion point's transitions.)

        With ``config.scheduler == "parallel"`` the loop is delegated
        to the commutativity-certified batch scheduler
        (:class:`~repro.runtime.parallel.ParallelScheduler`), which is
        required to reach a byte-identical final state.
        """
        if self.config.scheduler == "parallel":
            if self._parallel is None:
                # Imported lazily: the scheduler imports the analysis
                # stack, which imports this module.
                from repro.runtime.parallel import ParallelScheduler

                self._parallel = ParallelScheduler(self)
            return self._parallel.run()
        steps: list[ConsiderationOutcome] = []
        observables_before = len(self.observables)
        while True:
            eligible = self.eligible_rules()
            if not eligible:
                position = self.log.position
                for name in self.markers:
                    self.markers[name] = position
                self._transitions.clear()
                outcome = "rolled_back" if self._rolled_back else "quiescent"
                return ProcessingResult(
                    outcome=outcome,
                    steps=steps,
                    observables=self.observables[observables_before:],
                )
            if len(steps) >= self.max_steps:
                raise RuleProcessingLimitExceeded(self.max_steps)
            chosen = self.strategy.choose(eligible)
            steps.append(self.consider(chosen, eligible=eligible))

    # ------------------------------------------------------------------
    # State identity and forking (used by the execution-graph explorer)
    # ------------------------------------------------------------------

    def _pending_canonical(self, rule_name: str) -> tuple:
        """Canonical *visible* pending transition, memoized per fold.

        Restricted to the rule's subscribed table: triggering checks and
        transition-table overlays both read only
        ``net_effect.table(rule.table)``, and everything else the rule
        can see (the database proper) is keyed separately, so pending
        writes on other tables are invisible to this rule's future
        behavior and must not block state merging.
        """
        table = self.ruleset.rule(rule_name).table
        if not self.incremental:
            return self.pending_net_effect(rule_name).table(table).canonical()
        transition = self._transition_for(rule_name)
        if transition.canonical_at != transition.position:
            transition.canonical = transition.net.table(table).canonical()
            transition.canonical_at = transition.position
        return transition.canonical

    def state_key(self) -> tuple:
        """A hashable canonical key for the execution-graph state (D, TR).

        Includes the visible pending transition of *every* rule (not
        just the triggered ones): a pending-but-not-yet-triggering
        composite transition on the rule's own table influences future
        triggering, so states that differ there must not be merged.
        Execution orders that converge to the same database with the
        same visible pendings *do* merge (``explore()`` counts them in
        ``states_deduped``).

        Canonical fragments are memoized: per-table database canonicals
        carry across copy-on-write forks until the table is written, and
        per-rule pending canonicals until the rule's fold advances.
        """
        pending = tuple(
            (rule.name, self._pending_canonical(rule.name))
            for rule in self.ruleset
        )
        return (self._rolled_back, self.database.canonical(), pending)

    def paper_state_key(self) -> tuple:
        """The paper's state ``S = (D, TR)`` — triggered rules only.

        Coarser than :meth:`state_key`: the paper's execution-graph
        states carry only the *triggered* rules and their transition
        tables. Untriggered rules' pending (non-triggering) composite
        transitions still influence future behavior at tuple
        granularity, so exploration dedups on the finer
        :meth:`state_key`; this key exists to validate paper-level
        claims (the Figure 1 commutativity diamond, state-identity in
        Lemmas 6.3/6.4).
        """
        triggered = self.triggered_rules()
        pending = tuple(
            (name, self._pending_canonical(name)) for name in triggered
        )
        return (self._rolled_back, self.database.canonical(), pending)

    def fork(self) -> "RuleProcessor":
        """An independent copy sharing the rule set (which is immutable
        during processing).

        With the incremental substrate this is O(tables + chunks +
        rules): the database copy is copy-on-write, the log aliases its
        sealed chunks, and the cached per-rule transitions (net effects,
        triggering verdicts, canonical fragments) are shared with the
        child, diverging copy-on-write at the first fold that touches
        them. ``incremental=False`` performs the original deep copies.
        """
        self.stats.forks += 1
        clone = RuleProcessor.__new__(RuleProcessor)
        clone.ruleset = self.ruleset
        clone.strategy = self.strategy
        clone.max_steps = self.max_steps
        clone.config = self.config
        clone.incremental = self.incremental
        clone.planner = self.planner
        clone.markers = dict(self.markers)
        clone.observables = list(self.observables)
        clone.stats = self.stats
        clone._column_names = self._column_names
        clone._transaction_snapshot = self._transaction_snapshot
        clone._rolled_back = self._rolled_back
        # Forks are exploratory: they never write to the durable log
        # (DeltaLog.fork() likewise drops the WAL sink). They also run
        # their considerations serially — batch scheduling happens only
        # at the top-level processor.
        clone.wal = None
        clone._txn_id = self._txn_id
        clone._parallel = None
        if self.incremental:
            clone.database = self.database.copy()
            clone.log = self.log.fork()
            clone._transitions = {
                name: transition.fork()
                for name, transition in self._transitions.items()
            }
        else:
            clone.database = self.database.copy(cow=False)
            clone.log = self.log.fork(share=False)
            clone._transitions = {}
        clone._rete = (
            None
            if self._rete is None
            else self._rete.fork(clone.database, clone.log)
        )
        return clone
