"""The rule processor: Starburst rule-processing semantics (Section 2).

The key mechanism is the pair (delta log, per-rule markers):

* every tuple-level operation — user-generated or from a rule action —
  is appended to one shared :class:`~repro.transitions.delta.DeltaLog`;
* each rule holds a *marker*, the log position of its last consideration
  (initially the position of the current assertion point);
* a rule is **triggered** iff the net effect of the log suffix past its
  marker contains one of its ``Triggered-By`` operations;
* when a rule is considered, its transition tables are materialized from
  that suffix, its marker advances to the pre-action log position, its
  condition is checked, and (if true) its action runs — so the rule sees
  its own action's operations as a fresh transition, while rules not yet
  considered keep accumulating the composite transition.

This reproduces exactly the triggering discipline described in the
paper: "a given rule is triggered if its transition predicate holds with
respect to the (composite) transition since the last time it was
considered."
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.engine.database import Database
from repro.engine.dml import execute_statement
from repro.engine.expressions import Evaluator, RowContext
from repro.engine.query import DatabaseProvider, OverlayProvider
from repro.engine.values import sql_is_truthy
from repro.errors import (
    RollbackSignal,
    RuleProcessingError,
    RuleProcessingLimitExceeded,
)
from repro.lang import ast
from repro.lang.parser import parse_statement
from repro.runtime.observer import ObservableAction
from repro.runtime.strategies import FirstEligibleStrategy
from repro.rules.ruleset import RuleSet
from repro.transitions.delta import DeltaLog
from repro.transitions.net_effect import NetEffect
from repro.transitions.transition_tables import transition_table_overlays


@dataclass(frozen=True)
class ConsiderationOutcome:
    """What happened when one rule was considered."""

    rule: str
    condition_was_true: bool
    operations_performed: int
    rolled_back: bool = False


@dataclass
class ProcessingResult:
    """The outcome of running rule processing to quiescence."""

    outcome: str  # "quiescent" or "rolled_back"
    steps: list[ConsiderationOutcome] = field(default_factory=list)
    observables: list[ObservableAction] = field(default_factory=list)

    @property
    def rules_considered(self) -> list[str]:
        return [step.rule for step in self.steps]


class RuleProcessor:
    """Processes rules over a database at assertion points."""

    def __init__(
        self,
        ruleset: RuleSet,
        database: Database,
        strategy=None,
        max_steps: int = 10_000,
    ) -> None:
        if ruleset.schema is not database.schema:
            raise RuleProcessingError(
                "rule set and database use different schemas"
            )
        self.ruleset = ruleset
        self.database = database
        self.strategy = strategy or FirstEligibleStrategy()
        self.max_steps = max_steps

        self.log = DeltaLog()
        self.markers: dict[str, int] = {rule.name: 0 for rule in ruleset}
        self.observables: list[ObservableAction] = []
        self._column_names = {
            table.name: table.column_names for table in ruleset.schema
        }
        self._transaction_snapshot = database.snapshot()
        self._rolled_back = False

    # ------------------------------------------------------------------
    # Transaction control and user operations
    # ------------------------------------------------------------------

    def begin_transaction(self) -> None:
        """Start a fresh transaction at the current database state."""
        self._transaction_snapshot = self.database.snapshot()
        self._rolled_back = False

    def execute_user(self, statement: ast.Statement | str):
        """Execute a user-generated operation (no rule processing yet).

        These operations form the initial transition of the next
        assertion point. Accepts an AST statement or source text.
        """
        if self._rolled_back:
            raise RuleProcessingError("transaction was rolled back")
        if isinstance(statement, str):
            statement = parse_statement(statement)
        return execute_statement(self.database, statement, log=self.log)

    # ------------------------------------------------------------------
    # Triggering
    # ------------------------------------------------------------------

    def pending_net_effect(self, rule_name: str) -> NetEffect:
        """The composite transition since *rule_name* was last considered."""
        marker = self.markers[rule_name.lower()]
        return NetEffect.from_primitives(self.log.since(marker))

    def triggered_rules(self) -> tuple[str, ...]:
        """All currently triggered rules, in definition order."""
        if self._rolled_back:
            return ()
        triggered = []
        for rule in self.ruleset:
            if not self.ruleset.is_active(rule.name):
                continue
            net = self.pending_net_effect(rule.name)
            if net.is_empty():
                continue
            operations = net.operations(self._column_names)
            if operations & rule.triggered_by:
                triggered.append(rule.name)
        return tuple(triggered)

    def eligible_rules(self) -> tuple[str, ...]:
        """``Choose`` applied to the current triggered set."""
        return self.ruleset.choose(self.triggered_rules())

    # ------------------------------------------------------------------
    # Consideration of a single rule
    # ------------------------------------------------------------------

    def consider(self, rule_name: str) -> ConsiderationOutcome:
        """Consider one rule: check its condition, maybe run its action.

        The caller must pass a currently eligible rule (this is checked).
        """
        rule_name = rule_name.lower()
        if rule_name not in self.eligible_rules():
            raise RuleProcessingError(
                f"rule {rule_name!r} is not eligible for consideration"
            )
        rule = self.ruleset.rule(rule_name)

        triggering_net = self.pending_net_effect(rule_name)
        overlays = transition_table_overlays(
            triggering_net, rule.table, self._column_names[rule.table]
        )
        provider = OverlayProvider(DatabaseProvider(self.database), overlays)

        # Mark the rule considered *before* running its action: the rule
        # sees its own action's operations as a fresh transition (and may
        # re-trigger itself), per Section 2.
        self.markers[rule_name] = self.log.position

        condition_true = True
        if rule.condition is not None:
            evaluator = Evaluator(provider)
            value = evaluator.evaluate(rule.condition, RowContext())
            condition_true = sql_is_truthy(value)

        if not condition_true:
            return ConsiderationOutcome(
                rule=rule_name,
                condition_was_true=False,
                operations_performed=0,
            )

        operations_before = self.log.position
        try:
            for action in rule.actions:
                result = execute_statement(
                    self.database, action, provider=provider, log=self.log
                )
                if result.kind == "select":
                    self.observables.append(
                        ObservableAction.select(
                            rule_name, result.query_result.rows
                        )
                    )
        except RollbackSignal as signal:
            self._rollback(rule_name, signal.message)
            return ConsiderationOutcome(
                rule=rule_name,
                condition_was_true=True,
                operations_performed=0,
                rolled_back=True,
            )

        return ConsiderationOutcome(
            rule=rule_name,
            condition_was_true=True,
            operations_performed=self.log.position - operations_before,
        )

    def _rollback(self, rule_name: str, message: str) -> None:
        self.database.restore(self._transaction_snapshot)
        self.observables.append(ObservableAction.rollback(rule_name, message))
        self._rolled_back = True

    @property
    def rolled_back(self) -> bool:
        return self._rolled_back

    # ------------------------------------------------------------------
    # The rule-processing loop (an assertion point)
    # ------------------------------------------------------------------

    def run(self) -> ProcessingResult:
        """Process rules at an assertion point until quiescence.

        Raises :class:`RuleProcessingLimitExceeded` past ``max_steps`` —
        callers treat that as possible nontermination.

        When processing completes, every rule's marker advances to the
        end of the log: Section 2 specifies that at the *next* assertion
        point a not-yet-considered rule is triggered by "the transition
        since the last rule assertion point", not since the start of the
        transaction. (During processing this advance is invisible — no
        rule is triggered at quiescence — but it changes what composes
        into the next assertion point's transitions.)
        """
        steps: list[ConsiderationOutcome] = []
        observables_before = len(self.observables)
        while True:
            eligible = self.eligible_rules()
            if not eligible:
                for name in self.markers:
                    self.markers[name] = self.log.position
                outcome = "rolled_back" if self._rolled_back else "quiescent"
                return ProcessingResult(
                    outcome=outcome,
                    steps=steps,
                    observables=self.observables[observables_before:],
                )
            if len(steps) >= self.max_steps:
                raise RuleProcessingLimitExceeded(self.max_steps)
            chosen = self.strategy.choose(eligible)
            steps.append(self.consider(chosen))

    # ------------------------------------------------------------------
    # State identity and forking (used by the execution-graph explorer)
    # ------------------------------------------------------------------

    def state_key(self) -> tuple:
        """A hashable canonical key for the execution-graph state (D, TR).

        Includes the pending transition of *every* rule (not just the
        triggered ones): a pending-but-not-yet-triggering composite
        transition influences future triggering, so states that differ
        there must not be merged.
        """
        pending = tuple(
            (rule.name, self.pending_net_effect(rule.name).canonical())
            for rule in self.ruleset
        )
        return (self._rolled_back, self.database.canonical(), pending)

    def paper_state_key(self) -> tuple:
        """The paper's state ``S = (D, TR)`` — triggered rules only.

        Coarser than :meth:`state_key`: the paper's execution-graph
        states carry only the *triggered* rules and their transition
        tables. Untriggered rules' pending (non-triggering) composite
        transitions still influence future behavior at tuple
        granularity, so exploration dedups on the finer
        :meth:`state_key`; this key exists to validate paper-level
        claims (the Figure 1 commutativity diamond, state-identity in
        Lemmas 6.3/6.4).
        """
        triggered = self.triggered_rules()
        pending = tuple(
            (name, self.pending_net_effect(name).canonical())
            for name in triggered
        )
        return (self._rolled_back, self.database.canonical(), pending)

    def fork(self) -> "RuleProcessor":
        """An independent deep copy sharing the rule set (which is immutable
        during processing)."""
        clone = RuleProcessor.__new__(RuleProcessor)
        clone.ruleset = self.ruleset
        clone.database = self.database.copy()
        clone.strategy = self.strategy
        clone.max_steps = self.max_steps
        clone.log = DeltaLog()
        clone.log._primitives = self.log.all()
        clone.markers = dict(self.markers)
        clone.observables = list(self.observables)
        clone._column_names = self._column_names
        clone._transaction_snapshot = self._transaction_snapshot
        clone._rolled_back = self._rolled_back
        return clone
