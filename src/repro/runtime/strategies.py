"""Rule-choice strategies.

When several triggered rules are eligible (``Choose`` returns more than
one), Starburst picks one arbitrarily. The strategy object makes that
arbitrary choice pluggable so tests and the oracle can drive specific
execution orders.
"""

from __future__ import annotations

import random

from repro.errors import RuleProcessingError


class FirstEligibleStrategy:
    """Deterministic: always pick the first eligible rule (definition order)."""

    def choose(self, eligible: tuple[str, ...]) -> str:
        if not eligible:
            raise RuleProcessingError("no eligible rules to choose from")
        return eligible[0]

    def clone(self) -> "FirstEligibleStrategy":
        """An equivalent strategy with independent state (stateless here)."""
        return FirstEligibleStrategy()


class RandomStrategy:
    """Seeded random choice — used to sample execution orders."""

    def __init__(self, seed: int = 0) -> None:
        self._seed = seed
        self._random = random.Random(seed)

    def choose(self, eligible: tuple[str, ...]) -> str:
        if not eligible:
            raise RuleProcessingError("no eligible rules to choose from")
        return self._random.choice(list(eligible))

    def clone(self) -> "RandomStrategy":
        """A fresh strategy re-seeded from the original seed (its choice
        stream restarts; it does not share the live generator)."""
        return RandomStrategy(self._seed)


class ScriptedStrategy:
    """Follow a fixed script of rule names; error on divergence.

    After the script is exhausted, falls back to first-eligible. Used by
    tests that need to reproduce one specific execution path.
    """

    def __init__(self, script: list[str]) -> None:
        self._script = [name.lower() for name in script]
        self._index = 0

    def clone(self) -> "ScriptedStrategy":
        """A fresh strategy that replays the script from the top."""
        return ScriptedStrategy(list(self._script))

    def choose(self, eligible: tuple[str, ...]) -> str:
        if self._index < len(self._script):
            wanted = self._script[self._index]
            self._index += 1
            if wanted not in eligible:
                raise RuleProcessingError(
                    f"scripted rule {wanted!r} is not eligible "
                    f"(eligible: {', '.join(eligible) or 'none'})"
                )
            return wanted
        return FirstEligibleStrategy().choose(eligible)
