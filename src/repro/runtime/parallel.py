"""Commutativity-certified parallel rule scheduling (Theorem 6.7 at runtime).

The paper's Lemma 6.1 / Definition 6.5 machinery proves, statically,
that certain rule pairs *commute*: applying them in either order from
any state reaches the same state. Section 9 observes that rule sets
further partition into groups that share no tables and no priority
edges. Both results are usually read as analysis conveniences; this
module uses them as a *runtime scheduler's correctness oracle* — rule
applications proven to commute may be reordered, and therefore run
concurrently, without changing the reachable final states (Theorem 6.7:
all serializations agree, so executing any one of them is sound).

The :class:`ParallelScheduler` drives a
:class:`~repro.runtime.processor.RuleProcessor` to quiescence the same
way :meth:`RuleProcessor.run` does, but each round *admits a batch* of
eligible rules instead of one:

* the strategy's pick always leads the batch (so a singleton batch
  degenerates to exactly the serial loop);
* a further eligible rule joins iff, against every admitted member, it
  either lives in a different static partition
  (:func:`~repro.analysis.partitioning.partition_rules` — no shared
  tables, no priority edge, hence trivially commuting) or carries a
  positive memoized Definition 6.5 commute verdict *and* writes a
  disjoint set of tables. Any pair lacking a commute proof serializes —
  the analysis verdict is the admission ticket, never a heuristic.

The disjoint-write-tables requirement is deliberately stricter than the
column-granularity oracle: batch effects are merged as folded net
effects whose update entries carry whole tuples, so two rules updating
different *columns* of the same row — commuting under Lemma 6.1 —
would lose one side's write in the merge. Partition-disjoint and
table-disjoint batches never meet that case.

Execution: every batch member runs on a copy-on-write
:meth:`RuleProcessor.fork` from the same base state, on the shared
worker pool. Merging then replays each fork's folded
:class:`~repro.transitions.net_effect.NetEffect` onto the main
processor in batch order — tables sorted by name, deletes then updates
then inserts in ascending tid order, inserts re-allocating fresh tids —
a canonical order fully determined by the batch, so parallel execution
is deterministic run-to-run. Net-effect folding guarantees delete and
update entries reference only pre-batch tids (an insert-then-update
folds into the insert; an insert-then-delete annihilates), and
disjoint write tables guarantee no two members' effects overlap, so
replaying onto the base is exactly a serialization of the batch:
member k's marker advances just before its effects replay, which
reproduces the serial discipline where a rule sees its own operations
as a fresh transition and earlier-considered rules see later rules'
operations as pending.

A fork that rolls back aborts the batch wholesale: rollback restores
the *transaction* snapshot, which does not compose with merging, so the
scheduler discards every fork and re-considers just the strategy's pick
serially on the main processor (``rollback_fallbacks``). Observable
actions merge in batch order, preserving per-rule observable sequences
across the equivalence harness.
"""

from __future__ import annotations

import time

from repro.analysis.commutativity import CommutativityAnalyzer
from repro.analysis.derived import DerivedDefinitions
from repro.analysis.partitioning import partition_rules
from repro.engine import partition as PART
from repro.errors import RuleProcessingLimitExceeded
from repro.runtime.processor import (
    ConsiderationOutcome,
    ProcessingResult,
    _RuleTransition,
)
from repro.stats import StatsBase
from repro.transitions.net_effect import NetEffect


class SchedulerStats(StatsBase):
    """Global work counters for the parallel scheduler.

    ``parallel_considerations`` counts rules that ran on batch forks;
    ``serial_considerations`` counts singleton rounds (including
    rollback fallbacks). ``commute_serializations`` counts admission
    refusals — pairs the oracle could not certify (or whose write
    tables overlap), which therefore serialized. ``merge_seconds`` is
    the wall time spent replaying fork effects onto the main processor
    (the ``--profile`` ``parallel_merge`` phase).
    """

    FIELDS = (
        "rounds",
        "batches",
        "serial_considerations",
        "parallel_considerations",
        "forks",
        "commute_checks",
        "commute_serializations",
        "rollback_fallbacks",
        "merged_primitives",
        "merge_seconds",
    )
    SECONDS = frozenset({"merge_seconds"})


STATS = SchedulerStats()


class ParallelScheduler:
    """Batch-parallel quiescence loop over one rule processor.

    Built lazily by :meth:`RuleProcessor.run` when the session config
    says ``scheduler="parallel"``, and cached on the processor so the
    static partition map and the memoized pair verdicts persist across
    assertion points.
    """

    def __init__(self, processor) -> None:
        self.processor = processor
        ruleset = processor.ruleset
        self._definitions = DerivedDefinitions(ruleset)
        #: the Definition 6.5 oracle; verdicts memoize per unordered pair
        self._analyzer = CommutativityAnalyzer(self._definitions)
        self._partition_of: dict[str, int] = {}
        for i, group in enumerate(
            partition_rules(self._definitions, ruleset.priorities)
        ):
            for name in group:
                self._partition_of[name] = i
        self._write_tables = {
            name: frozenset(
                event.table for event in self._definitions.performs(name)
            )
            for name in self._definitions.rule_names
        }

    # ------------------------------------------------------------------
    # Batch admission
    # ------------------------------------------------------------------

    def _independent(self, first: str, second: str) -> bool:
        """May *first* and *second* run concurrently in one batch?

        True iff they belong to different static partitions (no shared
        tables, no priority edge — trivially commuting) or the analysis
        certifies commutativity *and* their write-table sets are
        disjoint (the merge-soundness requirement documented above).
        Unknown or negative verdicts serialize.
        """
        if self._partition_of.get(first) != self._partition_of.get(second):
            return True
        STATS.commute_checks += 1
        if not self._analyzer.commute(first, second):
            STATS.commute_serializations += 1
            return False
        if self._write_tables[first] & self._write_tables[second]:
            STATS.commute_serializations += 1
            return False
        return True

    def _admit(self, eligible: tuple[str, ...], limit: int) -> list[str]:
        """The batch for this round: the strategy's pick plus every
        further eligible rule pairwise independent of all admitted
        members, in eligibility (definition) order."""
        first = self.processor.strategy.choose(eligible)
        batch = [first]
        for rule in eligible:
            if rule == first or len(batch) >= limit:
                continue
            if all(self._independent(member, rule) for member in batch):
                batch.append(rule)
        return batch

    # ------------------------------------------------------------------
    # Batch execution and merge
    # ------------------------------------------------------------------

    def _replay(self, fork, net: NetEffect) -> None:
        """Merge a fork's folded net effect into the main processor in
        canonical order (sorted tables; D, U, I in ascending tid order).

        A table the fork only deleted from or updated in is *adopted*:
        the fork's copy-on-write extension is exactly base state plus
        the fork's writes, and its delete/update entries reference
        pre-batch tids, so grafting the object wholesale and appending
        the log records is O(ops) in the log alone. A table the fork
        inserted into is replayed row-by-row instead, because inserts
        must re-allocate tids from the main database's counter (sibling
        forks allocate from identical counter copies, so fork-side tids
        may collide across the batch). Either way tuples are not
        re-validated — they passed schema checks on the fork.
        """
        proc = self.processor
        database, log = proc.database, proc.log
        count = 0
        for name in sorted(net.tables):
            effect = net.table(name)
            if not effect.inserted:
                database.adopt_table(name, fork.database.table(name))
                for tid in sorted(effect.deleted):
                    log.record_delete(name, tid, effect.deleted[tid])
                for tid in sorted(effect.updated):
                    old, new = effect.updated[tid]
                    log.record_update(name, tid, old, new)
                count += len(effect.deleted) + len(effect.updated)
                continue
            data = database.table(name)
            for tid in sorted(effect.deleted):
                old = data.delete(tid)
                log.record_delete(name, tid, old)
            for tid in sorted(effect.updated):
                old, new = effect.updated[tid]
                data.update(tid, new)
                log.record_update(name, tid, old, new)
            for tid in sorted(effect.inserted):
                values = effect.inserted[tid]
                fresh = database.allocate_tid()
                data.insert(fresh, values)
                log.record_insert(name, fresh, values)
            count += (
                len(effect.deleted) + len(effect.updated) + len(effect.inserted)
            )
        STATS.merged_primitives += count

    def _run_batch(
        self, batch: list[str], eligible: tuple[str, ...]
    ) -> list[ConsiderationOutcome]:
        proc = self.processor
        base_position = proc.log.position
        base_observables = len(proc.observables)
        forks = [proc.fork() for __ in batch]
        STATS.forks += len(forks)

        def consider_on(fork, rule):
            def task():
                return fork.consider(rule, eligible=eligible)

            return task

        outcomes = PART.map_shards(
            consider_on(fork, rule) for fork, rule in zip(forks, batch)
        )

        if any(outcome.rolled_back for outcome in outcomes):
            # Rollback restores the transaction snapshot — incompatible
            # with merging sibling effects. Discard the whole batch and
            # re-run just the strategy's pick serially from the (still
            # untouched) base state.
            STATS.rollback_fallbacks += 1
            STATS.serial_considerations += 1
            return [proc.consider(batch[0], eligible=eligible)]

        merged: list[ConsiderationOutcome] = []
        started = time.perf_counter()
        for fork, rule, outcome in zip(forks, batch, outcomes):
            before = proc.log.position
            # The serial discipline, per member: marker first, then the
            # member's own operations — the rule sees them as a fresh
            # transition; earlier-merged members see them as pending.
            proc.markers[rule] = before
            proc._transitions[rule] = _RuleTransition(before)
            if outcome.operations_performed:
                self._replay(
                    fork,
                    NetEffect.from_primitives(
                        fork.log.iter_range(base_position, fork.log.position)
                    ),
                )
            proc.observables.extend(fork.observables[base_observables:])
            merged.append(
                ConsiderationOutcome(
                    rule=rule,
                    condition_was_true=outcome.condition_was_true,
                    operations_performed=proc.log.position - before,
                )
            )
            STATS.parallel_considerations += 1
        STATS.merge_seconds += time.perf_counter() - started
        return merged

    # ------------------------------------------------------------------
    # The quiescence loop
    # ------------------------------------------------------------------

    def run(self) -> ProcessingResult:
        """Process rules at an assertion point until quiescence.

        Matches :meth:`RuleProcessor.run` step for step — quiescence
        marker advance, rollback outcome, ``max_steps`` discipline —
        except that each round may consider a certified batch instead
        of a single rule.
        """
        proc = self.processor
        steps: list[ConsiderationOutcome] = []
        observables_before = len(proc.observables)
        while True:
            eligible = proc.eligible_rules()
            if not eligible:
                position = proc.log.position
                for name in proc.markers:
                    proc.markers[name] = position
                proc._transitions.clear()
                outcome = "rolled_back" if proc._rolled_back else "quiescent"
                return ProcessingResult(
                    outcome=outcome,
                    steps=steps,
                    observables=proc.observables[observables_before:],
                )
            if len(steps) >= proc.max_steps:
                raise RuleProcessingLimitExceeded(proc.max_steps)
            STATS.rounds += 1
            batch = self._admit(eligible, proc.max_steps - len(steps))
            if len(batch) == 1:
                STATS.serial_considerations += 1
                steps.append(proc.consider(batch[0], eligible=eligible))
            else:
                STATS.batches += 1
                steps.extend(self._run_batch(batch, eligible))
