"""Observable actions (Section 8).

A rule action is *observable* when it is visible to the environment: in
Starburst, when it performs data retrieval (``select``) or a
``rollback``. Observable determinism asks whether the order *and
appearance* of these actions is independent of rule-choice order; the
runtime therefore records, for each observable action, both what kind it
was and its full payload (the retrieved rows, or the rollback message).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine.values import row_sort_key


@dataclass(frozen=True)
class ObservableAction:
    """One environment-visible event emitted during rule processing.

    ``kind`` is ``"select"`` or ``"rollback"``. For selects, ``payload``
    is the sorted tuple of result rows (set-oriented retrieval has no
    inherent row order, so sorting gives a canonical appearance); for
    rollbacks it is the message string.
    """

    rule: str
    kind: str
    payload: tuple | str

    @classmethod
    def select(cls, rule: str, rows: list[tuple]) -> "ObservableAction":
        canonical = tuple(sorted(rows, key=row_sort_key))
        return cls(rule=rule, kind="select", payload=canonical)

    @classmethod
    def rollback(cls, rule: str, message: str) -> "ObservableAction":
        return cls(rule=rule, kind="rollback", payload=message)

    def __str__(self) -> str:
        if self.kind == "rollback":
            return f"{self.rule}: rollback({self.payload!r})"
        return f"{self.rule}: select -> {len(self.payload)} rows"
