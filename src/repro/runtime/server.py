"""A concurrent multi-session rule server: snapshot-isolation MVCC.

The paper's execution model is single-agent: one transaction's rule
cascade runs to quiescence, then commits. This module scales that model
to many concurrent sessions over one shared store without giving up the
semantics — each session gets the *whole* single-agent model on a
private snapshot, and a central validator decides which sessions'
results become real.

The design composes three existing substrate pieces:

* **snapshot forks** — :meth:`~repro.engine.database.Database.copy` is
  an O(tables) copy-on-write fork; a session opens one under the server
  mutex and runs its statements plus its rule cascade to fixpoint on it
  with a completely ordinary :class:`~repro.runtime.processor.RuleProcessor`
  (any :class:`~repro.config.ExecutionConfig` matching/scheduler mode);
* **epochs from the delta log** — the server appends every *published*
  primitive to one :class:`~repro.transitions.delta.DeltaLog`; a
  session's snapshot epoch is simply the log position at fork time, and
  first-committer-wins validation compares the log's per-table touch
  index (:meth:`~repro.transitions.delta.DeltaLog.last_write`) — or, at
  ``granularity="column"``, the finer
  :class:`~repro.transitions.delta.ColumnTouchIndex` — against that
  epoch;
* **footprints from attribute-level dataflow** — what a session *read*
  is the union of the PR 3 dataflow footprints
  (:func:`~repro.analysis.dataflow.rule_dataflow`) of every rule it
  considered, plus the statement-level footprints of its user
  statements. Triggering itself needs no footprint: a rule's
  transition predicate reads only the session's own delta log.

Commit protocol (first-committer-wins). Under the server mutex the
validator checks every item in the session's read/write footprint
against the touch epochs: any item written by a commit after the
session's snapshot epoch is a conflict and the session aborts with a
retriable :class:`~repro.errors.ConflictError` — nothing it did is
visible, its fork is simply dropped. A winner *publishes* its folded
net effect onto the authoritative database (insert tids are
reallocated from the server counter; updates merge column deltas via
:meth:`~repro.engine.database.Database.merge_update`), appends the
published primitives to the server log (advancing the epochs), and —
in durable mode — submits them to the
:class:`~repro.engine.wal.GroupCommitWal` coalescer *inside* the mutex
(so WAL commit order equals publication order) and waits for the group
fsync outside it.

Why serializable-enough. With ``isolation="serializable"`` validation
covers reads as well as writes, so a committed session saw — on every
table, column and row-membership set it depended on — exactly the
state produced by the sessions that committed before it. Each
session's cascade is a deterministic function of its statements and
those reads (given a deterministic strategy), so re-executing the
committed sessions *serially in commit order* reproduces each net
effect, and therefore the final canonical database
(:func:`serial_replay` — the determinism oracle the benchmark gate
asserts byte-identical). ``isolation="snapshot"`` drops the read
checks: classical snapshot isolation, fewer aborts, no oracle.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

from repro.config import (
    DEFAULT_CONFIG,
    DEFAULT_SERVER_OPTIONS,
    ExecutionConfig,
    ServerOptions,
)
from repro.engine.database import Database
from repro.errors import ConflictError, RuleProcessingError
from repro.lang import ast
from repro.lang.parser import parse_statement
from repro.runtime.processor import ProcessingResult, RuleProcessor
from repro.runtime.strategies import FirstEligibleStrategy
from repro.rules.ruleset import RuleSet
from repro.stats import StatsBase
from repro.transitions.delta import ColumnTouchIndex, DeltaLog, Primitive
from repro.transitions.net_effect import NetEffect


class ServerStats(StatsBase):
    """Work counters for the concurrent server (the ``--stats`` surface).

    ``conflicts`` counts first-committer-wins aborts; ``retries`` counts
    session re-runs :meth:`RuleServer.run_transaction` performed after
    one; ``rollbacks`` counts sessions whose own cascade rolled back
    (a paper-semantics abort, never retried). ``validate_seconds`` is
    the ``commit_validate`` profile phase; ``commit_wait_seconds`` is
    time spent waiting for the group fsync.
    """

    FIELDS = (
        "sessions",
        "commits",
        "conflicts",
        "retries",
        "rollbacks",
        "published_primitives",
        "validate_seconds",
        "publish_seconds",
        "commit_wait_seconds",
    )
    SECONDS = frozenset(
        {"validate_seconds", "publish_seconds", "commit_wait_seconds"}
    )


@dataclass(frozen=True)
class CommitReceipt:
    """What a successful :meth:`Session.commit` returns."""

    session_id: int
    #: position in the global commit order (1-based, dense); the WAL
    #: tags this session's commit marker with it
    commit_seq: int
    #: the session's snapshot epoch (server log position at fork)
    epoch: int
    #: primitives published onto the shared store
    published: int
    #: True when the commit is on disk (durable servers only)
    durable: bool


@dataclass(frozen=True)
class TransactionOutcome:
    """What :meth:`RuleServer.run_transaction` returns."""

    committed: bool
    rolled_back: bool
    receipt: CommitReceipt | None
    result: ProcessingResult | None
    retries: int


class _StatementShim:
    """Duck-typed stand-in for :class:`~repro.rules.rule.Rule`, so the
    attribute-level dataflow helpers can walk a bare user statement.
    ``table`` is empty: user statements cannot reference transition
    tables (there is no triggering rule to resolve them against)."""

    __slots__ = ("schema", "table", "condition", "actions")

    def __init__(self, schema, statement: ast.Statement) -> None:
        self.schema = schema
        self.table = ""
        self.condition = None
        self.actions = (statement,)


class _Footprint:
    """What one session read: row-membership tables and (table, column)
    value reads, accumulated as statements execute and rules are
    considered. Writes are not tracked here — the session's folded net
    effect at commit time *is* the exact write set."""

    __slots__ = ("row_tables", "columns")

    def __init__(self) -> None:
        self.row_tables: set[str] = set()
        self.columns: set[tuple[str, str]] = set()

    def add(
        self, rows: frozenset[str], columns: frozenset[tuple[str, str]]
    ) -> None:
        self.row_tables |= rows
        self.columns |= columns


def _reads_of(dataflow, schema, shim_or_rule) -> tuple[frozenset, frozenset]:
    """The MVCC read footprint of one rule or statement shim.

    The dataflow sets are reused as-is, with one deliberate widening:
    target tables of UPDATE/DELETE statements become row-membership
    reads. The dataflow module excludes them (its Lemma 6.1 consumers
    handle write-target interference separately), but the validator
    needs them for phantom protection — an UPDATE's WHERE scan decides
    *which* rows to write, so a concurrently inserted matching row
    breaks serial-replay equivalence unless it conflicts.
    """
    columns = dataflow.compute_column_reads(shim_or_rule)
    rows = set(dataflow.compute_row_read_tables(shim_or_rule))
    for action in shim_or_rule.actions:
        if isinstance(action, (ast.Update, ast.Delete)):
            rows.add(action.table.lower())
    rows.discard("")  # an unresolved transition-table shim binding
    rows.update(table for table, _ in columns)
    return frozenset(rows), columns


class Session:
    """One client transaction: a COW fork, a private rule processor,
    and an accumulated read footprint.

    The lifecycle is ``execute(...)* → run() → commit()`` (interleaving
    more execute/run rounds is fine — each ``run()`` is one assertion
    point). ``commit()`` either returns a :class:`CommitReceipt` or
    raises :class:`~repro.errors.ConflictError`; either way the session
    is closed afterwards. Sessions are single-threaded objects: share
    the *server* across threads, not a session.
    """

    def __init__(
        self,
        server: "RuleServer",
        session_id: int,
        fork: Database,
        epoch: int,
        strategy=None,
    ) -> None:
        self._server = server
        self.session_id = session_id
        self.epoch = epoch
        self._footprint = _Footprint()
        #: the session script, replayable by the determinism oracle:
        #: ("x", statement_ast) and ("run",) entries in order
        self._script: list[tuple] = []
        self._closed = False
        self._processor = RuleProcessor(
            server.ruleset,
            fork,
            strategy=strategy or FirstEligibleStrategy(),
            config=server.session_config,
        )

    # -- the transaction surface ---------------------------------------

    @property
    def database(self) -> Database:
        """The session's private snapshot fork (never the shared store)."""
        return self._processor.database

    @property
    def rolled_back(self) -> bool:
        return self._processor.rolled_back

    def execute(self, statement: ast.Statement | str):
        """Execute one user statement on the fork (no rule processing)."""
        self._check_open()
        if isinstance(statement, str):
            statement = parse_statement(statement)
        self._footprint.add(*self._server.statement_reads(statement))
        self._script.append(("x", statement))
        return self._processor.execute_user(statement)

    def run(self) -> ProcessingResult:
        """Run the rule cascade to fixpoint (one assertion point)."""
        self._check_open()
        result = self._processor.run()
        self._script.append(("run",))
        for rule_name in result.rules_considered:
            self._footprint.add(*self._server.rule_reads(rule_name))
        return result

    def commit(self) -> CommitReceipt:
        """Validate first-committer-wins and publish atomically.

        Raises :class:`~repro.errors.ConflictError` (retriable — open a
        fresh session) when validation fails, and
        :class:`~repro.errors.RuleProcessingError` when the session's
        own cascade rolled back (a rolled-back transaction cannot
        commit; this is the paper's abort, not a concurrency abort).
        Either way the session is closed on return.
        """
        self._check_open()
        try:
            if self._processor.rolled_back:
                self._server._note_rollback()
                raise RuleProcessingError(
                    "cannot commit a rolled-back session"
                )
            net = NetEffect.from_primitives(self._processor.log.all())
            return self._server._commit(self, net)
        finally:
            self._closed = True

    def abort(self) -> None:
        """Drop the fork; nothing the session did is visible anywhere."""
        self._closed = True

    def _check_open(self) -> None:
        if self._closed:
            raise RuleProcessingError("session is closed")

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if not self._closed:
            self.abort()


class RuleServer:
    """Admits many concurrent sessions over one shared store.

    Thread-per-session: any number of threads may each open a
    :meth:`session` (or call :meth:`run_transaction`) concurrently; the
    server serializes only session opening and commit
    validation/publication under one mutex, so rule processing — the
    expensive part — runs fully outside it. In durable mode
    (``config.durable``/``config.wal``) winning commits flow through a
    :class:`~repro.engine.wal.GroupCommitWal` coalescer; recovery of
    the server's WAL replays exactly the committed sessions in commit
    order.
    """

    def __init__(
        self,
        ruleset: RuleSet,
        database: Database,
        *,
        config: ExecutionConfig | None = None,
        options: ServerOptions | None = None,
        fault_plan=None,
        record_history: bool = False,
        record_commit_canonicals: bool = False,
    ) -> None:
        if ruleset.schema is not database.schema:
            raise RuleProcessingError(
                "rule set and database use different schemas"
            )
        self.ruleset = ruleset
        self.config = config if config is not None else DEFAULT_CONFIG
        self.options = options if options is not None else DEFAULT_SERVER_OPTIONS
        #: sessions run their forks non-durably: the *server's* log is
        #: the durable one, fed at publication with the published
        #: primitives (fork-side primitives never hit disk)
        self.session_config = self.config.with_options(
            durable=False, wal=None
        )
        self._database = database
        self._mutex = threading.Lock()
        self._log = DeltaLog()
        self._touch = ColumnTouchIndex()
        self._commits = 0
        self._session_counter = 0
        self._failed: BaseException | None = None
        self.stats = ServerStats()

        schema = database.schema
        self._column_names = {
            table.name: table.column_names for table in schema
        }
        self._column_index = {
            table.name: {
                name: index
                for index, name in enumerate(table.column_names)
            }
            for table in schema
        }

        # Imported lazily: the analysis package imports runtime modules.
        from repro.analysis import dataflow

        self._dataflow = dataflow
        self._rule_reads: dict[str, tuple[frozenset, frozenset]] = {
            rule.name: _reads_of(dataflow, schema, rule) for rule in ruleset
        }

        #: committed sessions' scripts in commit order (oracle input)
        self.history: list[tuple[int, tuple]] | None = (
            [] if record_history else None
        )
        #: commit_seq -> canonical database after that commit (the
        #: concurrent crash matrix keys its expectations on this)
        self.commit_canonicals: dict[int, tuple] | None = (
            {} if record_commit_canonicals else None
        )

        self._wal = None
        if self.config.wants_wal:
            from repro.engine.wal import GroupCommitWal, WalWriter

            wal_setting = self.config.wal
            if wal_setting is None or isinstance(wal_setting, str):
                if not isinstance(wal_setting, str):
                    raise RuleProcessingError(
                        "durable server needs a WAL path "
                        "(ExecutionConfig(wal=...))"
                    )
                writer = WalWriter(
                    wal_setting, schema=schema, fault_plan=fault_plan
                )
            else:
                writer = wal_setting
            if self.options.group_commit:
                group = GroupCommitWal(
                    writer,
                    max_delay=self.options.max_delay,
                    max_batch=self.options.max_batch,
                )
            else:
                # Same code path, degenerate batching: every commit
                # syncs alone (the per-commit-fsync baseline).
                group = GroupCommitWal(writer, max_delay=0.0, max_batch=1)
            if any(
                len(database.table(table.name)) for table in schema
            ):
                group.checkpoint(database)
            self._wal = group

    # -- introspection --------------------------------------------------

    @property
    def database(self) -> Database:
        """The authoritative store. Consistent reads require quiescence
        (no in-flight commits) — take a session for a snapshot read."""
        return self._database

    @property
    def wal(self):
        """The group-commit WAL (None when not durable)."""
        return self._wal

    @property
    def commit_count(self) -> int:
        return self._commits

    def stats_sections(self) -> dict[str, dict]:
        """Named stats payloads for ``--stats``/``--json`` rendering."""
        sections = {"server": self.stats.to_dict()}
        if self._wal is not None:
            sections["group_commit"] = self._wal.stats.to_dict()
            sections["wal"] = self._wal.writer.stats.to_dict()
        return sections

    # -- footprint helpers (read-only after construction) ---------------

    def rule_reads(self, rule_name: str) -> tuple[frozenset, frozenset]:
        return self._rule_reads[rule_name.lower()]

    def statement_reads(
        self, statement: ast.Statement
    ) -> tuple[frozenset, frozenset]:
        # Fast path for the streaming-ingestion shape: an INSERT of
        # literal VALUES reads nothing, and walking a wide batch's rows
        # through the dataflow helpers costs more than executing it.
        if (
            isinstance(statement, ast.Insert)
            and statement.query is None
            and all(
                type(value) is ast.Literal
                for row in statement.rows
                for value in row
            )
        ):
            return frozenset(), frozenset()
        return _reads_of(
            self._dataflow,
            self._database.schema,
            _StatementShim(self._database.schema, statement),
        )

    # -- session lifecycle ----------------------------------------------

    def session(self, *, strategy=None) -> Session:
        """Open a snapshot session (thread-safe)."""
        with self._mutex:
            self._raise_if_failed()
            self._session_counter += 1
            session_id = self._session_counter
            fork = self._database.copy()
            epoch = self._log.position
            self.stats.sessions += 1
        return Session(self, session_id, fork, epoch, strategy)

    def run_transaction(
        self,
        statements,
        *,
        strategy_factory=None,
        max_retries: int | None = None,
    ) -> TransactionOutcome:
        """Execute *statements*, cascade to fixpoint, commit — retrying
        on :class:`~repro.errors.ConflictError` up to *max_retries*
        times (default :attr:`ServerOptions.max_retries`). A cascade
        that rolls back aborts the transaction without retry (that is
        the transaction's semantics, not a concurrency artifact)."""
        budget = (
            self.options.max_retries if max_retries is None else max_retries
        )
        retries = 0
        while True:
            session = self.session(
                strategy=strategy_factory() if strategy_factory else None
            )
            try:
                for statement in statements:
                    session.execute(statement)
                result = session.run()
                if result.outcome == "rolled_back":
                    session.abort()
                    self._note_rollback()
                    return TransactionOutcome(
                        committed=False,
                        rolled_back=True,
                        receipt=None,
                        result=result,
                        retries=retries,
                    )
                receipt = session.commit()
                return TransactionOutcome(
                    committed=True,
                    rolled_back=False,
                    receipt=receipt,
                    result=result,
                    retries=retries,
                )
            except ConflictError:
                if retries >= budget:
                    raise
                retries += 1
                with self._mutex:
                    self.stats.retries += 1
            finally:
                if not session._closed:
                    session.abort()

    # -- commit: validate, publish, make durable -------------------------

    def _note_rollback(self) -> None:
        with self._mutex:
            self.stats.rollbacks += 1

    def _raise_if_failed(self) -> None:
        if self._failed is not None:
            raise RuleProcessingError(
                f"server WAL failed; the store is no longer accepting "
                f"commits: {self._failed}"
            )

    def _commit(self, session: Session, net: NetEffect) -> CommitReceipt:
        with self._mutex:
            started = time.perf_counter()  # after acquisition: lock waits
            self._raise_if_failed()        # are not validation time
            conflicts = self._validate(session, net)
            validated = time.perf_counter()
            self.stats.validate_seconds += validated - started
            if conflicts:
                self.stats.conflicts += 1
                raise ConflictError(
                    f"session {session.session_id} conflicts on "
                    f"{', '.join(conflicts)} (snapshot epoch "
                    f"{session.epoch}, now {self._log.position})",
                    items=tuple(conflicts),
                )
            published = self._publish(net)
            self._commits += 1
            commit_seq = self._commits
            if self.history is not None:
                self.history.append((commit_seq, tuple(session._script)))
            if self.commit_canonicals is not None:
                self.commit_canonicals[commit_seq] = (
                    self._database.canonical()
                )
            self.stats.publish_seconds += time.perf_counter() - validated
            self.stats.commits += 1
            self.stats.published_primitives += len(published)
            ticket = None
            if self._wal is not None:
                # Submitted inside the mutex: the coalescer preserves
                # submission order, so WAL commit order == publication
                # order and recovery replays net effects in the order
                # they were applied here.
                ticket = self._wal.submit(
                    session.session_id, published, epoch=commit_seq
                )
        durable = False
        if ticket is not None:
            waited_from = time.perf_counter()
            try:
                self._wal.wait(ticket)
            except BaseException as error:
                with self._mutex:
                    self._failed = error
                raise
            durable = True
            with self._mutex:
                self.stats.commit_wait_seconds += (
                    time.perf_counter() - waited_from
                )
        return CommitReceipt(
            session_id=session.session_id,
            commit_seq=commit_seq,
            epoch=session.epoch,
            published=len(published),
            durable=durable,
        )

    def _validate(self, session: Session, net: NetEffect) -> list[str]:
        """First-committer-wins: the conflicting footprint items (empty
        means the session wins). Called under the mutex."""
        epoch = session.epoch
        footprint = session._footprint
        serializable = self.options.isolation == "serializable"
        conflicts: dict[str, None] = {}

        if self.options.granularity == "table":
            tables = set(net.tables)
            if serializable:
                tables |= footprint.row_tables
            for table in sorted(tables):
                if self._log.last_write(table) > epoch:
                    conflicts[table] = None
            return list(conflicts)

        touch = self._touch
        if serializable:
            # Membership reads conflict with structural writes; column
            # value reads conflict with in-place updates of that column.
            # (Every column-read table is also a row-read table — see
            # _reads_of — so delete/insert interference with value reads
            # is covered by the membership check.)
            for table in sorted(footprint.row_tables):
                if touch.inserted_since(table, epoch) or touch.deleted_since(
                    table, epoch
                ):
                    conflicts[table] = None
            for table, column in sorted(footprint.columns):
                index = self._column_index[table][column]
                if touch.updated_since(table, index, epoch):
                    conflicts[f"{table}.{column}"] = None

        # Write-write validation runs in BOTH isolation modes: it is
        # what keeps publication's column-delta merge sound (no two
        # committed sessions ever wrote the same column or delete-vs-
        # wrote the same table). Inserts conflict with nothing — their
        # tids are fresh by construction.
        for table in net.tables:
            effect = net.table(table)
            if effect.deleted and (
                touch.deleted_since(table, epoch)
                or touch.any_update_since(table, epoch)
            ):
                conflicts[table] = None
            if effect.updated:
                if touch.deleted_since(table, epoch):
                    conflicts[table] = None
                for column in sorted(
                    effect.updated_columns(self._column_names[table])
                ):
                    index = self._column_index[table][column]
                    if touch.updated_since(table, index, epoch):
                        conflicts[f"{table}.{column}"] = None
        return list(conflicts)

    def _publish(self, net: NetEffect) -> list[Primitive]:
        """Apply the winner's net effect to the authoritative store.

        Insert tids are reallocated from the server counter (fork-side
        tids may collide across sibling sessions — same move as
        ``ParallelScheduler._replay``); updates merge only the columns
        the session actually changed onto the *current* row, preserving
        concurrent committed writes to disjoint columns. Every applied
        primitive is appended to the server log (advancing the touch
        epochs) and returned for the WAL. Called under the mutex.
        """
        database = self._database
        published: list[Primitive] = []
        for table in sorted(net.tables):
            effect = net.table(table)
            data = database.table(table)
            for tid in sorted(effect.deleted):
                old = data.delete(tid)
                published.append(self._log.record_delete(table, tid, old))
            for tid in sorted(effect.updated):
                old, new = effect.updated[tid]
                changed = {
                    index: value
                    for index, (stale, value) in enumerate(zip(old, new))
                    if stale != value
                }
                if not changed:
                    continue
                merged_old, merged_new = database.merge_update(
                    table, tid, changed
                )
                published.append(
                    self._log.record_update(
                        table, tid, merged_old, merged_new
                    )
                )
            for tid in sorted(effect.inserted):
                values = effect.inserted[tid]
                fresh = database.allocate_tid()
                data.insert(fresh, values)
                published.append(
                    self._log.record_insert(table, fresh, values)
                )
        for primitive in published:
            self._touch.observe(primitive)
        # The log is an epoch source, not an archive: the WAL holds the
        # durable copy, so drop the stored primitives (positions and the
        # touch index survive compaction).
        self._log.compact()
        return published

    # -- shutdown --------------------------------------------------------

    def close(self) -> None:
        """Drain and close the WAL (no-op for in-memory servers)."""
        if self._wal is not None:
            self._wal.close()

    def __enter__(self) -> "RuleServer":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


def serial_replay(
    ruleset: RuleSet,
    database: Database,
    history,
    *,
    config: ExecutionConfig | None = None,
    strategy_factory=None,
) -> Database:
    """The determinism oracle: re-execute committed sessions serially.

    *history* is :attr:`RuleServer.history` — ``(commit_seq, script)``
    pairs. Each script replays as its own transaction on *database*
    (statements and assertion points in the session's original order),
    in commit order, on one ordinary single-agent processor. Under
    ``isolation="serializable"`` the result's canonical form must equal
    the server's — that equality is the gate's oracle check.
    """
    replay_config = (config if config is not None else DEFAULT_CONFIG)
    replay_config = replay_config.with_options(durable=False, wal=None)
    processor = RuleProcessor(
        ruleset,
        database,
        strategy=strategy_factory() if strategy_factory else None,
        config=replay_config,
    )
    for _, script in sorted(history):
        processor.begin_transaction()
        for op in script:
            if op[0] == "x":
                processor.execute_user(op[1])
            else:
                result = processor.run()
                if result.outcome == "rolled_back":
                    raise RuleProcessingError(
                        "serial replay rolled back — committed history "
                        "is not replayable (validation soundness bug)"
                    )
    return database
