"""Checking Lemma 4.1's execution-graph edge properties (Experiment E11).

For every edge from ``(D1, TR1)`` to ``(D2, TR2)`` labeled ``r``:

* ``r ∈ Choose(TR1)`` — the considered rule was eligible;
* the operations ``O'`` actually executed by ``r``'s action satisfy
  ``O' ⊆ Performs(r)``;
* ``TR1 \\ TR2 ⊆ {r} ∪ Can-Untrigger(O')`` — rules only disappear by
  being considered or untriggered;
* ``TR2 \\ TR1 ⊆ {r' | O' ∩ Triggered-By(r') ≠ ∅}`` — rules only appear
  when the action's operations trigger them.

(The last two are the containments the static analyses rely on; the
net-effect semantics makes the "adds all" direction of step 3
conservative, since a rule's composite transition can absorb the new
operations — see DESIGN.md.)
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.analysis.derived import DerivedDefinitions
from repro.runtime.processor import RuleProcessor
from repro.transitions.net_effect import NetEffect


@dataclass
class EdgeCheckReport:
    """Outcome of checking Lemma 4.1 over an explored execution graph."""

    edges_checked: int = 0
    violations: list[str] = field(default_factory=list)
    truncated: bool = False

    @property
    def holds(self) -> bool:
        return not self.violations


def check_execution_edges(
    processor: RuleProcessor,
    max_states: int = 500,
) -> EdgeCheckReport:
    """Explore from *processor*'s state, verifying Lemma 4.1 per edge."""
    definitions = DerivedDefinitions(processor.ruleset)
    column_names = {
        table.name: table.column_names for table in processor.ruleset.schema
    }
    report = EdgeCheckReport()

    seen: set[tuple] = set()
    frontier: deque[RuleProcessor] = deque([processor.fork()])
    seen.add(processor.state_key())

    while frontier:
        current = frontier.popleft()
        triggered_before = frozenset(current.triggered_rules())
        eligible = current.eligible_rules()
        if not eligible:
            continue
        if len(seen) >= max_states:
            report.truncated = True
            break

        choose_set = frozenset(current.ruleset.choose(triggered_before))
        for rule_name in eligible:
            # Property 1: r ∈ Choose(TR1).
            if rule_name not in choose_set:
                report.violations.append(
                    f"edge rule {rule_name!r} not in Choose(TR1)"
                )

            child = current.fork()
            log_before = child.log.position
            child.consider(rule_name)
            report.edges_checked += 1

            executed = child.log.since(log_before)
            operations = NetEffect.from_primitives(executed).operations(
                column_names
            )

            # Property 2: O' ⊆ Performs(r).
            extra = operations - definitions.performs(rule_name)
            if extra:
                report.violations.append(
                    f"rule {rule_name!r} performed "
                    f"{sorted(map(str, extra))} outside Performs"
                )

            triggered_after = frozenset(child.triggered_rules())

            # Property 3 (removal direction): TR1 \ TR2 ⊆ {r} ∪ Can-Untrigger(O').
            removed = triggered_before - triggered_after
            allowed_removed = {rule_name} | definitions.can_untrigger(operations)
            if child.rolled_back:
                # A rollback clears the triggered set wholesale; skip.
                allowed_removed = triggered_before
            stray_removed = removed - allowed_removed
            if stray_removed:
                report.violations.append(
                    f"edge {rule_name!r}: rules {sorted(stray_removed)} "
                    "disappeared without consideration or untriggering"
                )

            # Property 3 (addition direction): TR2 \ TR1 only via O'.
            added = triggered_after - triggered_before
            allowed_added = {
                other
                for other in definitions.rule_names
                if operations & definitions.triggered_by(other)
            }
            stray_added = added - allowed_added
            if stray_added:
                report.violations.append(
                    f"edge {rule_name!r}: rules {sorted(stray_added)} "
                    "appeared without a triggering operation"
                )

            key = child.state_key()
            if key not in seen:
                seen.add(key)
                frontier.append(child)

    return report
