"""Per-instance ground truth via exhaustive execution-graph exploration."""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine.database import Database
from repro.runtime.exec_graph import ExecutionGraph, explore
from repro.runtime.processor import RuleProcessor
from repro.rules.ruleset import RuleSet


@dataclass
class OracleVerdict:
    """Observed behavior of one concrete instance.

    ``terminates=None`` means exploration was truncated — the instance
    is too large to decide, and soundness checks skip it (conservative
    analyses are allowed to be unverifiable, never wrong).
    """

    terminates: bool | None
    confluent: bool | None
    observably_deterministic: bool | None
    graph: ExecutionGraph

    @property
    def decided(self) -> bool:
        return self.terminates is not None


def oracle_verdict(
    ruleset: RuleSet,
    database: Database,
    user_statements: list,
    max_states: int = 2_000,
    max_depth: int = 200,
    max_paths: int = 20_000,
) -> OracleVerdict:
    """Explore all execution orders of one instance and report verdicts.

    The database is copied; the caller's instance is never mutated.
    """
    processor = RuleProcessor(ruleset, database.copy())
    for statement in user_statements:
        processor.execute_user(statement)
    graph = explore(
        processor,
        max_states=max_states,
        max_depth=max_depth,
        max_paths=max_paths,
    )

    if graph.truncated:
        return OracleVerdict(
            terminates=None,
            confluent=None,
            observably_deterministic=None,
            graph=graph,
        )
    if graph.has_cycle:
        return OracleVerdict(
            terminates=False,
            confluent=None,  # nonterminating: confluence undefined
            observably_deterministic=None,
            graph=graph,
        )
    streams_known = not graph.streams_truncated
    return OracleVerdict(
        terminates=True,
        confluent=graph.is_confluent,
        observably_deterministic=(
            graph.is_observably_deterministic if streams_known else None
        ),
        graph=graph,
    )


def oracle_partial_confluence(
    ruleset: RuleSet,
    database: Database,
    user_statements: list,
    tables: list[str],
    **kwargs,
) -> bool | None:
    """Ground truth for partial confluence: do all final states agree on
    the projection to *tables*? None if undecidable (truncated/cyclic)."""
    processor = RuleProcessor(ruleset, database.copy())
    for statement in user_statements:
        processor.execute_user(statement)
    graph = explore(processor, **kwargs)
    if graph.truncated or graph.has_cycle:
        return None

    projections = set()
    # Re-derive the projected database for each final state by replaying:
    # final_databases holds full canonical dumps; project them.
    wanted = {table.lower() for table in tables}
    for full in graph.final_databases.values():
        projections.add(
            tuple(
                (name, contents) for name, contents in full if name in wanted
            )
        )
    return len(projections) <= 1
