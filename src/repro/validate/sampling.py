"""Monte-Carlo sampling of execution orders.

Exhaustive execution-graph exploration (the Section 4 oracle) is
exponential in branching; for instances beyond its budget this module
samples random execution orders instead. Sampling can *refute*
confluence or observable determinism (two samples disagreeing is a
counterexample) but never certify them — the same one-sidedness as the
paper's static analyses, from the opposite direction.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.engine.database import Database
from repro.errors import RuleProcessingLimitExceeded
from repro.runtime.observer import ObservableAction
from repro.runtime.processor import RuleProcessor
from repro.runtime.strategies import RandomStrategy
from repro.rules.ruleset import RuleSet


@dataclass
class SampleReport:
    """What *n* random execution orders of one instance produced."""

    runs: int = 0
    #: runs that exceeded the step budget (possible nontermination)
    exhausted: int = 0
    #: runs ending in rollback
    rolled_back: int = 0
    final_databases: set[tuple] = field(default_factory=set)
    observable_streams: set[tuple[ObservableAction, ...]] = field(
        default_factory=set
    )

    @property
    def all_terminated(self) -> bool:
        return self.exhausted == 0

    @property
    def confluence_refuted(self) -> bool:
        return len(self.final_databases) > 1

    @property
    def observable_determinism_refuted(self) -> bool:
        return len(self.observable_streams) > 1

    def describe(self) -> str:
        return (
            f"{self.runs} sampled runs: {len(self.final_databases)} distinct "
            f"final states, {len(self.observable_streams)} observable "
            f"streams, {self.exhausted} exhausted, {self.rolled_back} "
            "rolled back"
        )


def sample_runs(
    ruleset: RuleSet,
    database: Database,
    user_statements: list,
    runs: int = 20,
    seed: int = 0,
    max_steps: int = 5_000,
) -> SampleReport:
    """Execute *runs* random-order runs of one instance.

    The caller's database is never mutated. Runs exceeding *max_steps*
    are counted as ``exhausted`` and contribute no final state.
    """
    report = SampleReport()
    for index in range(runs):
        processor = RuleProcessor(
            ruleset,
            database.copy(),
            strategy=RandomStrategy(seed * 10_007 + index),
            max_steps=max_steps,
        )
        for statement in user_statements:
            processor.execute_user(statement)
        report.runs += 1
        try:
            result = processor.run()
        except RuleProcessingLimitExceeded:
            report.exhausted += 1
            continue
        if result.outcome == "rolled_back":
            report.rolled_back += 1
        report.final_databases.add(processor.database.canonical())
        report.observable_streams.add(tuple(result.observables))
    return report
