"""Soundness checking: static "guaranteed" must never be contradicted.

The analyses are conservative: they answer "guaranteed" or "may not".
Soundness means a "guaranteed" verdict is never refuted by any concrete
execution. :func:`check_soundness` runs the static analyses once per
rule set and the oracle once per instance, and records:

* **violations** — instances where a static guarantee was contradicted
  (must be empty; the property-based tests assert this);
* **false alarms** — instances where the static analysis said "may not"
  but every explored execution was fine (expected: the price of
  conservatism, and the quantity the Section 9 comparison is about).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.analyzer import RuleAnalyzer
from repro.engine.database import Database
from repro.rules.ruleset import RuleSet
from repro.validate.oracle import oracle_verdict


@dataclass
class SoundnessViolation:
    """A static guarantee contradicted by a concrete execution."""

    property_name: str
    instance_index: int
    detail: str

    def __str__(self) -> str:
        return (
            f"{self.property_name} violated on instance "
            f"{self.instance_index}: {self.detail}"
        )


@dataclass
class SoundnessReport:
    """Aggregate result of soundness checking over many instances."""

    instances: int = 0
    undecided: int = 0
    violations: list[SoundnessViolation] = field(default_factory=list)
    #: property -> count of instances where "may not" proved fine
    false_alarms: dict[str, int] = field(default_factory=dict)
    #: property -> count of instances where the guarantee was confirmed
    confirmations: dict[str, int] = field(default_factory=dict)

    @property
    def sound(self) -> bool:
        return not self.violations

    def _bump(self, bucket: dict[str, int], key: str) -> None:
        bucket[key] = bucket.get(key, 0) + 1


def check_soundness(
    ruleset: RuleSet,
    instances: list[tuple[Database, list]],
    oracle_kwargs: dict | None = None,
) -> SoundnessReport:
    """Compare static verdicts for *ruleset* against oracle verdicts for
    each ``(database, user_statements)`` instance."""
    analyzer = RuleAnalyzer(ruleset)
    report_static = analyzer.analyze()
    report = SoundnessReport()
    oracle_kwargs = oracle_kwargs or {}

    for index, (database, statements) in enumerate(instances):
        report.instances += 1
        verdict = oracle_verdict(ruleset, database, statements, **oracle_kwargs)
        if not verdict.decided:
            report.undecided += 1
            continue
        _check_property(
            report,
            "termination",
            static_guaranteed=report_static.terminates,
            observed=verdict.terminates,
            index=index,
        )
        if verdict.terminates:
            _check_property(
                report,
                "confluence",
                static_guaranteed=report_static.confluent,
                observed=verdict.confluent,
                index=index,
            )
            if verdict.observably_deterministic is not None:
                _check_property(
                    report,
                    "observable determinism",
                    static_guaranteed=report_static.observably_deterministic,
                    observed=verdict.observably_deterministic,
                    index=index,
                )
    return report


def _check_property(
    report: SoundnessReport,
    name: str,
    static_guaranteed: bool,
    observed: bool,
    index: int,
) -> None:
    if static_guaranteed and not observed:
        report.violations.append(
            SoundnessViolation(
                property_name=name,
                instance_index=index,
                detail="statically guaranteed but refuted by the oracle",
            )
        )
    elif static_guaranteed and observed:
        report._bump(report.confirmations, name)
    elif not static_guaranteed and observed:
        report._bump(report.false_alarms, name)
