"""Deterministic fault injection for the durability subsystem.

A :class:`FaultPlan` scripts exactly one process-failure story against a
:class:`~repro.engine.wal.WalWriter` (which accepts it as
``fault_plan=``), with every random choice drawn from an explicit
seeded RNG so a failing CI run reproduces byte-for-byte:

* **crash at a frame boundary** — ``crash_after_frames=N`` lets exactly
  N frames reach the file, then raises :class:`SimulatedCrash` out of
  whatever processor call was executing (everything buffered past the
  boundary is dropped, as a real crash would drop it);
* **torn final frame** — ``torn_bytes=k`` additionally writes the first
  k bytes of frame N before crashing, leaving the partial frame a real
  mid-write power cut leaves (recovery must truncate, not fail);
* **transient I/O errors** — ``io_error_rate`` makes physical
  writes/fsyncs raise ``OSError`` with that probability (bounded by
  ``max_io_errors``); the WAL writer's retry/backoff must absorb them.
  With ``max_io_errors=None`` and rate 1.0 the failure is permanent and
  the writer must surface :class:`~repro.engine.wal.WalWriteError`.

The plan is duck-typed on purpose: :mod:`repro.engine.wal` never
imports this module (validate depends on engine, not the reverse).
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass


class SimulatedCrash(Exception):
    """The scripted process failure. Deliberately NOT a ReproError:
    nothing in the stack should catch-and-handle a crash — it must
    unwind out of the run exactly like a killed process."""


@dataclass
class FaultPlan:
    """A scripted failure for one durable session. See module docstring."""

    #: crash once this many frames have fully reached the file
    crash_after_frames: int | None = None
    #: with a crash: also write this many bytes of the next frame first
    torn_bytes: int | None = None
    #: probability that any single physical write/fsync raises OSError
    io_error_rate: float = 0.0
    #: stop injecting I/O errors after this many (None = never stop)
    max_io_errors: int | None = 8
    #: seed for the I/O-error schedule
    seed: int = 0

    def __post_init__(self) -> None:
        self._rng = random.Random(self.seed)
        self.io_errors_injected = 0
        self.crashed = False

    # -- protocol consumed by WalWriter --------------------------------

    def before_frame(self, writer, index: int, frame: bytes) -> None:
        """Called before frame *index* (0-based) enters the buffer."""
        if (
            self.crash_after_frames is None
            or index < self.crash_after_frames
            or self.crashed
        ):
            return
        # Flush first so the preceding frames form the durable prefix;
        # simulate_crash then discards anything still buffered.
        writer.flush()
        torn = b""
        if self.torn_bytes:
            # Clamp to strictly less than the whole frame — writing all
            # of it would be a complete frame, not a torn one.
            torn = frame[: min(self.torn_bytes, len(frame) - 1)]
        self.crashed = True
        writer.simulate_crash(torn)
        raise SimulatedCrash(
            f"simulated crash at frame boundary {index}"
            + (f" with {len(torn)}-byte torn tail" if torn else "")
        )

    def before_io(self, operation: str) -> None:
        """Called before each physical write/fsync; may inject OSError."""
        if not self.io_error_rate:
            return
        if (
            self.max_io_errors is not None
            and self.io_errors_injected >= self.max_io_errors
        ):
            return
        if self._rng.random() < self.io_error_rate:
            self.io_errors_injected += 1
            raise OSError(
                f"injected {operation} failure "
                f"#{self.io_errors_injected}"
            )


@dataclass
class DeviceLatency:
    """A deterministic storage-device latency model (no failures).

    Speaks the same duck-typed protocol as :class:`FaultPlan`, but
    instead of injecting errors it *sleeps* before physical I/O —
    ``fsync_seconds`` models the sync penalty of a commodity disk
    (``0.01`` ≈ a spinning disk, ``0.001`` ≈ a consumer SSD).

    The server benchmark gate runs on it so its group-commit floors are
    hardware-independent: an in-page-cache tmpfs fsync costs
    microseconds and would make fsync amortization unmeasurable, while a
    simulated device pins the sync cost to a known constant.
    ``time.sleep`` releases the GIL, so concurrently-committing sessions
    overlap their waits exactly as they would overlap real device time.
    """

    fsync_seconds: float = 0.0
    write_seconds: float = 0.0

    def before_frame(self, writer, index: int, frame: bytes) -> None:
        """No frame-boundary behavior (protocol compliance only)."""

    def before_io(self, operation: str) -> None:
        if operation == "fsync" and self.fsync_seconds > 0:
            time.sleep(self.fsync_seconds)
        elif operation == "write" and self.write_seconds > 0:
            time.sleep(self.write_seconds)
