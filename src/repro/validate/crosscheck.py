"""Differential cross-check: declarative semantics vs every execution mode.

:mod:`repro.semantics` computes what a rule program *means* — the
per-stratum fixpoint of Flesca/Greco's declarative reading, with no
operational machinery. This module checks that every way the repository
can *run* the program lands where the meaning says it should:

* **execution modes** — the cross product of condition matching
  (``naive``/``planned``/``rete``), rule scheduling
  (``serial``/``parallel``), and persistence (``memory``/``durable``/
  ``server``), eighteen configurations in all;
* **the differential contract** — when the program's unique-final
  guarantee is certified (statically, or by a workload that is
  confluent by construction), the declarative outcome must **equal**
  every mode's final database; otherwise the declarative outcome must
  be **contained** in the ``explore()``-reachable final set (it is one
  reachable execution order by construction), checked whenever
  exploration is feasible;
* **mode agreement** — all operational modes implement one
  deterministic semantics (same default strategy, commute-certified
  parallel merge, match-mode equivalence), so their finals must agree
  pairwise regardless of certification;
* **durability** — the database recovered from a durable mode's WAL
  must equal that mode's live final.

On divergence the report carries a **minimized counterexample**: the
user transition greedily shrunk (delta-debugging style) to the smallest
statement subset that still diverges, plus both firing sequences.

Every mode result also carries the per-run deltas of the global
:data:`repro.engine.rete.STATS` and
:data:`repro.runtime.parallel.STATS` singletons (via
:meth:`~repro.stats.StatsBase.delta_since`), so a driver sweeping many
modes reports each mode's own counters instead of an accumulated blur —
and a rete or parallel leg whose counters are all zero is detectable as
a mis-wired config rather than a quiet success.
"""

from __future__ import annotations

import hashlib
import os
import tempfile
import time
from dataclasses import dataclass, field

from repro.config import ExecutionConfig
from repro.engine import rete as rete_module
from repro.engine.database import Database
from repro.errors import RuleProcessingLimitExceeded
from repro.lang.parser import parse_statement
from repro.runtime import parallel as parallel_module
from repro.runtime.exec_graph import explore
from repro.runtime.processor import RuleProcessor
from repro.rules.ruleset import RuleSet
from repro.semantics import (
    DeclarativeOutcome,
    ProgramClassification,
    classify_program,
    declarative_outcome,
)

__all__ = [
    "ALL_MODES",
    "QUICK_MODES",
    "CrosscheckCase",
    "CrosscheckReport",
    "ModeResult",
    "crosscheck",
    "crosscheck_case",
    "build_case",
    "case_names",
    "parse_modes",
]

#: every execution mode: matching × scheduler × persistence
ALL_MODES: dict[str, tuple[str, str, str]] = {
    f"{matching}-{scheduler}-{persistence}": (matching, scheduler, persistence)
    for matching in ("naive", "planned", "rete")
    for scheduler in ("serial", "parallel")
    for persistence in ("memory", "durable", "server")
}

#: one representative per axis — the CI-smoke subset
QUICK_MODES: tuple[str, ...] = (
    "planned-serial-memory",
    "naive-serial-memory",
    "rete-serial-memory",
    "planned-parallel-memory",
    "planned-serial-durable",
    "planned-serial-server",
)


def parse_modes(spec: str | None) -> tuple[str, ...]:
    """Resolve a ``--modes`` spec: ``all``, ``quick``, or a comma list."""
    if spec is None or spec == "all":
        return tuple(ALL_MODES)
    if spec == "quick":
        return QUICK_MODES
    modes = tuple(part.strip() for part in spec.split(",") if part.strip())
    for mode in modes:
        if mode not in ALL_MODES:
            raise ValueError(
                f"unknown mode {mode!r}; modes are "
                f"{', '.join(ALL_MODES)} (or 'all'/'quick')"
            )
    return modes


def _digest(canonical: tuple | None) -> str | None:
    if canonical is None:
        return None
    return hashlib.sha1(repr(canonical).encode()).hexdigest()[:12]


@dataclass
class ModeResult:
    """One execution mode's run of the case's transition."""

    mode: str
    status: str  # "quiescent" | "rolled_back" | "exhausted"
    final: tuple | None
    seconds: float
    #: per-run counter deltas: "processor"/"rete"/"scheduler" (+"server")
    stats: dict = field(default_factory=dict)
    #: durable modes: does Database.recover(wal) equal the live final?
    recovered_matches: bool | None = None

    def to_dict(self) -> dict:
        return {
            "mode": self.mode,
            "status": self.status,
            "final_digest": _digest(self.final),
            "seconds": round(self.seconds, 6),
            "stats": self.stats,
            "recovered_matches": self.recovered_matches,
        }


@dataclass
class CrosscheckCase:
    """A workload instance prepared for the differential harness."""

    name: str
    ruleset: RuleSet
    database: Database
    statements: list
    #: construction-level confluence certificate (None = run the static
    #: analysis); see ProgramClassification
    certified_confluent: bool | None = None
    #: explore() the instance (only feasible for small ones)
    explore: bool = False
    max_steps: int = 100_000

    def statement_sources(self) -> list[str]:
        return [
            statement if isinstance(statement, str) else str(statement)
            for statement in self.statements
        ]


@dataclass
class CrosscheckReport:
    """Everything one differential run established."""

    case: str
    classification: ProgramClassification
    declarative: DeclarativeOutcome
    declarative_seconds: float
    modes: list[ModeResult]
    #: divergences, each {"kind", "mode", "detail"}
    divergences: list[dict] = field(default_factory=list)
    #: explore() summary when run: distinct finals, containment verdict
    exploration: dict | None = None
    #: minimized statement subset + firing sequences (first divergence)
    counterexample: dict | None = None

    @property
    def passed(self) -> bool:
        return not self.divergences

    def to_dict(self) -> dict:
        return {
            "case": self.case,
            "classification": self.classification.label,
            "contract": (
                "equality" if self.classification.confluent else "containment"
            ),
            "declarative": {
                "status": self.declarative.status,
                "firings": self.declarative.firings,
                "refutations": self.declarative.refutations,
                "stratum_fixpoints": list(self.declarative.stratum_fixpoints),
                "final_digest": _digest(self.declarative.final),
                "seconds": round(self.declarative_seconds, 6),
            },
            "modes": [mode.to_dict() for mode in self.modes],
            "exploration": self.exploration,
            "divergences": self.divergences,
            "counterexample": self.counterexample,
            "passed": self.passed,
        }


def _run_mode(
    case: CrosscheckCase, mode: str, wal_dir: str
) -> ModeResult:
    """Run one execution mode on a fresh copy of the case's database."""
    matching, scheduler, persistence = ALL_MODES[mode]
    database = case.database.copy()
    config = ExecutionConfig(matching=matching, scheduler=scheduler)
    before_rete = rete_module.STATS.snapshot()
    before_sched = parallel_module.STATS.snapshot()
    started = time.perf_counter()

    status = "quiescent"
    recovered_matches = None
    stats: dict = {}
    if persistence == "server":
        from repro.runtime.server import RuleServer

        server = RuleServer(case.ruleset, database, config=config)
        try:
            outcome = server.run_transaction(list(case.statements))
            if outcome.rolled_back:
                status = "rolled_back"
        except RuleProcessingLimitExceeded:
            status = "exhausted"
        finally:
            server.close()
        stats["server"] = server.stats.to_dict()
        final = None if status == "exhausted" else database.canonical()
    else:
        wal_path = None
        if persistence == "durable":
            wal_path = os.path.join(wal_dir, f"{mode}.wal")
            config = config.with_options(durable=True, wal=wal_path)
        processor = RuleProcessor(
            case.ruleset, database, max_steps=case.max_steps, config=config
        )
        try:
            for statement in case.statements:
                processor.execute_user(statement)
            result = processor.run()
            status = result.outcome
            processor.commit()
        except RuleProcessingLimitExceeded:
            status = "exhausted"
        finally:
            processor.close()
        stats["processor"] = processor.stats.to_dict()
        final = None if status == "exhausted" else database.canonical()
        if wal_path is not None and final is not None:
            recovered = Database.recover(wal_path, schema=case.ruleset.schema)
            recovered_matches = recovered.canonical() == final

    seconds = time.perf_counter() - started
    stats["rete"] = rete_module.STATS.delta_since(before_rete)
    stats["scheduler"] = parallel_module.STATS.delta_since(before_sched)
    return ModeResult(
        mode=mode,
        status=status,
        final=final,
        seconds=seconds,
        stats=stats,
        recovered_matches=recovered_matches,
    )


def _explore_case(case: CrosscheckCase, declarative: DeclarativeOutcome,
                  max_states: int, max_depth: int, max_paths: int) -> dict:
    """Enumerate reachable finals and test containment/uniqueness."""
    processor = RuleProcessor(case.ruleset, case.database.copy())
    for statement in case.statements:
        processor.execute_user(statement)
    graph = explore(
        processor,
        max_states=max_states,
        max_depth=max_depth,
        max_paths=max_paths,
    )
    finals = set(graph.final_databases.values())
    return {
        "states": graph.state_count,
        "distinct_finals": len(finals),
        "truncated": graph.truncated,
        "has_cycle": graph.has_cycle,
        "contains_declarative": (
            None
            if graph.truncated or declarative.final is None
            else declarative.final in finals
        ),
    }


def crosscheck_case(
    case: CrosscheckCase,
    modes: tuple[str, ...] | None = None,
    *,
    minimize: bool = True,
    explore_states: int = 2_000,
    explore_depth: int = 200,
    explore_paths: int = 20_000,
) -> CrosscheckReport:
    """Run the differential contract for one case across *modes*."""
    modes = tuple(modes) if modes is not None else tuple(ALL_MODES)
    classification = classify_program(
        case.ruleset, certified_confluent=case.certified_confluent
    )
    started = time.perf_counter()
    declarative = declarative_outcome(
        case.ruleset,
        case.database,
        case.statements,
        strata=classification.strata,
        max_firings=case.max_steps,
    )
    declarative_seconds = time.perf_counter() - started

    results: list[ModeResult] = []
    with tempfile.TemporaryDirectory() as wal_dir:
        for mode in modes:
            results.append(_run_mode(case, mode, wal_dir))

    divergences: list[dict] = []

    # 1. Mode agreement: one deterministic operational semantics.
    finished = [r for r in results if r.final is not None]
    if finished:
        reference = finished[0]
        for result in finished[1:]:
            if result.final != reference.final:
                divergences.append(
                    {
                        "kind": "mode-disagreement",
                        "mode": result.mode,
                        "detail": (
                            f"final differs from {reference.mode} "
                            f"({_digest(result.final)} vs "
                            f"{_digest(reference.final)})"
                        ),
                    }
                )

    # 2. Durability: recovered state equals the live final.
    for result in results:
        if result.recovered_matches is False:
            divergences.append(
                {
                    "kind": "recovery-mismatch",
                    "mode": result.mode,
                    "detail": "Database.recover(wal) differs from live final",
                }
            )

    # 3. The declarative contract.
    if declarative.status == "nonterminating":
        # Nothing to assert beyond consistency: operational modes should
        # also fail to quiesce within a comparable budget.
        for result in results:
            if result.status == "quiescent":
                divergences.append(
                    {
                        "kind": "termination-disagreement",
                        "mode": result.mode,
                        "detail": (
                            "mode quiesced but the declarative iteration "
                            f"exhausted {case.max_steps} firings"
                        ),
                    }
                )
    elif classification.confluent:
        for result in results:
            if result.final is None:
                divergences.append(
                    {
                        "kind": "termination-disagreement",
                        "mode": result.mode,
                        "detail": (
                            f"declarative outcome is {declarative.status} "
                            "but the mode exhausted its step budget"
                        ),
                    }
                )
            elif result.final != declarative.final:
                divergences.append(
                    {
                        "kind": "declarative-mismatch",
                        "mode": result.mode,
                        "detail": (
                            f"certified-confluent program: mode final "
                            f"{_digest(result.final)} != declarative "
                            f"{_digest(declarative.final)}"
                        ),
                    }
                )

    # 4. Containment (and, when certified, uniqueness) over explore().
    exploration = None
    if case.explore:
        exploration = _explore_case(
            case, declarative, explore_states, explore_depth, explore_paths
        )
        if exploration["contains_declarative"] is False:
            divergences.append(
                {
                    "kind": "containment-violation",
                    "mode": "explore",
                    "detail": (
                        "declarative final is not among the "
                        f"{exploration['distinct_finals']} reachable finals"
                    ),
                }
            )
        if (
            classification.confluent
            and not exploration["truncated"]
            and exploration["distinct_finals"] > 1
        ):
            divergences.append(
                {
                    "kind": "confluence-certificate-violation",
                    "mode": "explore",
                    "detail": (
                        f"{exploration['distinct_finals']} distinct reachable "
                        "finals despite a confluence certificate"
                    ),
                }
            )

    counterexample = None
    if divergences and minimize:
        counterexample = _minimize(case, divergences[0], modes)

    return CrosscheckReport(
        case=case.name,
        classification=classification,
        declarative=declarative,
        declarative_seconds=declarative_seconds,
        modes=results,
        divergences=divergences,
        exploration=exploration,
        counterexample=counterexample,
    )


def crosscheck(
    ruleset: RuleSet,
    database: Database,
    statements,
    *,
    name: str = "adhoc",
    certified_confluent: bool | None = None,
    modes: tuple[str, ...] | None = None,
    explore: bool = False,
    **kwargs,
) -> CrosscheckReport:
    """Differential-check one (ruleset, database, transition) triple."""
    case = CrosscheckCase(
        name=name,
        ruleset=ruleset,
        database=database,
        statements=list(statements),
        certified_confluent=certified_confluent,
        explore=explore,
    )
    return crosscheck_case(case, modes, **kwargs)


# ----------------------------------------------------------------------
# Counterexample minimization
# ----------------------------------------------------------------------


def _diverges(case: CrosscheckCase, statements: list, mode: str) -> bool:
    """Does *mode* still diverge from the declarative outcome on the
    reduced statement list? (Used only while shrinking a counterexample,
    so equality is the only question — containment violations shrink
    against the explore-backed check instead.)"""
    trial = CrosscheckCase(
        name=case.name,
        ruleset=case.ruleset,
        database=case.database,
        statements=statements,
        certified_confluent=True,  # equality is the property being shrunk
        explore=False,
        max_steps=case.max_steps,
    )
    report = crosscheck_case(trial, (mode,), minimize=False)
    return not report.passed


def _minimize(
    case: CrosscheckCase, divergence: dict, modes: tuple[str, ...]
) -> dict | None:
    """Greedy one-at-a-time shrink of the user transition.

    Keeps the divergent mode's disagreement reproducible while dropping
    every statement whose removal preserves it; quadratic in the
    statement count, which is fine for the tens-of-statements
    transitions the workloads use (the 10⁶-row cases drive a single
    multi-row INSERT, which is already minimal).
    """
    mode = divergence.get("mode")
    if mode not in ALL_MODES:
        mode = next(iter(modes), "planned-serial-memory")
    statements = list(case.statements)
    if not _diverges(case, statements, mode):
        # Not reproducible through the equality check (e.g. an
        # explore-only containment divergence): report unminimized.
        return {
            "mode": mode,
            "statements": case.statement_sources(),
            "minimized": False,
        }
    changed = True
    while changed and len(statements) > 1:
        changed = False
        for index in range(len(statements)):
            candidate = statements[:index] + statements[index + 1 :]
            if _diverges(case, candidate, mode):
                statements = candidate
                changed = True
                break

    trial = CrosscheckCase(
        name=case.name,
        ruleset=case.ruleset,
        database=case.database,
        statements=statements,
        certified_confluent=True,
        explore=False,
        max_steps=case.max_steps,
    )
    report = crosscheck_case(trial, (mode,), minimize=False)
    mode_result = report.modes[0]
    return {
        "mode": mode,
        "minimized": True,
        "statements": [
            s if isinstance(s, str) else str(s) for s in statements
        ],
        "declarative_firing_sequence": list(
            report.declarative.firing_sequence
        ),
        "declarative_final_digest": _digest(report.declarative.final),
        "mode_status": mode_result.status,
        "mode_final_digest": _digest(mode_result.final),
    }


# ----------------------------------------------------------------------
# The workload registry (shared by the CLI, the bench gate, and tests)
# ----------------------------------------------------------------------

_ZOO_EXCLUDED = ("storm", "spin")  # deliberately non-quiescent zoo rules


def case_names() -> tuple[str, ...]:
    """The registered workload names `build_case` accepts."""
    return (
        "powernet",
        "powernet_scaled",
        "termination_zoo",
        "streaming",
        "partitioned",
        "iot",
        "fraud",
    )


def build_case(
    name: str, *, rows: int | None = None, seed: int = 0
) -> CrosscheckCase:
    """Materialize a registered workload as a cross-checkable case.

    *rows* scales the instance (each workload's own default — 10⁶ for
    ``iot``/``fraud`` — applies when None); small fixed-size cases
    (``powernet``, ``termination_zoo``) ignore it and enable
    ``explore()`` so the containment leg of the contract runs too.
    """
    if name == "powernet":
        from repro.workloads.powernet import power_network_workload

        workload = power_network_workload(rows if rows else 3)
        return CrosscheckCase(
            name=name,
            ruleset=workload.ruleset,
            database=workload.database,
            statements=workload.overload_transition(),
            certified_confluent=None,
            explore=(rows or 3) <= 4,
        )
    if name == "powernet_scaled":
        from repro.workloads.powernet import scaled_power_network_workload

        workload = scaled_power_network_workload(rows if rows else 100_000)
        return CrosscheckCase(
            name=name,
            ruleset=workload.ruleset,
            database=workload.database,
            statements=workload.overload_transition(),
            certified_confluent=None,
        )
    if name == "termination_zoo":
        return _termination_zoo_case()
    if name == "streaming":
        from repro.workloads.streaming import streaming_workload

        workload = streaming_workload(rows=rows if rows else 10_000, seed=seed)
        # One ingestion transaction: the first batch (plus its hot-row
        # bump). Per-batch the cascade is confluent by construction —
        # alert rules fire once per (stream, region), escalation drains
        # its own counter deterministically.
        return CrosscheckCase(
            name=name,
            ruleset=workload.ruleset,
            database=workload.database,
            statements=list(workload.batches[0].statements),
            certified_confluent=True,
        )
    if name == "partitioned":
        from repro.workloads.partitioned import partitioned_workload

        workload = partitioned_workload(rows=rows if rows else 20_000, seed=seed)
        return CrosscheckCase(
            name=name,
            ruleset=workload.ruleset,
            database=workload.database,
            statements=workload.drain_transition(),
            certified_confluent=True,
        )
    if name == "iot":
        from repro.workloads.iot import iot_workload

        workload = (
            iot_workload(rows=rows, seed=seed) if rows else iot_workload(seed=seed)
        )
        return CrosscheckCase(
            name=name,
            ruleset=workload.ruleset,
            database=workload.database,
            statements=workload.ingest_transition(),
            certified_confluent=workload.certified_confluent,
        )
    if name == "fraud":
        from repro.workloads.fraud import fraud_workload

        workload = (
            fraud_workload(rows=rows, seed=seed)
            if rows
            else fraud_workload(seed=seed)
        )
        return CrosscheckCase(
            name=name,
            ruleset=workload.ruleset,
            database=workload.database,
            statements=workload.ingest_transition(),
            certified_confluent=workload.certified_confluent,
        )
    raise ValueError(
        f"unknown workload {name!r}; choose from {', '.join(case_names())}"
    )


def _termination_zoo_case() -> CrosscheckCase:
    """The examples/ zoo minus its deliberately non-quiescent rules."""
    # Lazy import: the CLI imports this module (lazily) for the
    # crosscheck subcommand; loading its file helpers here at import
    # time would close the cycle eagerly.
    from repro.cli import load_schema

    import repro

    src_dir = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    examples = os.path.join(os.path.dirname(src_dir), "examples")
    schema = load_schema(os.path.join(examples, "termination_zoo.schema"))
    with open(os.path.join(examples, "termination_zoo.rules")) as handle:
        rules_source = handle.read()
    full = RuleSet.parse(rules_source, schema)
    ruleset = full.subset(
        [name for name in full.names if name not in _ZOO_EXCLUDED]
    )

    database = Database(schema)
    database.load("dd", [(0,), (0,), (1,)])
    database.load("md", [(5,), (12,)])
    database.load("cd", [(1,)])
    statements = [
        "insert into t1 values (1)",
        "insert into sd values (3)",
        "insert into cd values (9)",
        "update md set level = level + 1 where level < 10",
        "delete from dd where k = 1",
    ]
    return CrosscheckCase(
        name="termination_zoo",
        ruleset=ruleset,
        database=database,
        statements=statements,
        certified_confluent=None,
        explore=True,
    )
