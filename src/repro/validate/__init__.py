"""Ground-truth validation: execution-graph oracle and soundness checks.

The paper's guarantees are one-directional ("guaranteed" vs "may not").
This package turns that into executable checks:

* :mod:`repro.validate.oracle` wraps the execution-graph explorer into
  per-instance verdicts (does *this* rule set on *this* database with
  *this* initial transition terminate / converge / emit one stream?);
* :mod:`repro.validate.soundness` compares static verdicts against
  oracle verdicts over many instances, asserting the conservative
  direction: a static "guaranteed" must never be contradicted;
* :mod:`repro.validate.execution_model` checks Lemma 4.1's edge
  properties on explored execution graphs.
"""

from repro.validate.oracle import OracleVerdict, oracle_verdict
from repro.validate.soundness import SoundnessReport, check_soundness
from repro.validate.execution_model import check_execution_edges
from repro.validate.faults import FaultPlan, SimulatedCrash

__all__ = [
    "OracleVerdict",
    "oracle_verdict",
    "SoundnessReport",
    "check_soundness",
    "check_execution_edges",
    "FaultPlan",
    "SimulatedCrash",
]
