"""The common work-counter protocol for runtime subsystems.

Three subsystems keep global or per-session work counters: the rule
processor (:class:`~repro.runtime.processor.ProcessorStats`), the query
planner (:class:`~repro.engine.plan.PlannerStats`), and the incremental
match network (:class:`~repro.engine.rete.ReteStats`). They used to be
three ad-hoc shapes — a dataclass, a ``__slots__`` class, and nothing —
each with its own hand-written ``to_dict``; the CLI's ``--stats``,
``--json`` and ``--profile`` surfaces special-cased every one.

:class:`StatsBase` is the shared shape: a counter class declares its
field names (``FIELDS``, all numeric, in report order) and which fields
are rounded floats (``SECONDS``); ``reset()``/``to_dict()`` come for
free and every consumer — benchmark gates, the CLI, tests — can treat
any stats object uniformly. :func:`render_stats` is the single
plain-text renderer behind ``--stats``.
"""

from __future__ import annotations

#: decimal places for wall-clock counters in to_dict()
_SECONDS_DIGITS = 6


class StatsBase:
    """A bag of numeric work counters with a uniform dict rendering.

    Subclasses declare ``FIELDS`` (report order) and optionally
    ``SECONDS`` (the subset holding float wall-clock accumulators,
    rounded to 6 digits by :meth:`to_dict`). All fields initialize to
    zero; :meth:`reset` zeroes them again.
    """

    #: counter names, in to_dict() order
    FIELDS: tuple[str, ...] = ()
    #: fields holding seconds (floats; rounded in to_dict())
    SECONDS: frozenset[str] = frozenset()

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        for name in self.FIELDS:
            setattr(self, name, 0.0 if name in self.SECONDS else 0)

    def to_dict(self) -> dict:
        """The counters as a JSON-ready dict (the ``Stats`` protocol)."""
        result: dict = {}
        for name in self.FIELDS:
            value = getattr(self, name)
            if name in self.SECONDS:
                value = round(value, _SECONDS_DIGITS)
            result[name] = value
        return result

    def snapshot(self) -> dict:
        """A point-in-time copy of the counters.

        Module-level singletons (``rete.STATS``, ``parallel.STATS``)
        accumulate across every session in the process; a driver that
        runs several sessions back to back and reports the raw counters
        attributes all prior work to the last run — or, worse, resets
        the singleton and silently zeroes counters another consumer was
        still accumulating. Instead, take a snapshot before the run and
        diff with :meth:`delta_since` after: the difference is exactly
        the run's own work, with no reset.
        """
        return self.to_dict()

    def delta_since(self, before: dict) -> dict:
        """The counter movement since *before* (a :meth:`snapshot`)."""
        return stats_delta(before, self.to_dict())


def stats_delta(before: dict, after: dict) -> dict:
    """Field-wise difference of two stats payloads.

    Nested dicts (e.g. ``ReteStats.fallback_reasons``) diff recursively;
    keys absent from *before* count from zero. Seconds stay floats
    (re-rounded so accumulated float error never leaks into reports).
    """
    result: dict = {}
    for name, value in after.items():
        if isinstance(value, dict):
            result[name] = stats_delta(before.get(name, {}), value)
        else:
            delta = value - before.get(name, 0)
            if isinstance(delta, float):
                delta = round(delta, _SECONDS_DIGITS)
            result[name] = delta
    return result


def render_stats(sections: dict[str, dict]) -> str:
    """Render named stats sections the way the CLI ``--stats`` flag does.

    *sections* maps a section title (e.g. ``"query planner"``) to a
    ``to_dict()`` payload. Nested dicts (the analysis engine's
    ``timings``) indent one level deeper.
    """
    lines: list[str] = []
    for title, data in sections.items():
        lines.append(f"\n== {title} stats ==")
        for key, value in data.items():
            if isinstance(value, dict):
                if value:
                    lines.append(f"  {key}:")
                    for sub_key, sub_value in value.items():
                        lines.append(f"    {sub_key}: {sub_value}")
            else:
                lines.append(f"  {key}: {value}")
    return "\n".join(lines)
