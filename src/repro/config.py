"""The unified execution configuration for runtime sessions.

Execution options used to be scattered keyword arguments —
``RuleProcessor(incremental=..., planner=..., durable=..., wal_path=...,
wal=...)``, ``execute_select(..., planner=False)``, ``Evaluator(...,
planner=False)`` — each surface naming its own subset.
:class:`ExecutionConfig` is the single entry point: one frozen value
object accepted (as ``config=``) by :class:`~repro.runtime.processor.RuleProcessor`,
:class:`~repro.engine.expressions.Evaluator`,
:func:`~repro.engine.query.execute_select`,
:func:`~repro.engine.dml.execute_statement`, and the CLI. The legacy
keywords keep working for one release behind a ``DeprecationWarning``
(see :func:`repro.analysis._deprecation.warn_legacy_kwargs`).

Fields:

* ``matching`` — how rule conditions are matched at consideration time:
  ``"planned"`` (compiled predicates over the planned executor, the
  default), ``"rete"`` (the incremental discrimination network of
  :mod:`repro.engine.rete`, with planned fallback for unsupported
  conditions), or ``"naive"`` (the tree-walking reference evaluator);
* ``planner`` — route statement/subquery SELECTs through the planned
  executor (:mod:`repro.engine.plan`) rather than the naive
  cross-product reference path;
* ``incremental`` — the processor's incremental triggering substrate
  (cached net effects, touch index, COW snapshots);
* ``durable`` — write-ahead logging; ``wal`` names the WAL (a path
  string) or supplies an open ``WalWriter``;
* ``profile`` — collect per-phase wall-clock timings where supported;
* ``scheduler`` — the rule-consideration loop: ``"serial"`` (one
  eligible rule per round, the default) or ``"parallel"`` (the
  commutativity-certified batch scheduler of
  :mod:`repro.runtime.parallel`, which runs provably-commuting eligible
  rules concurrently on copy-on-write forks and merges their net
  effects in a canonical order);
* ``partitions`` — hash-partition declared tables into this many
  shards (:meth:`repro.engine.storage.TableData.shard`), enabling
  partition pruning and per-shard fan-out of condition/action scans;
  ``1`` (the default) keeps the flat layout.

The legacy ``planner=False`` keyword historically selected the naive
path for *both* condition matching and statement execution, so it maps
to ``ExecutionConfig(matching="naive", planner=False)``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

#: the condition-matching modes `ExecutionConfig.matching` accepts
MATCHING_MODES = ("rete", "planned", "naive")

#: the rule-scheduling modes `ExecutionConfig.scheduler` accepts
SCHEDULER_MODES = ("serial", "parallel")

#: sentinel distinguishing "not passed" from every real value, so legacy
#: keyword defaults do not trigger deprecation warnings
_UNSET = object()


@dataclass(frozen=True)
class ExecutionConfig:
    """Immutable execution options for one runtime session."""

    matching: str = "planned"
    planner: bool = True
    incremental: bool = True
    durable: bool = False
    #: WAL path (str) or an open WalWriter; implies ``durable`` when set
    wal: object = None
    profile: bool = False
    scheduler: str = "serial"
    partitions: int = 1

    def __post_init__(self) -> None:
        if self.matching not in MATCHING_MODES:
            raise ValueError(
                f"matching must be one of {', '.join(MATCHING_MODES)}; "
                f"got {self.matching!r}"
            )
        if self.scheduler not in SCHEDULER_MODES:
            raise ValueError(
                f"scheduler must be one of {', '.join(SCHEDULER_MODES)}; "
                f"got {self.scheduler!r}"
            )
        if not isinstance(self.partitions, int) or self.partitions < 1:
            raise ValueError(
                f"partitions must be a positive int; got {self.partitions!r}"
            )

    def with_options(self, **changes) -> "ExecutionConfig":
        """A copy with *changes* applied (``dataclasses.replace``)."""
        return replace(self, **changes)

    @property
    def wants_wal(self) -> bool:
        """True when this config asks for durability in any form."""
        return self.durable or self.wal is not None


#: the default configuration every entry point falls back to
DEFAULT_CONFIG = ExecutionConfig()


#: the isolation levels `ServerOptions.isolation` accepts
ISOLATION_MODES = ("serializable", "snapshot")

#: the conflict-detection granularities `ServerOptions.granularity` accepts
GRANULARITY_MODES = ("column", "table")


@dataclass(frozen=True)
class ServerOptions:
    """Concurrency options for a :class:`~repro.runtime.server.RuleServer`.

    Orthogonal to :class:`ExecutionConfig` (which still governs how each
    session's own rule cascade executes — matching mode, planner,
    scheduler, durability of the *server's* log):

    * ``isolation`` — what first-committer-wins validation checks:
      ``"serializable"`` (the default) validates the session's reads
      *and* writes against commits since its snapshot, which is what
      makes the committed history replayable serially in commit order
      (the determinism oracle); ``"snapshot"`` validates writes only —
      classical snapshot isolation, admitting read skew but fewer
      aborts;
    * ``granularity`` — footprint resolution: ``"column"`` uses the
      attribute-level dataflow of PR 3 (insert/delete epochs per table,
      update epochs per column), ``"table"`` falls back to the coarse
      per-table touch index (`DeltaLog.last_write`);
    * ``group_commit`` — funnel durable commits through the
      :class:`~repro.engine.wal.GroupCommitWal` coalescer (``False``
      syncs every commit by itself on the same code path);
    * ``max_delay`` / ``max_batch`` — the coalescer's bounds: how long a
      commit may wait for company, and how much company it may keep;
    * ``max_retries`` — how many times :meth:`RuleServer.run_transaction`
      reopens a session after a :class:`~repro.errors.ConflictError`
      before giving up.
    """

    isolation: str = "serializable"
    granularity: str = "column"
    group_commit: bool = True
    max_delay: float = 0.002
    max_batch: int = 8
    max_retries: int = 16

    def __post_init__(self) -> None:
        if self.isolation not in ISOLATION_MODES:
            raise ValueError(
                f"isolation must be one of {', '.join(ISOLATION_MODES)}; "
                f"got {self.isolation!r}"
            )
        if self.granularity not in GRANULARITY_MODES:
            raise ValueError(
                f"granularity must be one of {', '.join(GRANULARITY_MODES)}; "
                f"got {self.granularity!r}"
            )
        if not isinstance(self.max_batch, int) or self.max_batch < 1:
            raise ValueError(
                f"max_batch must be a positive int; got {self.max_batch!r}"
            )
        if self.max_delay < 0:
            raise ValueError(
                f"max_delay must be >= 0; got {self.max_delay!r}"
            )
        if not isinstance(self.max_retries, int) or self.max_retries < 0:
            raise ValueError(
                f"max_retries must be a non-negative int; "
                f"got {self.max_retries!r}"
            )

    def with_options(self, **changes) -> "ServerOptions":
        """A copy with *changes* applied (``dataclasses.replace``)."""
        return replace(self, **changes)


#: the default server options
DEFAULT_SERVER_OPTIONS = ServerOptions()


def resolve_config(
    config: ExecutionConfig | None,
    api: str,
    *,
    incremental: object = _UNSET,
    planner: object = _UNSET,
    durable: object = _UNSET,
    wal_path: object = _UNSET,
    wal: object = _UNSET,
) -> ExecutionConfig:
    """Merge an explicit *config* with legacy keyword arguments.

    Exactly one style may be used per call: passing both ``config=`` and
    a legacy keyword raises ``ValueError`` (there is no sensible merge
    order). Legacy keywords emit one ``DeprecationWarning`` naming the
    replacement, then map onto a config:

    * ``planner=False`` selects the naive path throughout, so it becomes
      ``matching="naive", planner=False``;
    * ``durable=True``/``wal_path=``/``wal=`` become ``durable``/``wal``.
    """
    legacy = {
        name: value
        for name, value in (
            ("incremental", incremental),
            ("planner", planner),
            ("durable", durable),
            ("wal_path", wal_path),
            ("wal", wal),
        )
        if value is not _UNSET
    }
    if not legacy:
        return config if config is not None else DEFAULT_CONFIG
    if config is not None:
        raise ValueError(
            f"{api} accepts either config= or the legacy keyword(s) "
            f"{', '.join(sorted(legacy))}, not both"
        )

    # Imported lazily: repro.analysis's package init pulls in the
    # analysis stack, which itself imports the engine modules that call
    # this resolver at their own import time.
    from repro.analysis._deprecation import warn_legacy_kwargs

    warn_legacy_kwargs(api, sorted(legacy))

    changes: dict = {}
    if "incremental" in legacy:
        changes["incremental"] = bool(legacy["incremental"])
    if "planner" in legacy:
        use_planner = bool(legacy["planner"])
        changes["planner"] = use_planner
        changes["matching"] = "planned" if use_planner else "naive"
    if legacy.get("durable"):
        changes["durable"] = True
    if legacy.get("wal_path") is not None:
        changes["durable"] = True
        changes["wal"] = legacy["wal_path"]
    if legacy.get("wal") is not None:
        changes["durable"] = True
        changes["wal"] = legacy["wal"]
    return replace(DEFAULT_CONFIG, **changes)
