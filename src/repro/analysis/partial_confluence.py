"""Partial confluence — Section 7.

Confluence w.r.t. a table subset ``T'``: all final states agree on the
contents of the tables in ``T'`` (scratch tables may diverge).

Definition 7.1 computes the *significant* rules::

    Sig(T') ← {r ∈ R | (I,t), (D,t) or (U,t.c) ∈ Performs(r), t ∈ T'}
    repeat until unchanged:
        Sig(T') ← Sig(T') ∪ {r ∈ R | ∃ r' ∈ Sig(T'), r and r' do not commute}

Theorem 7.2: if the Confluence Requirement (Definition 6.5) holds for
the rules in ``Sig(T')`` and ``Sig(T')`` on its own is guaranteed to
terminate, then ``R`` is confluent with respect to ``T'``.

Commutativity here uses the same conservative Lemma 6.1 conditions (plus
user certifications), so certifying pairs shrinks ``Sig(T')`` — exactly
the user lever the paper describes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.analysis._deprecation import warn_direct_construction
from repro.analysis.commutativity import CommutativityAnalyzer
from repro.analysis.confluence import ConfluenceAnalysis, ConfluenceAnalyzer
from repro.analysis.derived import DerivedDefinitions
from repro.analysis.termination import TerminationAnalysis, TerminationAnalyzer
from repro.rules.priorities import PriorityRelation


def significant_rules(
    definitions: DerivedDefinitions,
    commutativity: CommutativityAnalyzer,
    tables: Iterable[str],
) -> frozenset[str]:
    """``Sig(T')`` per Definition 7.1."""
    wanted = {table.lower() for table in tables}
    significant: set[str] = {
        name
        for name in definitions.rule_names
        if any(event.table in wanted for event in definitions.performs(name))
    }
    changed = True
    while changed:
        changed = False
        for name in definitions.rule_names:
            if name in significant:
                continue
            if any(
                not commutativity.commute(name, member)
                for member in significant
            ):
                significant.add(name)
                changed = True
    return frozenset(significant)


@dataclass
class PartialConfluenceAnalysis:
    """Theorem 7.2's two obligations and the combined verdict."""

    tables: frozenset[str]
    significant: frozenset[str]
    termination: TerminationAnalysis
    confluence: ConfluenceAnalysis

    @property
    def confluent_with_respect_to_tables(self) -> bool:
        return self.confluence.requirement_holds and self.termination.guaranteed

    def describe(self) -> str:
        tables = ", ".join(sorted(self.tables))
        if self.confluent_with_respect_to_tables:
            return (
                f"confluent with respect to {{{tables}}} "
                f"(Sig = {{{', '.join(sorted(self.significant))}}})"
            )
        problems = []
        if not self.termination.guaranteed:
            problems.append("Sig may not terminate")
        if not self.confluence.requirement_holds:
            problems.append(
                f"{len(self.confluence.violations)} commutativity violations"
            )
        return (
            f"may not be confluent with respect to {{{tables}}}: "
            + "; ".join(problems)
        )


class PartialConfluenceAnalyzer:
    """Runs the Theorem 7.2 pipeline for a given ``T'``.

    .. deprecated::
        Construct analyses through :class:`repro.RuleAnalyzer` (or an
        :class:`~repro.analysis.engine.AnalysisEngine`) instead; this
        stand-alone path re-judges every pair on every call. When an
        *engine* is supplied, the Definition 6.5 confluence step over
        ``Sig(T')`` is served from the engine's memoized pair verdicts.
    """

    def __init__(
        self,
        definitions: DerivedDefinitions,
        priorities: PriorityRelation,
        commutativity: CommutativityAnalyzer | None = None,
        termination_analyzer: TerminationAnalyzer | None = None,
        *,
        engine=None,
        _internal: bool = False,
    ) -> None:
        if not _internal:
            warn_direct_construction("PartialConfluenceAnalyzer")
        self.definitions = definitions
        self.priorities = priorities
        self.commutativity = commutativity or CommutativityAnalyzer(definitions)
        self.termination_analyzer = termination_analyzer or TerminationAnalyzer(
            definitions
        )
        self.engine = engine

    def analyze(self, tables: Iterable[str]) -> PartialConfluenceAnalysis:
        wanted = frozenset(table.lower() for table in tables)
        significant = significant_rules(
            self.definitions, self.commutativity, wanted
        )

        termination = self._terminates_on_their_own(significant)

        if self.engine is not None:
            confluence = self.engine.analyze_confluence(universe=significant)
        else:
            confluence_analyzer = ConfluenceAnalyzer(
                self.definitions,
                self.priorities,
                self.commutativity,
                _internal=True,
            )
            confluence = confluence_analyzer.analyze(universe=significant)

        return PartialConfluenceAnalysis(
            tables=wanted,
            significant=significant,
            termination=termination,
            confluence=confluence,
        )

    def _terminates_on_their_own(
        self, significant: frozenset[str]
    ) -> TerminationAnalysis:
        """Termination of ``Sig(T')`` processed on its own (footnote 7):
        the triggering graph restricted to the significant rules, with
        the certifications already granted to the full-set analyzer."""
        full = self.termination_analyzer
        cyclic = [
            component
            for component in full.graph.cyclic_components()
            if component <= significant
        ]
        # Restrict the graph to significant rules and recompute.
        from repro.analysis.termination import TriggeringGraph

        reduced = TriggeringGraph.__new__(TriggeringGraph)
        reduced.definitions = self.definitions
        reduced.nodes = tuple(
            name for name in self.definitions.rule_names if name in significant
        )
        reduced.successors = {
            name: frozenset(
                successor
                for successor in self.definitions.triggers(name)
                if successor in significant
            )
            for name in reduced.nodes
        }
        cyclic = reduced.cyclic_components()
        certified = full.certified_rules
        uncertified = _components_minus_certified(reduced, certified)
        return TerminationAnalysis(
            guaranteed=not uncertified,
            cyclic_components=cyclic,
            uncertified_components=uncertified,
            certified_rules=certified,
            graph=reduced,
        )


def _components_minus_certified(graph, certified: frozenset[str]):
    from repro.analysis.termination import TriggeringGraph

    if not certified:
        return graph.cyclic_components()
    keep = tuple(node for node in graph.nodes if node not in certified)
    reduced = TriggeringGraph.__new__(TriggeringGraph)
    reduced.definitions = graph.definitions
    reduced.nodes = keep
    reduced.successors = {
        node: frozenset(
            successor
            for successor in graph.successors[node]
            if successor not in certified
        )
        for node in keep
    }
    return reduced.cyclic_components()
