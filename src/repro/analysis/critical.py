"""Critical-instance termination analysis and non-termination witnesses.

MFA-style acyclicity checks (and the restricted-chase non-termination
conditions of Gerlach/Carral, "Do Repeat Yourself") run the program
from a canonical *critical instance* — one row per table filled with a
fresh marked constant — and watch what the rules can derive. This
module adapts the idea to production rules:

* :class:`CriticalInstanceAnalyzer` runs an abstract saturation over a
  finite value lattice (the program's own literals plus the marked
  constant ``⋆``). Every table starts with one all-``⋆`` row; rule
  actions add abstract rows (assignments that do not fold go to
  ``⋆``); tables only grow (deletes are ignored — sound for the
  positive ``exists`` conditions rules use). Two firing regimes are
  tracked: *phase 0*, where the user's initial transition is arbitrary
  (transition slices are unconstrained), and the *tail*, where every
  transition row must come from some rule's own writes. A rule that
  cannot fire in the tail at the saturated fixpoint can act at most
  finitely often in any real run, so removing the tail-dead rules from
  a refined cycle certifies it (``critical-instance`` verdict).

* :func:`find_witness` searches for a *concrete* non-terminating run:
  it seeds a small instance with values straddling the program's
  comparison thresholds, replays user statements that trigger the
  cycle's rules, and either finds an exact state repetition in
  ``explore()`` (a proof — transitions are deterministic functions of
  the state) or a pumped period: a repeating rule sequence whose
  per-period state growth is constant and non-zero. Witnesses are only
  emitted after :func:`replay_witness` re-executes them successfully,
  so every RPL010 trace replays to a genuine loop.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.derived import DerivedDefinitions
from repro.analysis.stratification import (
    Discharge,
    substitute_columns,
    summarize_writes,
)
from repro.engine.database import Database
from repro.lang import ast
from repro.lint.folding import unsatisfiable
from repro.rules.events import TriggerEvent
from repro.runtime.exec_graph import explore
from repro.runtime.processor import RuleProcessor
from repro.schema.catalog import Schema, schema_from_spec

__all__ = [
    "STAR",
    "CriticalAnalysis",
    "CriticalInstanceAnalyzer",
    "Witness",
    "ReplayResult",
    "find_witness",
    "replay_witness",
    "schema_to_spec",
]


class _Star:
    """The marked constant: an unknown value covering every concrete one."""

    __slots__ = ()

    def __repr__(self) -> str:
        return "⋆"


STAR = _Star()


def schema_to_spec(schema: Schema) -> dict[str, list[str]]:
    """Serialize a schema to the ``schema_from_spec`` dict form."""
    return {
        table.name: [
            f"{name}:{table.column(name).type.value}"
            for name in table.column_names
        ]
        for table in schema
    }


# ----------------------------------------------------------------------
# Abstract saturation
# ----------------------------------------------------------------------

#: per-table abstract row budget before widening that table to ``⋆``
DEFAULT_ROW_CAP = 128
#: saturation round budget (each round sweeps every rule once)
DEFAULT_ROUND_CAP = 40


class _AbstractState:
    """Monotone abstract database + the tail transition slices."""

    def __init__(self, schema: Schema, row_cap: int) -> None:
        self.schema = schema
        self.row_cap = row_cap
        self.columns = {
            table.name: table.column_names for table in schema
        }
        # the critical instance: one all-⋆ row per table
        self.tables: dict[str, set[tuple]] = {
            name: {tuple(STAR for _ in cols)}
            for name, cols in self.columns.items()
        }
        #: net inserted rows written by rules (the tail ``inserted`` slice)
        self.inserted: dict[str, set[tuple]] = {}
        #: post-images of rule updates (the tail ``new_updated`` slice)
        self.updated_posts: dict[str, set[tuple]] = {}
        #: events rule actions have performed
        self.events: set[TriggerEvent] = set()
        #: tables/slices widened to ⋆ after exceeding the row budget
        self.widened: set[tuple[str, str]] = set()

    def fingerprint(self) -> tuple:
        return (
            tuple(len(self.tables[t]) for t in sorted(self.tables)),
            tuple(sorted((t, len(r)) for t, r in self.inserted.items())),
            tuple(sorted((t, len(r)) for t, r in self.updated_posts.items())),
            len(self.events),
            tuple(sorted(self.widened)),
        )

    def _add(self, store: dict[str, set[tuple]], kind: str, table: str, row):
        if (table, kind) in self.widened:
            return
        rows = store.setdefault(table, set())
        rows.add(row)
        if len(rows) > self.row_cap:
            # widen: a single all-⋆ row covers everything
            store[table] = {tuple(STAR for _ in self.columns[table])}
            self.widened.add((table, kind))

    def add_table_row(self, table: str, row: tuple) -> None:
        self._add(self.tables, "table", table, row)

    def add_inserted(self, table: str, row: tuple) -> None:
        self._add(self.inserted, "inserted", table, row)

    def add_updated_post(self, table: str, row: tuple) -> None:
        self._add(self.updated_posts, "new_updated", table, row)


@dataclass
class CriticalAnalysis:
    """Saturation outcome: which rules can still fire in the tail."""

    #: rules that can fire at all from the critical instance
    fired: frozenset[str]
    #: rules that can fire in the tail (triggered by, and satisfied by,
    #: writes of tail-live rules only) — the greatest such fixpoint
    tail_live: frozenset[str]
    #: some table/slice exceeded the row budget and was widened to ⋆
    widened: bool
    rounds: int = 0

    def certify_component(
        self, component, stratification, analyzer
    ) -> Discharge | None:
        """Discharge a cyclic component by removing tail-dead rules
        (they act finitely often) and finishing with the stratified
        fixpoint on whatever remains."""
        members = frozenset(component)
        dead = members - self.tail_live
        if not dead:
            return None
        remaining = members - dead
        sub = stratification.refined.restricted_to(remaining)
        if not sub.cyclic_components():
            return Discharge(
                dead,
                "tail-dead under critical-instance saturation: "
                + ", ".join(sorted(dead)),
            )
        follow_up = stratification.certify_component(remaining, analyzer)
        if follow_up is not None:
            return Discharge(
                dead | follow_up.rules,
                "tail-dead rules "
                + ", ".join(sorted(dead))
                + " + "
                + follow_up.detail,
            )
        return None


class CriticalInstanceAnalyzer:
    """Abstract saturation from the critical instance."""

    def __init__(
        self,
        ruleset,
        definitions: DerivedDefinitions | None = None,
        *,
        row_cap: int = DEFAULT_ROW_CAP,
        round_cap: int = DEFAULT_ROUND_CAP,
    ) -> None:
        self.ruleset = ruleset
        self.definitions = definitions or DerivedDefinitions(ruleset)
        self.row_cap = row_cap
        self.round_cap = round_cap
        self._summaries = {
            rule.name: summarize_writes(rule) for rule in ruleset
        }
        self._unsat = {
            rule.name: (
                rule.condition is not None
                and unsatisfiable(rule.condition) is not None
            )
            for rule in ruleset
        }

    # ------------------------------------------------------------------

    def analyze(self) -> CriticalAnalysis:
        state = _AbstractState(self.ruleset.schema, self.row_cap)
        fired: set[str] = set()
        rounds = 0
        for rounds in range(1, self.round_cap + 1):
            before = state.fingerprint()
            grew = False
            for rule in self.ruleset:
                if self._unsat[rule.name]:
                    continue
                can_fire = self._possibly_true(
                    rule, rule.condition, state, tail=False
                ) or self._tail_fireable(rule, state)
                if can_fire:
                    if rule.name not in fired:
                        fired.add(rule.name)
                        grew = True
                    self._apply_actions(rule, state)
            if state.fingerprint() == before and not grew:
                break

        # Greatest fixpoint: a rule is tail-live only when its triggers
        # and its condition can be sustained by tail-live rules' writes.
        live = {name for name in fired if self._tail_fireable(
            self.ruleset.rule(name), state
        )}
        while True:
            events: set[TriggerEvent] = set()
            for name in live:
                events |= self._summaries[name].events
            next_live = {
                name
                for name in live
                if self.ruleset.rule(name).triggered_by & events
            }
            if next_live == live:
                break
            live = next_live

        return CriticalAnalysis(
            fired=frozenset(fired),
            tail_live=frozenset(live),
            widened=bool(state.widened),
            rounds=rounds,
        )

    # ------------------------------------------------------------------
    # Abstract firing
    # ------------------------------------------------------------------

    def _tail_fireable(self, rule, state: _AbstractState) -> bool:
        if self._unsat[rule.name]:
            return False
        if not (rule.triggered_by & state.events):
            return False
        return self._possibly_true(rule, rule.condition, state, tail=True)

    def _possibly_true(self, rule, expr, state, *, tail: bool) -> bool:
        """Over-approximate satisfiability of *expr* at consideration
        time: True unless provably false in the abstraction."""
        if expr is None:
            return True
        if isinstance(expr, ast.BinaryOp) and expr.op == "and":
            return self._possibly_true(
                rule, expr.left, state, tail=tail
            ) and self._possibly_true(rule, expr.right, state, tail=tail)
        if isinstance(expr, ast.BinaryOp) and expr.op == "or":
            return self._possibly_true(
                rule, expr.left, state, tail=tail
            ) or self._possibly_true(rule, expr.right, state, tail=tail)
        if isinstance(expr, ast.Exists) and not expr.negated:
            return self._exists_possibly(rule, expr.subquery, state, tail)
        if isinstance(expr, (ast.Exists, ast.UnaryOp)):
            return True  # negations: no definite-falsity tracking
        # leaf comparison: the folding/interval engine decides
        return unsatisfiable(expr) is None

    def _slice_rows(self, rule, kind: str, state, tail: bool):
        """Abstract rows of a transition slice; ``None`` means TOP
        (unknown contents, e.g. the arbitrary user transition)."""
        table = rule.table
        if not tail:
            return None
        if kind == "inserted":
            if (table, "inserted") in state.widened:
                return None
            return state.inserted.get(table, set())
        if kind == "new_updated":
            if (table, "new_updated") in state.widened:
                return None
            return state.updated_posts.get(table, set())
        if kind == "old_updated":
            if any(
                event.kind == "U" and event.table == table
                for event in state.events
            ):
                return state.tables.get(table, set())
            return set()
        # deleted: pre-images of rule deletes — any current table row
        if any(
            event.kind == "D" and event.table == table
            for event in state.events
        ):
            return state.tables.get(table, set())
        return set()

    def _exists_possibly(self, rule, select, state, tail: bool) -> bool:
        if not select.is_star:
            for item in select.items:
                if any(
                    isinstance(node, ast.FuncCall)
                    for node in ast.walk_expression(item.expr)
                ):
                    # an ungrouped aggregate yields a row even over an
                    # empty source, so the empty-source shortcut and
                    # row refutation below would both be unsound
                    return True
        sources = []
        for table_ref in select.tables:
            name = table_ref.name.lower()
            if name in ast.TRANSITION_TABLE_NAMES:
                rows = self._slice_rows(rule, name, state, tail)
                columns = state.columns[rule.table]
            else:
                if (name, "table") in state.widened:
                    rows = None
                else:
                    rows = state.tables.get(name, set())
                columns = state.columns.get(name, ())
            if rows is not None and not rows:
                return False  # an empty source empties the product
            sources.append((table_ref, rows, columns))
        if select.where is None or select.group_by or select.having:
            return True
        if len(sources) != 1:
            return True  # joins: no row-level refutation attempted
        table_ref, rows, columns = sources[0]
        if rows is None:
            return True
        binding = table_ref.binding_name.lower()
        for row in rows:
            values = {
                column: value
                for column, value in zip(columns, row)
                if not isinstance(value, _Star)
            }
            substituted = substitute_columns(select.where, values, binding)
            if substituted is None:
                return True
            if unsatisfiable(substituted) is None:
                return True  # this row may satisfy W
        return False

    def _apply_actions(self, rule, state: _AbstractState) -> None:
        update_index: dict[str, int] = {}
        for action in rule.actions:
            if isinstance(action, ast.Insert):
                table = action.table.lower()
                state.events.add(TriggerEvent.insert(table))
                columns = state.columns[table]
                if action.query is not None:
                    row = tuple(STAR for _ in columns)
                    state.add_table_row(table, row)
                    state.add_inserted(table, row)
                    continue
                summary = self._summaries[rule.name]
                for values in summary.insert_rows.get(table, ()):
                    row = tuple(
                        values.get(column, STAR) for column in columns
                    )
                    state.add_table_row(table, row)
                    state.add_inserted(table, row)
            elif isinstance(action, ast.Delete):
                if action.where is not None and unsatisfiable(action.where):
                    continue
                state.events.add(TriggerEvent.delete(action.table))
                # tables never shrink in the abstraction
            elif isinstance(action, ast.Update):
                if action.where is not None and unsatisfiable(action.where):
                    continue
                table = action.table.lower()
                columns = state.columns[table]
                assigned = {}
                for assignment in action.assignments:
                    state.events.add(
                        TriggerEvent.update(table, assignment.column)
                    )
                    assigned[assignment.column.lower()] = None
                summary = self._summaries[rule.name]
                literal_sets = summary.update_assignments.get(table, ())
                # summaries list one entry per live update action on the
                # table, in action order — pair them up by index
                position = update_index.get(table, 0)
                update_index[table] = position + 1
                literals = (
                    literal_sets[position]
                    if position < len(literal_sets)
                    else {}
                )
                post_of = lambda row: tuple(
                    literals.get(column, STAR)
                    if column in assigned
                    else value
                    for column, value in zip(columns, row)
                )
                for row in list(state.tables.get(table, ())):
                    post = post_of(row)
                    state.add_table_row(table, post)
                    state.add_updated_post(table, post)
                # pending writes can be updated before the reader's
                # consideration: fold the variants into the slices
                for row in list(state.inserted.get(table, ())):
                    state.add_inserted(table, post_of(row))
                for row in list(state.updated_posts.get(table, ())):
                    state.add_updated_post(table, post_of(row))


# ----------------------------------------------------------------------
# Non-termination witnesses
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class Witness:
    """A replayable non-terminating run.

    ``kind`` is ``"state-cycle"`` (replaying ``prefix`` then ``cycle``
    returns to an identical processor state — a proof of
    non-termination, since transitions are deterministic) or
    ``"pumped-growth"`` (the ``cycle`` rule sequence repeats with a
    constant non-zero state-growth per period — a strong sufficient
    condition, validated by replay).
    """

    kind: str
    component: tuple[str, ...]
    schema_spec: dict[str, list[str]]
    statements: tuple[str, ...]
    prefix: tuple[str, ...]
    cycle: tuple[str, ...]
    detail: str = ""
    rules_source: str | None = None

    @property
    def trace(self) -> tuple[str, ...]:
        return self.prefix + self.cycle

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "component": list(self.component),
            "schema": {
                table: list(columns)
                for table, columns in self.schema_spec.items()
            },
            "statements": list(self.statements),
            "prefix": list(self.prefix),
            "cycle": list(self.cycle),
            "detail": self.detail,
            "rules_source": self.rules_source,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "Witness":
        return cls(
            kind=payload["kind"],
            component=tuple(payload.get("component", ())),
            schema_spec={
                table: list(columns)
                for table, columns in payload["schema"].items()
            },
            statements=tuple(payload["statements"]),
            prefix=tuple(payload["prefix"]),
            cycle=tuple(payload["cycle"]),
            detail=payload.get("detail", ""),
            rules_source=payload.get("rules_source"),
        )


@dataclass(frozen=True)
class ReplayResult:
    valid: bool
    reason: str
    steps: int = 0


def _render_value(value) -> str:
    if isinstance(value, str):
        escaped = value.replace("'", "''")
        return f"'{escaped}'"
    return str(value)


def _measure(database: Database) -> tuple[int, int]:
    """(total rows, total numeric mass) — strictly grows under pumping."""
    rows_total = 0
    mass = 0
    for table in database.schema:
        rows = database.rows(table.name)
        rows_total += len(rows)
        for row in rows:
            for value in row.values:
                if isinstance(value, bool) or not isinstance(
                    value, (int, float)
                ):
                    continue
                mass += int(value)
    return rows_total, mass


def _candidate_values(ruleset) -> dict[str, list]:
    """Per-column seed values straddling the program's comparison
    thresholds (k-1, k, k+1 for every literal k compared against the
    column) plus the literals the program inserts."""
    per_column: dict[str, set] = {}

    def note(column: str, value) -> None:
        bucket = per_column.setdefault(column.lower(), set())
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            if isinstance(value, str):
                bucket.add(value)
            return
        value = int(value)
        bucket.update((value - 1, value, value + 1))

    def scan_expression(expr) -> None:
        for node in ast.walk_expression(expr):
            if isinstance(node, ast.BinaryOp) and node.op in (
                "=", "<>", "!=", "<", "<=", ">", ">=",
            ):
                left, right = node.left, node.right
                if isinstance(left, ast.ColumnRef) and isinstance(
                    right, ast.Literal
                ):
                    note(left.column, right.value)
                elif isinstance(right, ast.ColumnRef) and isinstance(
                    left, ast.Literal
                ):
                    note(right.column, left.value)
            elif isinstance(node, (ast.Exists, ast.InSubquery)):
                select = node.subquery
                if select.where is not None:
                    scan_expression(select.where)
            elif isinstance(node, ast.ScalarSubquery):
                if node.subquery.where is not None:
                    scan_expression(node.subquery.where)

    for rule in ruleset:
        if rule.condition is not None:
            scan_expression(rule.condition)
        for action in rule.actions:
            where = getattr(action, "where", None)
            if where is not None:
                scan_expression(where)
            if isinstance(action, ast.Insert) and action.query is None:
                columns = rule.schema.table(action.table).column_names
                for row in action.rows:
                    for column, expr in zip(columns, row):
                        if isinstance(expr, ast.Literal):
                            note(column, expr.value)
    return {
        column: sorted(values, key=lambda v: (isinstance(v, str), str(v)))
        for column, values in per_column.items()
    }


def _seed_statements(ruleset, component, rows_per_table: int) -> list[str]:
    """User statements that seed candidate rows and trigger every rule
    of the component at the initial transition."""
    candidates = _candidate_values(ruleset)
    schema = ruleset.schema
    tables = sorted({ruleset.rule(name).table for name in component})
    statements: list[str] = []

    def row_values(table: str, index: int) -> list:
        values = []
        for column in schema.table(table).column_names:
            pool = candidates.get(column.lower()) or [0, 1]
            column_type = schema.table(table).column(column).type.value
            typed = [
                v
                for v in pool
                if (isinstance(v, str)) == (column_type == "string")
            ]
            if not typed:
                typed = ["x"] if column_type == "string" else [0, 1]
            values.append(typed[index % len(typed)])
        return values

    for table in tables:
        for index in range(rows_per_table):
            rendered = ", ".join(
                _render_value(v) for v in row_values(table, index)
            )
            statements.append(f"insert into {table} values ({rendered})")

    for name in sorted(component):
        rule = ruleset.rule(name)
        kinds = {event.kind for event in rule.triggered_by}
        table = rule.table
        columns = schema.table(table).column_names
        if "U" in kinds:
            column = next(
                (
                    event.column
                    for event in sorted(rule.triggered_by)
                    if event.kind == "U"
                ),
                columns[0],
            )
            statements.append(f"update {table} set {column} = {column}")
        if "D" in kinds:
            values = row_values(table, 0)
            rendered = ", ".join(_render_value(v) for v in values)
            statements.append(f"insert into {table} values ({rendered})")
            statements.append(
                f"delete from {table} where {columns[0]} = "
                + _render_value(values[0])
            )
    return statements


def _build_processor(
    ruleset, statements, max_steps: int
) -> RuleProcessor:
    database = Database(ruleset.schema)
    processor = RuleProcessor(ruleset, database, max_steps=max_steps)
    for statement in statements:
        processor.execute_user(statement)
    return processor


def _follow(processor: RuleProcessor, labels) -> bool:
    """Drive *processor* along a recorded rule sequence; False when the
    trace deviates (a rule is not eligible where the recording said)."""
    for label in labels:
        eligible = processor.eligible_rules()
        if label not in eligible:
            return False
        processor.consider(label, eligible=eligible)
    return True


def find_witness(
    ruleset,
    component,
    *,
    rules_source: str | None = None,
    max_states: int = 400,
    max_steps: int = 300,
    max_period: int = 24,
) -> Witness | None:
    """Search for a replay-validated non-termination witness for a
    cyclic component. Returns ``None`` when no sufficient condition
    fires within the budgets (which proves nothing — see DESIGN.md)."""
    members = frozenset(component)
    if rules_source is None:
        rules_source = ruleset.source()
    schema_spec = schema_to_spec(ruleset.schema)

    for rows_per_table in (1, 2):
        try:
            statements = _seed_statements(ruleset, members, rows_per_table)
            probe = _build_processor(ruleset, statements, max_steps)
        except Exception:
            return None

        # 1) exact state repetition in the (deduplicated) state graph —
        # a proof, since consideration is a deterministic transition.
        graph = explore(
            probe,
            max_states=max_states,
            max_depth=max_steps,
            max_paths=1,
        )
        if graph.has_cycle:
            path = graph.looping_path()
            if path is not None:
                prefix, cycle = path
                witness = Witness(
                    kind="state-cycle",
                    component=tuple(sorted(members)),
                    schema_spec=schema_spec,
                    statements=tuple(statements),
                    prefix=prefix,
                    cycle=cycle,
                    detail=(
                        "state repeats after "
                        + " → ".join(cycle)
                        + f" (prefix of {len(prefix)} considerations)"
                    ),
                    rules_source=rules_source,
                )
                if replay_witness(witness, ruleset=ruleset).valid:
                    return witness
        if graph.terminates:
            continue  # this seeding quiesces everywhere; try a richer one

        # 2) pumped growth along the deterministic first-eligible order.
        witness = _pumped_witness(
            ruleset,
            members,
            statements,
            schema_spec,
            rules_source,
            max_steps=max_steps,
            max_period=max_period,
        )
        if witness is not None:
            return witness
    return None


def _pumped_witness(
    ruleset,
    members,
    statements,
    schema_spec,
    rules_source,
    *,
    max_steps: int,
    max_period: int,
) -> Witness | None:
    processor = _build_processor(ruleset, statements, max_steps * 2)
    labels: list[str] = []
    measures: list[tuple[int, int]] = []
    for _ in range(max_steps):
        eligible = processor.eligible_rules()
        if not eligible:
            return None  # quiesced: nothing to pump
        label = eligible[0]
        processor.consider(label, eligible=eligible)
        labels.append(label)
        measures.append(_measure(processor.database))

    for period in range(1, max_period + 1):
        if len(labels) < 3 * period:
            break
        window = labels[-period:]
        if (
            labels[-2 * period : -period] != window
            or labels[-3 * period : -2 * period] != window
        ):
            continue
        last, mid, first = (
            measures[-1],
            measures[-1 - period],
            measures[-1 - 2 * period],
        )
        delta = (last[0] - mid[0], last[1] - mid[1])
        if delta == (0, 0) or (mid[0] - first[0], mid[1] - first[1]) != delta:
            continue
        # Shrink the prefix to the earliest point the label sequence
        # turns periodic — a 300-step probe run makes an unreadable
        # trace. Replay-validation guards the shrink: early rounds may
        # pump a different (warm-up) delta, in which case fall back to
        # the full probe prefix, which validated the detection above.
        start = len(labels) - period
        while start > 0 and labels[start - 1] == labels[start - 1 + period]:
            start -= 1
        detail = (
            f"period {period} pump "
            + " → ".join(window)
            + f" grows state by {delta} per round"
        )
        for prefix_end in dict.fromkeys((start, len(labels) - period)):
            witness = Witness(
                kind="pumped-growth",
                component=tuple(sorted(members)),
                schema_spec=schema_spec,
                statements=tuple(statements),
                prefix=tuple(labels[:prefix_end]),
                cycle=tuple(labels[prefix_end : prefix_end + period]),
                detail=detail,
                rules_source=rules_source,
            )
            if replay_witness(witness, ruleset=ruleset).valid:
                return witness
    return None


def replay_witness(
    witness: Witness,
    *,
    ruleset=None,
    periods: int = 4,
) -> ReplayResult:
    """Re-execute a witness and check it actually loops.

    ``state-cycle``: after the prefix, one traversal of the cycle must
    return to a state with an identical state key — then the run is
    periodic forever. ``pumped-growth``: *periods* further traversals
    must each stay eligible and grow the measure by the same non-zero
    delta.
    """
    if ruleset is None:
        if witness.rules_source is None:
            return ReplayResult(
                False, "witness embeds no rules and none were supplied"
            )
        from repro.rules.ruleset import RuleSet

        schema = schema_from_spec(witness.schema_spec)
        ruleset = RuleSet.parse(witness.rules_source, schema)

    budget = len(witness.prefix) + len(witness.cycle) * (periods + 1) + 10
    try:
        processor = _build_processor(
            ruleset, witness.statements, max_steps=budget
        )
    except Exception as error:
        return ReplayResult(False, f"setup failed: {error}")

    steps = 0
    if not _follow(processor, witness.prefix):
        return ReplayResult(False, "prefix deviates", steps)
    steps += len(witness.prefix)

    if witness.kind == "state-cycle":
        anchor = processor.state_key()
        if not _follow(processor, witness.cycle):
            return ReplayResult(False, "cycle deviates", steps)
        steps += len(witness.cycle)
        if processor.state_key() != anchor:
            return ReplayResult(
                False, "state does not repeat after the cycle", steps
            )
        return ReplayResult(
            True,
            f"state repeats every {len(witness.cycle)} considerations",
            steps,
        )

    # pumped-growth
    previous = _measure(processor.database)
    delta: tuple[int, int] | None = None
    for _ in range(periods):
        if not _follow(processor, witness.cycle):
            return ReplayResult(False, "pump deviates", steps)
        steps += len(witness.cycle)
        current = _measure(processor.database)
        step_delta = (
            current[0] - previous[0],
            current[1] - previous[1],
        )
        if step_delta == (0, 0):
            return ReplayResult(False, "pump stops growing", steps)
        if delta is not None and step_delta != delta:
            return ReplayResult(False, "pump growth is not constant", steps)
        delta = step_delta
        previous = current
    return ReplayResult(
        True,
        f"{periods} extra pump rounds each grow state by {delta}",
        steps,
    )
