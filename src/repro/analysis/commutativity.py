"""Rule commutativity analysis — Lemma 6.1.

Two rules ``ri`` and ``rj`` commute when considering them in either
order from any execution-graph state produces the same state (Figure 1).
Lemma 6.1 gives conservative syntactic conditions under which a pair
*may be noncommutative*; a pair hitting none of them is guaranteed to
commute:

1. ``rj ∈ Triggers(ri)`` — ri can cause rj to become triggered;
2. ``rj ∈ Can-Untrigger(Performs(ri))`` — ri can untrigger rj;
3. ri's operations can affect what rj reads;
4. ri's insertions can affect what rj updates or deletes (same table);
5. ri's updates can affect rj's updates (same column);
6. any of 1–5 with ri and rj reversed.

The analyzer also holds *user certifications* (Section 6.1): pairs the
user has declared to actually commute despite appearing noncommutative
(e.g. the paper's two examples — insert never satisfying the delete
condition; updates of disjoint tuple sets).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.derived import DerivedDefinitions
from repro.engine.expressions import Evaluator, RowContext
from repro.engine.values import sql_is_truthy
from repro.errors import ReproError
from repro.lang import ast


@dataclass(frozen=True)
class NoncommutativityReason:
    """Why a pair may be noncommutative.

    ``condition`` is the Lemma 6.1 condition number (1–5); ``first`` and
    ``second`` identify the direction in which it fired (``first`` plays
    ri, ``second`` plays rj). ``detail`` is a human-readable witness.
    """

    condition: int
    first: str
    second: str
    detail: str

    def __str__(self) -> str:
        return (
            f"condition {self.condition} ({self.first} vs {self.second}): "
            f"{self.detail}"
        )


class CommutativityAnalyzer:
    """Lemma 6.1 over a rule set's derived definitions, with certifications.

    ``granularity`` is an ablation knob: ``"column"`` (the paper's
    conditions — updates interfere per column) or ``"table"`` (a coarser
    variant where any update to a table conflicts with any read of or
    update to that table). The benchmarks use the table mode to quantify
    how much precision the paper's column-level ``(U, t.c)`` events buy.

    ``refine`` enables the "less conservative methods" the paper lists
    as future work ("more complex analysis of SQL ... a suite of
    special cases"). Both of Lemma 6.1's "actually commute" examples
    are discharged automatically:

    * **example 1** — when ``ri`` only inserts literal rows and ``rj``'s
      delete/update predicate over that table provably rejects every
      one of those rows, conditions 3/4 do not fire (sound because the
      predicate is *closed* — only the target table's columns, no
      subqueries — so its value on the inserted rows is
      state-independent);
    * **example 2** — when both rules' updates of a shared table carry
      closed WHERE clauses pinning a common discriminator column to
      different literals (and neither assigns that column, nor touches
      the table any other way), their row sets are fixed and disjoint,
      so conditions 3/5 do not fire for that table.

    ``column_dataflow`` swaps condition 3's read sets for the
    attribute-level footprints of :mod:`repro.analysis.dataflow`: update
    events are tested against the value-sensitive ``ColumnReads`` (so
    an ``exists (select * from t ...)`` no longer conflicts with updates
    of ``t``'s unexamined columns) while insert/delete events are tested
    against ``ColumnReads``' tables ∪ ``RowReadTables`` (so existence
    reads still see row insertion/removal). Strictly pruning relative to
    the default, and composable with ``refine``. Requires
    ``granularity="column"``.
    """

    def __init__(
        self,
        definitions: DerivedDefinitions,
        granularity: str = "column",
        refine: bool = False,
        *,
        column_dataflow: bool = False,
        cache: dict[frozenset[str], tuple[NoncommutativityReason, ...]]
        | None = None,
        stats=None,
        on_certification=None,
    ) -> None:
        if granularity not in ("column", "table"):
            raise ValueError("granularity must be 'column' or 'table'")
        if column_dataflow and granularity != "column":
            raise ValueError(
                "column_dataflow requires granularity='column' (the "
                "dataflow pass refines the column-level conditions)"
            )
        self.definitions = definitions
        self.granularity = granularity
        self.refine = refine
        self.column_dataflow = column_dataflow
        self._certified: set[frozenset[str]] = set()
        #: raw Lemma 6.1 verdict memo; injectable so an engine (and its
        #: restricted sub-engines) can share one content-addressed store
        self._cache = cache if cache is not None else {}
        #: optional EngineStats-like object with ``lemma_judgments`` /
        #: ``lemma_memo_hits`` counters
        self._stats = stats
        #: optional hook ``(pair, added)`` fired on certify/revoke so an
        #: engine can invalidate dependent pair verdicts even when the
        #: certification is made directly on this object
        self._on_certification = on_certification

    # ------------------------------------------------------------------
    # Certification (the user-interaction hook of Section 6.1)
    # ------------------------------------------------------------------

    def certify_commutes(self, first: str, second: str) -> None:
        """Declare that *first* and *second* actually commute."""
        pair = frozenset({first.lower(), second.lower()})
        if len(pair) != 2:
            return  # every rule commutes with itself already
        if pair not in self._certified:
            self._certified.add(pair)
            if self._on_certification is not None:
                self._on_certification(pair, True)

    def revoke_certification(self, first: str, second: str) -> bool:
        pair = frozenset({first.lower(), second.lower()})
        if pair in self._certified:
            self._certified.discard(pair)
            if self._on_certification is not None:
                self._on_certification(pair, False)
            return True
        return False

    @property
    def certified_pairs(self) -> frozenset[frozenset[str]]:
        return frozenset(self._certified)

    # ------------------------------------------------------------------
    # The commutativity judgment
    # ------------------------------------------------------------------

    def commute(self, first: str, second: str) -> bool:
        """True iff the pair is guaranteed (or certified) to commute."""
        first = first.lower()
        second = second.lower()
        if first == second:
            return True  # "Each rule clearly commutes with itself."
        if frozenset({first, second}) in self._certified:
            return True
        return not self.noncommutativity_reasons(first, second)

    def noncommutativity_reasons(
        self, first: str, second: str
    ) -> tuple[NoncommutativityReason, ...]:
        """All Lemma 6.1 conditions that fire for the pair (both
        directions); empty means guaranteed commutative. Certifications
        are *not* applied here — this reports the raw syntactic analysis.

        The memoized tuple is always oriented to the sorted pair, so the
        result is independent of which direction asked first (and of the
        serial/parallel judging path).
        """
        first = first.lower()
        second = second.lower()
        if first == second:
            return ()
        key = frozenset({first, second})
        cached = self._cache.get(key)
        if cached is None:
            cached = self.compute_reasons(*sorted((first, second)))
            self._cache[key] = cached
            if self._stats is not None:
                self._stats.lemma_judgments += 1
        elif self._stats is not None:
            self._stats.lemma_memo_hits += 1
        return cached

    def compute_reasons(
        self, first: str, second: str
    ) -> tuple[NoncommutativityReason, ...]:
        """The raw Lemma 6.1 judgment, bypassing (and not touching) the
        memo — safe to call from parallel workers; everything it reads
        (definitions, rule ASTs, schema) is immutable."""
        first = first.lower()
        second = second.lower()
        return tuple(
            list(self._directed_reasons(first, second))
            + list(self._directed_reasons(second, first))
        )

    def is_cached(self, first: str, second: str) -> bool:
        return frozenset({first.lower(), second.lower()}) in self._cache

    def store_reasons(
        self,
        first: str,
        second: str,
        reasons: tuple[NoncommutativityReason, ...],
    ) -> None:
        """Install a judgment computed out-of-band (e.g. by a parallel
        worker) into the memo, counting it as one judgment."""
        self._cache[frozenset({first.lower(), second.lower()})] = reasons
        if self._stats is not None:
            self._stats.lemma_judgments += 1

    def invalidate_rules(self, names) -> int:
        """Drop every memoized judgment touching *names* (rule edits);
        returns the number of entries dropped."""
        wanted = {name.lower() for name in names}
        stale = [pair for pair in self._cache if pair & wanted]
        for pair in stale:
            del self._cache[pair]
        return len(stale)

    def _directed_reasons(self, ri: str, rj: str):
        defs = self.definitions
        performs_i = defs.performs(ri)
        performs_j = defs.performs(rj)

        # Condition 1: rj ∈ Triggers(ri)
        if rj in defs.triggers(ri):
            events = sorted(
                str(event)
                for event in performs_i & defs.triggered_by(rj)
            )
            yield NoncommutativityReason(
                condition=1,
                first=ri,
                second=rj,
                detail=f"{ri} can trigger {rj} via {', '.join(events)}",
            )

        # Condition 2: rj ∈ Can-Untrigger(Performs(ri))
        if rj in defs.can_untrigger(performs_i):
            tables = sorted(
                event.table for event in performs_i if event.kind == "D"
            )
            yield NoncommutativityReason(
                condition=2,
                first=ri,
                second=rj,
                detail=(
                    f"{ri}'s deletions from {', '.join(tables)} can "
                    f"untrigger {rj}"
                ),
            )

        # Tables where the two rules' updates provably touch disjoint
        # rows (the refined example-2 pattern): interference through
        # those tables is suppressed in conditions 3 and 5 below.
        if self.refine and self.granularity == "column":
            disjoint_tables = self._disjoint_update_tables(ri, rj)
        else:
            disjoint_tables = frozenset()

        # Condition 3: ri's operations can affect what rj reads. With
        # the attribute-level dataflow pass enabled, an update event
        # only interferes when rj's behavior depends on the *value* of
        # the updated column (ColumnReads); insert/delete events keep
        # interfering with row-membership reads (RowReadTables), which
        # keeps the refinement sound for existence-only reads like
        # ``exists (select * ...)`` and ``count(*)``.
        if self.column_dataflow:
            footprint_j = defs.dataflow(rj)
            reads_j = footprint_j.column_reads
            read_tables_j = set(footprint_j.read_tables)
        else:
            reads_j = defs.reads(rj)
            read_tables_j = {table for table, __ in reads_j}
        for event in sorted(performs_i, key=str):
            affected = False
            if event.kind in ("I", "D") and event.table in read_tables_j:
                affected = True
                if (
                    event.kind == "I"
                    and self.refine
                    and self._inserts_provably_unaffected(ri, rj, event.table)
                ):
                    affected = False
            if event.kind == "U":
                if self.granularity == "table":
                    affected = event.table in read_tables_j
                elif (event.table, event.column) in reads_j:
                    affected = event.table not in disjoint_tables
            if affected:
                yield NoncommutativityReason(
                    condition=3,
                    first=ri,
                    second=rj,
                    detail=f"{ri} performs {event} which {rj} reads",
                )

        # Condition 4: ri's insertions can affect what rj updates/deletes.
        inserted_tables_i = {
            event.table for event in performs_i if event.kind == "I"
        }
        for event in sorted(performs_j, key=str):
            if event.kind in ("D", "U") and event.table in inserted_tables_i:
                if self.refine and self._inserts_provably_unaffected(
                    ri, rj, event.table
                ):
                    continue
                yield NoncommutativityReason(
                    condition=4,
                    first=ri,
                    second=rj,
                    detail=(
                        f"{ri} inserts into {event.table} which {rj} "
                        f"{'deletes from' if event.kind == 'D' else 'updates'}"
                    ),
                )

        # Condition 5: updates of the same column (or, in the coarse
        # ablation mode, of the same table).
        suppressed = disjoint_tables
        if self.granularity == "table":
            updated_tables_i = {
                event.table for event in performs_i if event.kind == "U"
            }
            updated_tables_j = {
                event.table for event in performs_j if event.kind == "U"
            }
            for table in sorted(updated_tables_i & updated_tables_j):
                yield NoncommutativityReason(
                    condition=5,
                    first=ri,
                    second=rj,
                    detail=f"both update table {table}",
                )
            return
        updates_i = {
            (event.table, event.column)
            for event in performs_i
            if event.kind == "U"
        }
        updates_j = {
            (event.table, event.column)
            for event in performs_j
            if event.kind == "U"
        }
        for table, column in sorted(updates_i & updates_j):
            if table in suppressed:
                continue
            yield NoncommutativityReason(
                condition=5,
                first=ri,
                second=rj,
                detail=f"both update {table}.{column}",
            )

    # ------------------------------------------------------------------
    # Refinement: the Lemma 6.1 example-1 pattern, discharged statically
    # ------------------------------------------------------------------

    def _inserts_provably_unaffected(
        self, ri: str, rj: str, table: str
    ) -> bool:
        """True when every row ``ri`` can insert into *table* provably
        fails every predicate ``rj`` deletes/updates that table with.

        Requirements (all syntactic, all conservative):

        * every ``insert into table ...`` in ri's action uses literal
          VALUES rows (no SELECT source, no expressions);
        * ``rj`` never reads *table* through a SELECT (condition,
          subquery, action select or insert-select) or a transition
          table — its only contact is the WHERE of its own
          deletes/updates on *table*;
        * every such WHERE clause is *closed* — references only the
          target table's columns, with no subqueries — so it can be
          evaluated on a candidate row without any database state;
        * that evaluation is False or UNKNOWN for every literal row.
        """
        ri_rule = self.definitions.ruleset.rule(ri)
        rj_rule = self.definitions.ruleset.rule(rj)
        columns = self.definitions.ruleset.schema.table(table).column_names

        if not _reads_only_via_closed_wheres(rj_rule, table):
            return False

        literal_rows: list[tuple] = []
        for action in ri_rule.actions:
            if not isinstance(action, ast.Insert) or (
                action.table.lower() != table
            ):
                continue
            if action.query is not None:
                return False  # rows come from a query: value unknown
            for row in action.rows:
                values = []
                for expr in row:
                    value = _literal_value(expr)
                    if value is _NOT_LITERAL:
                        return False
                    values.append(value)
                literal_rows.append(tuple(values))
        if not literal_rows:
            return False

        evaluator = Evaluator(provider=None)  # closed predicates only
        for action in rj_rule.actions:
            predicate = None
            if isinstance(action, ast.Delete) and action.table.lower() == table:
                predicate = action.where
                binding = (action.alias or action.table).lower()
            elif isinstance(action, ast.Update) and (
                action.table.lower() == table
            ):
                predicate = action.where
                binding = (action.alias or action.table).lower()
            else:
                continue
            if predicate is None:
                return False  # unconditional write hits everything
            if not _is_closed_predicate(predicate, table, binding, columns):
                return False
            for row in literal_rows:
                context = RowContext()
                context.bind(binding, columns, row)
                if binding != table:
                    context.bind(table, columns, row)
                try:
                    if sql_is_truthy(evaluator.evaluate(predicate, context)):
                        return False  # some inserted row is affected
                except ReproError:
                    return False
        return True


    def _disjoint_update_tables(self, ri: str, rj: str) -> frozenset[str]:
        """Tables where ri's and rj's updates provably touch disjoint rows.

        The refined Lemma 6.1 example-2 pattern. A table ``t`` qualifies
        when, for both rules:

        * every action touching ``t`` is an UPDATE of ``t`` whose WHERE
          is closed (only ``t``'s columns, no subqueries) and contains a
          top-level conjunct ``discr = literal`` for a shared
          discriminator column ``discr``;
        * the rule never assigns ``discr`` (the row sets are fixed);
        * the rule's only *reads* of ``t`` are those WHERE clauses;

        and the two rules' discriminator literals differ. Then each
        rule's operations only ever touch its own fixed row set, so
        neither can affect what the other reads or writes on ``t``.
        """
        ri_rule = self.definitions.ruleset.rule(ri)
        rj_rule = self.definitions.ruleset.rule(rj)
        schema = self.definitions.ruleset.schema

        shared_tables = {
            event.table
            for event in self.definitions.performs(ri)
            if event.kind == "U"
        } & {
            event.table
            for event in self.definitions.performs(rj)
            if event.kind == "U"
        }

        qualifying: set[str] = set()
        for table in shared_tables:
            columns = schema.table(table).column_names
            keys_i = _update_discriminators(ri_rule, table, columns)
            keys_j = _update_discriminators(rj_rule, table, columns)
            if keys_i is None or keys_j is None:
                continue
            if not _reads_only_via_closed_wheres(ri_rule, table):
                continue
            if not _reads_only_via_closed_wheres(rj_rule, table):
                continue
            # Some shared discriminator column must separate every pair
            # of statements between the two rules.
            shared_columns = set(keys_i) & set(keys_j)
            if any(
                keys_i[column].isdisjoint(keys_j[column])
                for column in shared_columns
            ):
                qualifying.add(table)
        return frozenset(qualifying)


_NOT_LITERAL = object()


def _literal_value(expr: ast.Expression):
    if isinstance(expr, ast.Literal):
        return expr.value
    if (
        isinstance(expr, ast.UnaryOp)
        and expr.op == "-"
        and isinstance(expr.operand, ast.Literal)
        and isinstance(expr.operand.value, (int, float))
    ):
        return -expr.operand.value
    return _NOT_LITERAL


def _is_closed_predicate(
    predicate: ast.Expression,
    table: str,
    binding: str,
    columns: tuple[str, ...],
) -> bool:
    """True when *predicate* only references *table*'s own columns and
    contains no subqueries (its value on a row is state-independent)."""
    for node in ast.walk_expression(predicate):
        if isinstance(node, (ast.InSubquery, ast.Exists, ast.ScalarSubquery)):
            return False
        if isinstance(node, ast.ColumnRef):
            if node.table and node.table.lower() not in (table, binding):
                return False
            if node.column.lower() not in columns:
                return False
    return True


def _reads_only_via_closed_wheres(rule, table: str) -> bool:
    """True when *rule*'s only contact with *table* is the WHERE clause
    of its own deletes/updates on that table — no SELECT anywhere in its
    condition or action references it (directly or as a transition
    table of a rule defined on it)."""
    selects = []
    if rule.condition is not None:
        selects.extend(ast.subqueries_of(rule.condition))
    for action in rule.actions:
        selects.extend(ast.selects_of_statement(action))
    for select in selects:
        for ref in select.tables:
            name = ref.name.lower()
            if name == table:
                return False
            if name in ast.TRANSITION_TABLE_NAMES and rule.table == table:
                return False
    return True


def _where_conjuncts(expr: ast.Expression):
    if isinstance(expr, ast.BinaryOp) and expr.op == "and":
        yield from _where_conjuncts(expr.left)
        yield from _where_conjuncts(expr.right)
    else:
        yield expr


def _update_discriminators(
    rule, table: str, columns: tuple[str, ...]
) -> dict[str, set] | None:
    """Discriminator equalities of *rule*'s updates on *table*.

    Returns ``{column: {literals}}`` for the columns that appear as a
    top-level ``column = literal`` conjunct in the WHERE of *every*
    statement of *rule* touching *table* — or None when the pattern
    does not apply (a non-update touches the table, a WHERE is missing
    or not closed, a discriminator is assigned by its own statement, or
    no common discriminator exists).
    """
    per_statement: list[dict[str, set]] = []
    for action in rule.actions:
        if isinstance(action, (ast.Insert, ast.Delete)) and (
            action.table.lower() == table
        ):
            return None  # non-update writes reintroduce interference
        if not isinstance(action, ast.Update) or action.table.lower() != table:
            continue
        if action.where is None:
            return None
        binding = (action.alias or action.table).lower()
        if not _is_closed_predicate(action.where, table, binding, columns):
            return None
        assigned = {a.column.lower() for a in action.assignments}
        equalities: dict[str, set] = {}
        for conjunct in _where_conjuncts(action.where):
            if not (
                isinstance(conjunct, ast.BinaryOp) and conjunct.op == "="
            ):
                continue
            column = None
            literal = _NOT_LITERAL
            if isinstance(conjunct.left, ast.ColumnRef):
                column = conjunct.left.column.lower()
                literal = _literal_value(conjunct.right)
            elif isinstance(conjunct.right, ast.ColumnRef):
                column = conjunct.right.column.lower()
                literal = _literal_value(conjunct.left)
            if (
                column is not None
                and literal is not _NOT_LITERAL
                and column not in assigned
            ):
                equalities.setdefault(column, set()).add(literal)
        if not equalities:
            return None
        per_statement.append(equalities)

    if not per_statement:
        return None
    common = set(per_statement[0])
    for equalities in per_statement[1:]:
        common &= set(equalities)
    if not common:
        return None
    return {
        column: set().union(
            *(equalities[column] for equalities in per_statement)
        )
        for column in common
    }
