"""The interactive analyzer facade.

The paper positions its algorithms as "the basis of an interactive
development environment for rule programmers": analyze → inspect the
isolated problems → certify commutativity / certify cycle progress /
add priorities → re-analyze. :class:`RuleAnalyzer` is that loop as an
API, holding the user's accumulated certifications and priority edits
across re-analyses.

Typical use::

    analyzer = RuleAnalyzer(ruleset)
    report = analyzer.analyze()
    if not report.confluent:
        for violation in report.confluence.violations:
            print(violation.describe())
        analyzer.certify_commutes("audit_a", "audit_b")
        analyzer.add_priority("deduct", "refill")
        report = analyzer.analyze()
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.analysis.commutativity import CommutativityAnalyzer
from repro.analysis.confluence import ConfluenceAnalysis, ConfluenceAnalyzer
from repro.analysis.corollaries import (
    CorollaryViolation,
    check_corollary_6_8,
    check_corollary_6_10,
    check_corollary_8_2,
)
from repro.analysis.derived import DerivedDefinitions
from repro.analysis.observable import (
    ObservableDeterminismAnalysis,
    ObservableDeterminismAnalyzer,
)
from repro.analysis.partial_confluence import (
    PartialConfluenceAnalysis,
    PartialConfluenceAnalyzer,
)
from repro.analysis.termination import TerminationAnalysis, TerminationAnalyzer
from repro.rules.ruleset import RuleSet


@dataclass
class AnalysisReport:
    """The combined verdicts for one analysis pass."""

    termination: TerminationAnalysis
    confluence: ConfluenceAnalysis
    observable_determinism: ObservableDeterminismAnalysis

    @property
    def terminates(self) -> bool:
        return self.termination.guaranteed

    @property
    def confluent(self) -> bool:
        """Theorem 6.7's combined verdict."""
        return self.confluence.confluent(self.termination.guaranteed)

    @property
    def observably_deterministic(self) -> bool:
        return self.observable_determinism.observably_deterministic

    def summary(self) -> str:
        lines = [
            f"termination:            {self.termination.describe()}",
            f"confluence:             {self.confluence.describe()}",
            f"observable determinism: {self.observable_determinism.describe()}",
        ]
        return "\n".join(lines)


class RuleAnalyzer:
    """Stateful analysis session over one rule set.

    ``refine=True`` turns on the automatic special-case commutativity
    refinements (both of Lemma 6.1's "actually commute" examples are
    then discharged without user certification — see
    :class:`~repro.analysis.commutativity.CommutativityAnalyzer`).
    """

    def __init__(self, ruleset: RuleSet, refine: bool = False) -> None:
        self.ruleset = ruleset
        self.refine = refine
        self._rebuild()

    def _rebuild(self) -> None:
        self.definitions = DerivedDefinitions(self.ruleset)
        self.commutativity = CommutativityAnalyzer(
            self.definitions, refine=self.refine
        )
        self.termination_analyzer = TerminationAnalyzer(self.definitions)

    # ------------------------------------------------------------------
    # User interaction: certifications and priority edits
    # ------------------------------------------------------------------

    def certify_commutes(self, first: str, second: str) -> None:
        """Declare that two rules that appear noncommutative by Lemma 6.1
        actually commute (Section 6.1's user escape hatch)."""
        self.commutativity.certify_commutes(first, second)

    def certify_termination(self, rule: str) -> None:
        """Declare that cycles through *rule* make progress (its
        condition eventually false or action eventually a no-op) —
        Section 5's interactive cycle certification."""
        self.termination_analyzer.certify_rule(rule)

    def add_priority(self, higher: str, lower: str) -> None:
        """Add a priority ordering (as if editing precedes/follows)."""
        self.ruleset.add_priority(higher, lower)

    def remove_priority(self, higher: str, lower: str) -> bool:
        return self.ruleset.remove_priority(higher, lower)

    # ------------------------------------------------------------------
    # Analyses
    # ------------------------------------------------------------------

    def analyze_termination(self) -> TerminationAnalysis:
        return self.termination_analyzer.analyze()

    def analyze_confluence(self) -> ConfluenceAnalysis:
        return ConfluenceAnalyzer(
            self.definitions, self.ruleset.priorities, self.commutativity
        ).analyze()

    def analyze_partial_confluence(
        self, tables: Iterable[str]
    ) -> PartialConfluenceAnalysis:
        return PartialConfluenceAnalyzer(
            self.definitions,
            self.ruleset.priorities,
            self.commutativity,
            self.termination_analyzer,
        ).analyze(tables)

    def analyze_observable_determinism(self) -> ObservableDeterminismAnalysis:
        return ObservableDeterminismAnalyzer(
            self.ruleset,
            priorities=self.ruleset.priorities,
            # Termination certifications carry over: the triggering graph
            # is unchanged by the Obs extension.
            termination_analyzer=self.termination_analyzer,
            base_commutativity=self.commutativity,
        ).analyze()

    def analyze(self) -> AnalysisReport:
        """Run all three analyses and bundle the verdicts."""
        return AnalysisReport(
            termination=self.analyze_termination(),
            confluence=self.analyze_confluence(),
            observable_determinism=self.analyze_observable_determinism(),
        )

    def analyze_restricted(self, initial_operations) -> AnalysisReport:
        """Analyze under restricted user operations (Section 9).

        Only the rules reachable in the triggering graph from rules
        triggered by *initial_operations* (an iterable of
        :class:`~repro.rules.events.TriggerEvent`) can ever be
        considered; the three analyses run on that subset. The session's
        certifications and priority edits carry over.
        """
        from repro.analysis.restricted import reachable_rules

        reachable = reachable_rules(self.definitions, initial_operations)
        sub_analyzer = RuleAnalyzer(
            self.ruleset.subset(reachable), refine=self.refine
        )
        for pair in self.commutativity.certified_pairs:
            if pair <= reachable:
                first, second = sorted(pair)
                sub_analyzer.certify_commutes(first, second)
        for rule in self.termination_analyzer.certified_rules:
            if rule in reachable:
                sub_analyzer.certify_termination(rule)
        return sub_analyzer.analyze()

    # ------------------------------------------------------------------
    # Corollary checks (internal consistency / developer guidelines)
    # ------------------------------------------------------------------

    def corollary_violations(self) -> list[CorollaryViolation]:
        """Corollaries 6.8 and 6.10 must hold whenever our confluence
        analysis accepts; 8.2 whenever observable determinism is
        accepted. Returns any counterexamples found (should be empty for
        accepted rule sets — the property tests rely on this)."""
        violations: list[CorollaryViolation] = []
        report = self.analyze()
        if report.confluent:
            violations.extend(
                check_corollary_6_8(
                    self.definitions, self.ruleset.priorities, self.commutativity
                )
            )
            violations.extend(
                check_corollary_6_10(self.definitions, self.ruleset.priorities)
            )
        if report.observably_deterministic:
            violations.extend(
                check_corollary_8_2(self.definitions, self.ruleset.priorities)
            )
        return violations

    # ------------------------------------------------------------------
    # Automated repair loop (programmatic version of Section 6.4)
    # ------------------------------------------------------------------

    def repair_confluence(
        self,
        oracle_commutes=None,
        max_rounds: int = 100,
    ) -> tuple[ConfluenceAnalysis, list[str]]:
        """Iteratively repair non-confluence, recording each action.

        For every violation round: if ``oracle_commutes(r1, r2)`` says
        the witness pair actually commutes, certify it (Approach 1);
        otherwise order the responsible unordered pair (Approach 2).
        ``oracle_commutes`` defaults to never-commutes (pure ordering).

        Returns the final analysis and the log of actions taken — the
        log length exhibits the paper's "non-confluence moves around"
        iteration when orderings surface new violating pairs.
        """
        actions: list[str] = []
        for _round in range(max_rounds):
            analysis = self.analyze_confluence()
            if analysis.requirement_holds:
                return analysis, actions
            violation = analysis.violations[0]
            pair = (violation.r1_member, violation.r2_member)
            if oracle_commutes is not None and oracle_commutes(*pair):
                self.certify_commutes(*pair)
                actions.append(f"certify({pair[0]}, {pair[1]})")
                continue
            higher, lower = violation.pair_first, violation.pair_second
            self.add_priority(higher, lower)
            actions.append(f"order({higher} > {lower})")
        return self.analyze_confluence(), actions
