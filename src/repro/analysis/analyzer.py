"""The interactive analyzer facade.

The paper positions its algorithms as "the basis of an interactive
development environment for rule programmers": analyze → inspect the
isolated problems → certify commutativity / certify cycle progress /
add priorities → re-analyze. :class:`RuleAnalyzer` is that loop as an
API, holding the user's accumulated certifications and priority edits
across re-analyses.

Since the engine redesign, every re-analysis is served from one shared
:class:`~repro.analysis.engine.AnalysisEngine`: Lemma 6.1 pair verdicts
and Definition 6.5 per-pair confluence verdicts are memoized and
invalidated precisely on certify/revoke/priority-edit/rule-edit, so the
analyze → repair → re-analyze loop re-judges only what an edit could
have changed.

Typical use::

    analyzer = RuleAnalyzer(ruleset)
    report = analyzer.analyze()
    if not report.confluent:
        for violation in report.confluence.violations:
            print(violation.describe())
        analyzer.certify_commutes("audit_a", "audit_b")
        analyzer.add_priority("deduct", "refill")
        report = analyzer.analyze()
    print(report.to_dict())          # machine-consumable verdicts
    print(analyzer.engine.stats)     # memo hits / pairs judged / timings
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.analysis.confluence import (
    ConfluenceAnalysis,
    ConfluenceViolation,
)
from repro.analysis.commutativity import NoncommutativityReason
from repro.analysis.corollaries import (
    CorollaryViolation,
    check_corollary_6_8,
    check_corollary_6_10,
    check_corollary_8_2,
)
from repro.analysis.engine import AnalysisEngine
from repro.analysis.observable import ObservableDeterminismAnalysis
from repro.analysis.partial_confluence import PartialConfluenceAnalysis
from repro.analysis.termination import (
    TerminationAnalysis,
    TerminationReport,
    build_termination_report,
)
from repro.rules.ruleset import RuleSet

#: Version tag of the ``AnalysisReport.to_dict`` schema.
# 2: added the optional "termination_report" section (layered
# stratified/critical-instance verdicts); version-1 payloads load fine.
REPORT_SCHEMA_VERSION = 2


@dataclass
class AnalysisReport:
    """The combined verdicts for one analysis pass.

    Beyond the three core analyses, a report can carry
    partial-confluence verdicts (one per requested table group), a
    snapshot of the engine's cache/judgment counters, and the wall-clock
    per phase of this pass. :meth:`to_dict` / :meth:`from_dict` give a
    stable machine-consumable round-trip of all of it.
    """

    termination: TerminationAnalysis
    confluence: ConfluenceAnalysis
    observable_determinism: ObservableDeterminismAnalysis
    #: partial-confluence verdicts keyed by the (frozen) table group
    partial_confluence: dict[frozenset[str], PartialConfluenceAnalysis] = (
        field(default_factory=dict)
    )
    #: snapshot of the engine's cumulative counters (plain dict)
    stats: dict[str, Any] | None = None
    #: wall-clock seconds per phase of this analysis pass
    timings: dict[str, float] = field(default_factory=dict)
    #: layered per-cycle verdicts (``--termination stratified|critical``);
    #: None when the pass ran in plain Theorem-5.1 mode
    termination_report: TerminationReport | None = None

    @property
    def terminates(self) -> bool:
        if self.termination_report is not None:
            return self.termination_report.terminates
        return self.termination.guaranteed

    @property
    def confluent(self) -> bool:
        """Theorem 6.7's combined verdict (layered termination counts)."""
        return self.confluence.confluent(self.terminates)

    @property
    def observably_deterministic(self) -> bool:
        """Theorem 8.1's combined verdict (layered termination counts)."""
        return (
            self.observable_determinism.confluence.requirement_holds
            and self.terminates
        )

    def summary(self) -> str:
        termination_line = (
            self.termination_report.describe()
            if self.termination_report is not None
            else self.termination.describe()
        )
        lines = [
            f"termination:            {termination_line}",
            f"confluence:             {self.confluence.describe()}",
            f"observable determinism: {self.observable_determinism.describe()}",
        ]
        for tables in sorted(self.partial_confluence, key=sorted):
            analysis = self.partial_confluence[tables]
            lines.append(f"partial confluence:     {analysis.describe()}")
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # Machine-consumable serialization
    # ------------------------------------------------------------------

    def to_dict(self) -> dict:
        """A stable, JSON-serializable rendering of the full report.

        Sets are rendered as sorted lists and dict sections in sorted
        key order, so equal reports serialize identically (and the
        round-trip ``from_dict(d).to_dict() == d`` holds).
        """
        return {
            "schema_version": REPORT_SCHEMA_VERSION,
            "verdicts": {
                "terminates": self.terminates,
                "confluent": self.confluent,
                "observably_deterministic": self.observably_deterministic,
            },
            "termination": _termination_to_dict(self.termination),
            "confluence": _confluence_to_dict(self.confluence),
            "observable_determinism": {
                "observable_rules": sorted(
                    self.observable_determinism.observable_rules
                ),
                "significant": sorted(self.observable_determinism.significant),
                "termination": _termination_to_dict(
                    self.observable_determinism.termination
                ),
                "confluence": _confluence_to_dict(
                    self.observable_determinism.confluence
                ),
            },
            "partial_confluence": [
                {
                    "tables": sorted(analysis.tables),
                    "significant": sorted(analysis.significant),
                    "confluent_with_respect_to_tables": (
                        analysis.confluent_with_respect_to_tables
                    ),
                    "termination": _termination_to_dict(analysis.termination),
                    "confluence": _confluence_to_dict(analysis.confluence),
                }
                for __, analysis in sorted(
                    self.partial_confluence.items(),
                    key=lambda item: sorted(item[0]),
                )
            ],
            "stats": self.stats,
            "timings": {
                phase: self.timings[phase] for phase in sorted(self.timings)
            },
            "termination_report": (
                self.termination_report.to_dict()
                if self.termination_report is not None
                else None
            ),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "AnalysisReport":
        """Rebuild a report from :meth:`to_dict` output.

        The verdict structure round-trips exactly; the in-memory-only
        ``TriggeringGraph`` handle on termination analyses is not
        serialized and comes back as ``None``.
        """
        od = data["observable_determinism"]
        return cls(
            termination=_termination_from_dict(data["termination"]),
            confluence=_confluence_from_dict(data["confluence"]),
            observable_determinism=ObservableDeterminismAnalysis(
                observable_rules=frozenset(od["observable_rules"]),
                significant=frozenset(od["significant"]),
                termination=_termination_from_dict(od["termination"]),
                confluence=_confluence_from_dict(od["confluence"]),
            ),
            partial_confluence={
                frozenset(entry["tables"]): PartialConfluenceAnalysis(
                    tables=frozenset(entry["tables"]),
                    significant=frozenset(entry["significant"]),
                    termination=_termination_from_dict(entry["termination"]),
                    confluence=_confluence_from_dict(entry["confluence"]),
                )
                for entry in data.get("partial_confluence", [])
            },
            stats=data.get("stats"),
            timings=dict(data.get("timings", {})),
            termination_report=(
                TerminationReport.from_dict(data["termination_report"])
                if data.get("termination_report") is not None
                else None
            ),
        )


# ----------------------------------------------------------------------
# Serialization helpers (shared by the nested analyses)
# ----------------------------------------------------------------------


def _termination_to_dict(analysis: TerminationAnalysis) -> dict:
    return {
        "guaranteed": analysis.guaranteed,
        "cyclic_components": sorted(
            (sorted(component) for component in analysis.cyclic_components),
        ),
        "uncertified_components": sorted(
            (sorted(component) for component in analysis.uncertified_components),
        ),
        "certified_rules": sorted(analysis.certified_rules),
        "auto_certifiable": [
            {"component": component, "rules": sorted(rules)}
            for component, rules in sorted(
                (
                    (sorted(component), rules)
                    for component, rules in analysis.auto_certifiable.items()
                ),
            )
        ],
    }


def _termination_from_dict(data: dict) -> TerminationAnalysis:
    return TerminationAnalysis(
        guaranteed=data["guaranteed"],
        cyclic_components=[
            frozenset(component) for component in data["cyclic_components"]
        ],
        uncertified_components=[
            frozenset(component)
            for component in data["uncertified_components"]
        ],
        certified_rules=frozenset(data["certified_rules"]),
        auto_certifiable={
            frozenset(entry["component"]): frozenset(entry["rules"])
            for entry in data["auto_certifiable"]
        },
        graph=None,
    )


def _confluence_to_dict(analysis: ConfluenceAnalysis) -> dict:
    return {
        "requirement_holds": analysis.requirement_holds,
        "pairs_examined": analysis.pairs_examined,
        "universe": sorted(analysis.universe),
        "violations": [
            {
                "pair_first": violation.pair_first,
                "pair_second": violation.pair_second,
                "r1_member": violation.r1_member,
                "r2_member": violation.r2_member,
                "r1_set": sorted(violation.r1_set),
                "r2_set": sorted(violation.r2_set),
                "reasons": [
                    {
                        "condition": reason.condition,
                        "first": reason.first,
                        "second": reason.second,
                        "detail": reason.detail,
                    }
                    for reason in violation.reasons
                ],
            }
            for violation in analysis.violations
        ],
    }


def _confluence_from_dict(data: dict) -> ConfluenceAnalysis:
    return ConfluenceAnalysis(
        requirement_holds=data["requirement_holds"],
        violations=[
            ConfluenceViolation(
                pair_first=violation["pair_first"],
                pair_second=violation["pair_second"],
                r1_member=violation["r1_member"],
                r2_member=violation["r2_member"],
                r1_set=frozenset(violation["r1_set"]),
                r2_set=frozenset(violation["r2_set"]),
                reasons=tuple(
                    NoncommutativityReason(
                        condition=reason["condition"],
                        first=reason["first"],
                        second=reason["second"],
                        detail=reason["detail"],
                    )
                    for reason in violation["reasons"]
                ),
            )
            for violation in data["violations"]
        ],
        pairs_examined=data["pairs_examined"],
        universe=frozenset(data["universe"]),
    )


class RuleAnalyzer:
    """Stateful analysis session over one rule set.

    All options are keyword-only. ``refine=True`` turns on the automatic
    special-case commutativity refinements (both of Lemma 6.1's
    "actually commute" examples are then discharged without user
    certification — see
    :class:`~repro.analysis.commutativity.CommutativityAnalyzer`).
    ``parallel``/``parallel_threshold`` control the engine's chunked
    thread fan-out for raw pair judging (``None`` = automatic above the
    threshold). An existing :class:`AnalysisEngine` can be supplied to
    share memo state (used by :meth:`analyze_restricted`).
    """

    def __init__(
        self,
        ruleset: RuleSet,
        *,
        refine: bool = False,
        granularity: str = "column",
        column_dataflow: bool = False,
        parallel: bool | None = None,
        parallel_threshold: int = 48,
        engine: AnalysisEngine | None = None,
    ) -> None:
        if engine is None:
            engine = AnalysisEngine(
                ruleset,
                refine=refine,
                granularity=granularity,
                column_dataflow=column_dataflow,
                parallel=parallel,
                parallel_threshold=parallel_threshold,
            )
        self.engine = engine
        self.refine = engine.refine
        self.column_dataflow = engine.column_dataflow

    # ------------------------------------------------------------------
    # Engine-backed component access (backward-compatible attributes)
    # ------------------------------------------------------------------

    @property
    def ruleset(self) -> RuleSet:
        return self.engine.ruleset

    @property
    def definitions(self):
        return self.engine.definitions

    @property
    def commutativity(self):
        return self.engine.commutativity

    @property
    def termination_analyzer(self):
        return self.engine.termination_analyzer

    # ------------------------------------------------------------------
    # User interaction: certifications, priority edits, rule edits
    # ------------------------------------------------------------------

    def certify_commutes(self, first: str, second: str) -> None:
        """Declare that two rules that appear noncommutative by Lemma 6.1
        actually commute (Section 6.1's user escape hatch)."""
        self.engine.certify_commutes(first, second)

    def revoke_certification(self, first: str, second: str) -> bool:
        return self.engine.revoke_certification(first, second)

    def certify_termination(self, rule: str) -> None:
        """Declare that cycles through *rule* make progress (its
        condition eventually false or action eventually a no-op) —
        Section 5's interactive cycle certification."""
        self.engine.certify_termination(rule)

    def add_priority(self, higher: str, lower: str) -> None:
        """Add a priority ordering (as if editing precedes/follows)."""
        self.engine.add_priority(higher, lower)

    def remove_priority(self, higher: str, lower: str) -> bool:
        return self.engine.remove_priority(higher, lower)

    def replace_ruleset(self, ruleset: RuleSet) -> frozenset[str]:
        """Swap in an edited rule set; the engine diffs per-rule content
        fingerprints and keeps every memo entry the edit cannot have
        affected. Returns the changed rule names."""
        return self.engine.update_ruleset(ruleset)

    # ------------------------------------------------------------------
    # Analyses
    # ------------------------------------------------------------------

    def analyze_termination(self) -> TerminationAnalysis:
        return self.engine.analyze_termination()

    def analyze_confluence(self) -> ConfluenceAnalysis:
        return self.engine.analyze_confluence()

    def analyze_partial_confluence(
        self, tables: Iterable[str]
    ) -> PartialConfluenceAnalysis:
        return self.engine.analyze_partial_confluence(tables)

    def analyze_observable_determinism(self) -> ObservableDeterminismAnalysis:
        return self.engine.analyze_observable_determinism()

    def analyze(
        self,
        *,
        tables: Iterable[Iterable[str]] = (),
        termination_mode: str | None = None,
        rules_source: str | None = None,
    ) -> AnalysisReport:
        """Run all three analyses (plus partial confluence for each
        group in *tables*) and bundle the verdicts with engine stats.

        *termination_mode* ``"stratified"`` or ``"critical"`` attaches a
        layered :class:`TerminationReport` whose per-cycle verdicts then
        drive the report's ``terminates`` property (``"tg"``/None keeps
        the plain Theorem 5.1 verdict). *rules_source* is embedded in
        any non-termination witness so it replays standalone."""
        timings: dict[str, float] = {}

        def timed(phase, thunk):
            start = time.perf_counter()
            result = thunk()
            timings[phase] = time.perf_counter() - start
            return result

        termination = timed("termination", self.analyze_termination)
        layered: TerminationReport | None = None
        if termination_mode not in (None, "tg"):
            layered = timed(
                f"termination[{termination_mode}]",
                lambda: build_termination_report(
                    self.ruleset,
                    mode=termination_mode,
                    certified=tuple(
                        self.engine.termination_analyzer.certified_rules
                    ),
                    rules_source=rules_source,
                ),
            )
        confluence = timed("confluence", self.analyze_confluence)
        observable = timed("observable", self.analyze_observable_determinism)
        partial: dict[frozenset[str], PartialConfluenceAnalysis] = {}
        for group in tables:
            group_list = [table for table in group]
            analysis = timed(
                f"partial[{','.join(sorted(group_list))}]",
                lambda g=group_list: self.analyze_partial_confluence(g),
            )
            partial[analysis.tables] = analysis
        stats = self.engine.stats.snapshot().to_dict()
        stats["pair_pruning"] = timed(
            "pair_pruning", self.engine.pair_pruning_counts
        )
        return AnalysisReport(
            termination=termination,
            confluence=confluence,
            observable_determinism=observable,
            partial_confluence=partial,
            stats=stats,
            timings=timings,
            termination_report=layered,
        )

    def analyze_restricted(
        self, initial_operations, *, tables: Iterable[Iterable[str]] = ()
    ) -> AnalysisReport:
        """Analyze under restricted user operations (Section 9).

        Only the rules reachable in the triggering graph from rules
        triggered by *initial_operations* (an iterable of
        :class:`~repro.rules.events.TriggerEvent`) can ever be
        considered; the analyses run on that subset. The session's
        certifications, priority edits, *and memo state* carry over: the
        sub-analyzer shares this engine's raw Lemma 6.1 memo and stats
        instead of re-judging the restricted pairs from scratch.
        """
        return self.restricted_session(initial_operations).analyze(
            tables=tables
        )

    def restricted_session(self, initial_operations) -> "RuleAnalyzer":
        """The restricted sub-session itself, for callers that want to
        keep interacting with it (certify, re-analyze, ...)."""
        from repro.analysis.restricted import reachable_rules

        reachable = reachable_rules(self.definitions, initial_operations)
        sub_engine = self.engine.restrict(reachable)
        return RuleAnalyzer(sub_engine.ruleset, engine=sub_engine)

    # ------------------------------------------------------------------
    # Corollary checks (internal consistency / developer guidelines)
    # ------------------------------------------------------------------

    def corollary_violations(self) -> list[CorollaryViolation]:
        """Corollaries 6.8 and 6.10 must hold whenever our confluence
        analysis accepts; 8.2 whenever observable determinism is
        accepted. Returns any counterexamples found (should be empty for
        accepted rule sets — the property tests rely on this)."""
        violations: list[CorollaryViolation] = []
        report = self.analyze()
        if report.confluent:
            violations.extend(
                check_corollary_6_8(
                    self.definitions, self.ruleset.priorities, self.commutativity
                )
            )
            violations.extend(
                check_corollary_6_10(self.definitions, self.ruleset.priorities)
            )
        if report.observably_deterministic:
            violations.extend(
                check_corollary_8_2(self.definitions, self.ruleset.priorities)
            )
        return violations

    # ------------------------------------------------------------------
    # Automated repair loop (programmatic version of Section 6.4)
    # ------------------------------------------------------------------

    def repair_confluence(
        self,
        oracle_commutes=None,
        max_rounds: int = 100,
    ) -> tuple[ConfluenceAnalysis, list[str]]:
        """Iteratively repair non-confluence, recording each action.

        For every violation round: if ``oracle_commutes(r1, r2)`` says
        the witness pair actually commutes, certify it (Approach 1);
        otherwise order the responsible unordered pair (Approach 2).
        ``oracle_commutes`` defaults to never-commutes (pure ordering).

        Returns the final analysis and the log of actions taken — the
        log length exhibits the paper's "non-confluence moves around"
        iteration when orderings surface new violating pairs. Each
        round's re-analysis is served from the engine memo: only pair
        verdicts the previous action could have changed are re-judged.
        """
        actions: list[str] = []
        for _round in range(max_rounds):
            analysis = self.analyze_confluence()
            if analysis.requirement_holds:
                return analysis, actions
            violation = analysis.violations[0]
            pair = (violation.r1_member, violation.r2_member)
            if oracle_commutes is not None and oracle_commutes(*pair):
                self.certify_commutes(*pair)
                actions.append(f"certify({pair[0]}, {pair[1]})")
                continue
            higher, lower = violation.pair_first, violation.pair_second
            self.add_priority(higher, lower)
            actions.append(f"order({higher} > {lower})")
        return self.analyze_confluence(), actions
