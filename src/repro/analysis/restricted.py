"""Analysis under restricted user operations (Section 9 future work).

"In some cases it may be known that [the user-generated operations that
initiate rule processing] will be of a particular type ... This may
reduce possible execution paths during rule processing, and consequently
may guarantee properties that otherwise do not hold."

Given a declared set of initiating operations ``O₀ ⊆ O``, only the rules
*reachable* in the triggering graph from rules triggered by ``O₀`` can
ever be considered. Termination and confluence need only be analyzed
over that reachable subset.
"""

from __future__ import annotations

from typing import Iterable

from repro.analysis.derived import DerivedDefinitions
from repro.rules.events import TriggerEvent


def initially_triggerable_rules(
    definitions: DerivedDefinitions,
    initial_operations: Iterable[TriggerEvent],
) -> frozenset[str]:
    """Rules whose transition predicate can hold on the initial transition."""
    operations = frozenset(initial_operations)
    return frozenset(
        name
        for name in definitions.rule_names
        if operations & definitions.triggered_by(name)
    )


def reachable_rules(
    definitions: DerivedDefinitions,
    initial_operations: Iterable[TriggerEvent],
) -> frozenset[str]:
    """All rules that can be considered when user operations are limited
    to *initial_operations*: the triggering-graph closure of the
    initially triggerable rules."""
    frontier = list(initially_triggerable_rules(definitions, initial_operations))
    reachable: set[str] = set(frontier)
    while frontier:
        current = frontier.pop()
        for successor in definitions.triggers(current):
            if successor not in reachable:
                reachable.add(successor)
                frontier.append(successor)
    return frozenset(reachable)
