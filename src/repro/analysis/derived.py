"""Preliminary static analysis: the derived definitions of Section 3.

For a rule set ``R`` over schema tables ``T`` with columns ``C`` and
operation set ``O``, this module computes:

* ``Triggered-By(r)`` — operations in ``O`` that trigger ``r`` (held on
  the :class:`~repro.rules.rule.Rule` itself, re-exposed here);
* ``Performs(r)``    — operations ``r``'s action may perform;
* ``Triggers(r)``    — ``{r' ∈ R | Performs(r) ∩ Triggered-By(r') ≠ ∅}``;
* ``Reads(r)``       — columns ``r`` may read in its condition or action,
  with every transition-table reference contributing the corresponding
  column of the rule's own table;
* ``Can-Untrigger(O')`` — rules whose triggering can be undone by the
  deletions in ``O'``;
* ``Observable(r)``  — whether ``r``'s action may be observable.

Everything is purely syntactic (computed from the rule ASTs) and
conservative, exactly as in the paper.

The module also provides the ``Obs`` extension of Section 8: extended
``Reads``/``Performs`` where every observable rule additionally reads
column ``Obs.c`` and performs ``(I, Obs)`` on a fictional table whose
name (:data:`OBS_TABLE`) cannot collide with parser-produced names.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

from repro.lang import ast
from repro.rules.events import TriggerEvent
from repro.rules.rule import Rule
from repro.rules.ruleset import RuleSet

if TYPE_CHECKING:  # pragma: no cover - import cycle broken at runtime
    from repro.analysis.dataflow import RuleDataflow

#: Name of the fictional observation-log table (Section 8). Contains a
#: character that cannot appear in a parsed identifier, so it can never
#: collide with a real table.
OBS_TABLE = "@obs"

#: The single column of the fictional Obs table.
OBS_COLUMN = "c"


class DerivedDefinitions:
    """The Section 3 definitions, computed once per rule set.

    All methods take and return lower-cased rule names; reads are
    ``(table, column)`` pairs and operations are
    :class:`~repro.rules.events.TriggerEvent` values.
    """

    def __init__(self, ruleset: RuleSet) -> None:
        self.ruleset = ruleset
        self._triggered_by: dict[str, frozenset[TriggerEvent]] = {}
        self._performs: dict[str, frozenset[TriggerEvent]] = {}
        self._reads: dict[str, frozenset[tuple[str, str]]] = {}
        self._observable: dict[str, bool] = {}
        self._dataflow: dict[str, "RuleDataflow"] = {}
        for rule in ruleset:
            self._triggered_by[rule.name] = rule.triggered_by
            self._performs[rule.name] = _compute_performs(rule)
            self._reads[rule.name] = _compute_reads(rule)
            self._observable[rule.name] = rule.is_observable
        self._triggers: dict[str, frozenset[str]] = {
            name: frozenset(
                other
                for other in self._triggered_by
                if self._performs[name] & self._triggered_by[other]
            )
            for name in self._triggered_by
        }

    # ------------------------------------------------------------------

    @property
    def rule_names(self) -> tuple[str, ...]:
        return self.ruleset.names

    def triggered_by(self, rule: str) -> frozenset[TriggerEvent]:
        return self._triggered_by[rule.lower()]

    def performs(self, rule: str) -> frozenset[TriggerEvent]:
        return self._performs[rule.lower()]

    def triggers(self, rule: str) -> frozenset[str]:
        return self._triggers[rule.lower()]

    def reads(self, rule: str) -> frozenset[tuple[str, str]]:
        return self._reads[rule.lower()]

    def observable(self, rule: str) -> bool:
        return self._observable[rule.lower()]

    def dataflow(self, rule: str) -> "RuleDataflow":
        """The attribute-level footprint of *rule* — ``Writes``,
        ``ColumnReads`` and ``RowReadTables`` per
        :mod:`repro.analysis.dataflow`. Computed lazily (only analyses
        running with ``column_dataflow`` or the lint passes need it) and
        memoized per rule."""
        name = rule.lower()
        footprint = self._dataflow.get(name)
        if footprint is None:
            # Imported here, not at module top: dataflow reuses this
            # module's scope machinery, so the top-level import goes the
            # other way.
            from repro.analysis.dataflow import rule_dataflow

            footprint = self._extend_dataflow(
                name, rule_dataflow(self.ruleset.rule(name))
            )
            self._dataflow[name] = footprint
        return footprint

    def _extend_dataflow(
        self, name: str, footprint: "RuleDataflow"
    ) -> "RuleDataflow":
        """Hook for subclasses (the Obs extension) to widen a rule's
        footprint before it is memoized."""
        return footprint

    def can_untrigger(
        self, operations: Iterable[TriggerEvent]
    ) -> frozenset[str]:
        """``Can-Untrigger(O')`` — rules that deletions in *operations*
        can untrigger: rules triggered by insertions into, or updates of,
        a table that *operations* deletes from."""
        deleted_tables = {
            event.table for event in operations if event.kind == "D"
        }
        if not deleted_tables:
            return frozenset()
        untriggerable = set()
        for name, events in self._triggered_by.items():
            for event in events:
                if event.kind in ("I", "U") and event.table in deleted_tables:
                    untriggerable.add(name)
                    break
        return frozenset(untriggerable)


class ObsExtendedDefinitions(DerivedDefinitions):
    """Section 8's extended definitions over ``T ∪ {Obs}``.

    Every observable rule's ``Reads`` gains ``Obs.c`` and its
    ``Performs`` gains ``(I, Obs)``. ``Triggers`` is *not* extended: no
    rule is triggered by the fictional table, so triggering behavior is
    unchanged — only the commutativity conditions see the extension
    (via conditions 3 and 4 of Lemma 6.1, which is exactly what forces
    any two observable rules to be noncommutative).
    """

    def __init__(self, ruleset: RuleSet) -> None:
        super().__init__(ruleset)
        obs_insert = TriggerEvent.insert(OBS_TABLE)
        obs_read = (OBS_TABLE, OBS_COLUMN)
        for name, is_observable in self._observable.items():
            if is_observable:
                self._performs[name] = self._performs[name] | {obs_insert}
                self._reads[name] = self._reads[name] | {obs_read}

    def _extend_dataflow(self, name: str, footprint):
        """Mirror the Reads/Performs extension at the attribute level:
        an observable rule reads and appends to the fictional Obs log,
        so any two observable rules' footprints collide on ``Obs.c``."""
        if not self._observable[name]:
            return footprint
        from repro.analysis.dataflow import RuleDataflow, Write

        return RuleDataflow(
            writes=footprint.writes | {Write(OBS_TABLE, OBS_COLUMN, "I")},
            column_reads=footprint.column_reads | {(OBS_TABLE, OBS_COLUMN)},
            row_read_tables=footprint.row_read_tables | {OBS_TABLE},
        )


# ----------------------------------------------------------------------
# Performs
# ----------------------------------------------------------------------


def _compute_performs(rule: Rule) -> frozenset[TriggerEvent]:
    """``Performs(r)``: one event per DML statement target.

    * ``insert into t ...``       → ``(I, t)``
    * ``delete from t ...``       → ``(D, t)``
    * ``update t set c = ...``    → ``(U, t.c)`` for each assigned column
    * ``select`` / ``rollback``   → no modification events
    """
    events: set[TriggerEvent] = set()
    for action in rule.actions:
        if isinstance(action, ast.Insert):
            events.add(TriggerEvent.insert(action.table))
        elif isinstance(action, ast.Delete):
            events.add(TriggerEvent.delete(action.table))
        elif isinstance(action, ast.Update):
            for assignment in action.assignments:
                events.add(
                    TriggerEvent.update(action.table, assignment.column)
                )
    return frozenset(events)


# ----------------------------------------------------------------------
# Reads
# ----------------------------------------------------------------------


class _Scope:
    """One level of table bindings for column-reference resolution.

    Maps binding names (table name or alias) to the *actual* table read:
    a transition-table binding resolves to the rule's own table, per the
    paper ("for every (trans).c referenced ... t.c is in Reads(r) for
    r's triggering table t").
    """

    def __init__(self, outer: "_Scope | None" = None) -> None:
        self.bindings: dict[str, str] = {}
        self.outer = outer

    def bind(self, name: str, actual_table: str) -> None:
        self.bindings[name.lower()] = actual_table.lower()

    def resolve_qualified(self, binding: str) -> str | None:
        scope: _Scope | None = self
        binding = binding.lower()
        while scope is not None:
            if binding in scope.bindings:
                return scope.bindings[binding]
            scope = scope.outer
        return None

    def candidate_tables(self, column: str, rule: Rule) -> list[str]:
        """Tables that could supply an unqualified *column*: every bound
        table (innermost level first) that has the column."""
        scope: _Scope | None = self
        column = column.lower()
        while scope is not None:
            found = [
                actual
                for actual in scope.bindings.values()
                if rule.schema.has_table(actual)
                and rule.schema.table(actual).has_column(column)
            ]
            if found:
                return found
            scope = scope.outer
        return []


def _compute_reads(rule: Rule) -> frozenset[tuple[str, str]]:
    """``Reads(r)``: every ``t.c`` referenced in a select or where clause
    of ``r``'s condition or action (conservatively resolved)."""
    reads: set[tuple[str, str]] = set()
    root = _Scope()

    if rule.condition is not None:
        _reads_of_expression(rule.condition, root, rule, reads)

    for action in rule.actions:
        if isinstance(action, ast.Select):
            _reads_of_select(action, root, rule, reads)
        elif isinstance(action, ast.Insert):
            scope = _Scope(outer=root)
            for row in action.rows:
                for value in row:
                    _reads_of_expression(value, scope, rule, reads)
            if action.query is not None:
                _reads_of_select(action.query, root, rule, reads)
        elif isinstance(action, ast.Delete):
            scope = _Scope(outer=root)
            _bind_table(scope, action.alias or action.table, action.table, rule)
            if action.alias:
                _bind_table(scope, action.table, action.table, rule)
            if action.where is not None:
                _reads_of_expression(action.where, scope, rule, reads)
        elif isinstance(action, ast.Update):
            scope = _Scope(outer=root)
            _bind_table(scope, action.alias or action.table, action.table, rule)
            if action.alias:
                _bind_table(scope, action.table, action.table, rule)
            for assignment in action.assignments:
                _reads_of_expression(assignment.value, scope, rule, reads)
            if action.where is not None:
                _reads_of_expression(action.where, scope, rule, reads)
    return frozenset(reads)


def _bind_table(scope: _Scope, binding: str, table: str, rule: Rule) -> None:
    table = table.lower()
    if table in ast.TRANSITION_TABLE_NAMES:
        scope.bind(binding, rule.table)
    else:
        scope.bind(binding, table)


def _reads_of_select(
    select: ast.Select,
    outer: _Scope,
    rule: Rule,
    reads: set[tuple[str, str]],
) -> None:
    scope = _Scope(outer=outer)
    from_tables: list[str] = []
    for ref in select.tables:
        _bind_table(scope, ref.binding_name, ref.name, rule)
        actual = (
            rule.table
            if ref.name.lower() in ast.TRANSITION_TABLE_NAMES
            else ref.name.lower()
        )
        from_tables.append(actual)

    if select.is_star:
        for table in from_tables:
            if rule.schema.has_table(table):
                for column in rule.schema.table(table).column_names:
                    reads.add((table, column))
    else:
        for item in select.items:
            _reads_of_expression(
                item.expr, scope, rule, reads, star_tables=from_tables
            )

    if select.where is not None:
        _reads_of_expression(
            select.where, scope, rule, reads, star_tables=from_tables
        )
    for key in select.group_by:
        _reads_of_expression(
            key, scope, rule, reads, star_tables=from_tables
        )
    if select.having is not None:
        _reads_of_expression(
            select.having, scope, rule, reads, star_tables=from_tables
        )


def _reads_of_expression(
    expr: ast.Expression,
    scope: _Scope,
    rule: Rule,
    reads: set[tuple[str, str]],
    star_tables: list[str] | None = None,
) -> None:
    for node in ast.walk_expression(expr):
        if isinstance(node, ast.FuncCall) and node.star:
            # count(*) mentions no column but depends on every FROM
            # table's row set; conservatively charge it with reading all
            # their columns, like a bare ``select *`` (the attribute-
            # level pass in dataflow.py tracks this more precisely as a
            # row-membership read).
            for table in star_tables or []:
                if rule.schema.has_table(table):
                    for column in rule.schema.table(table).column_names:
                        reads.add((table, column))
        elif isinstance(node, ast.ColumnRef):
            if node.table:
                actual = scope.resolve_qualified(node.table)
                if actual is None:
                    # A qualified reference to an unbound name: resolve
                    # transition tables to the rule's table; otherwise
                    # assume it names a base table directly.
                    if node.table.lower() in ast.TRANSITION_TABLE_NAMES:
                        actual = rule.table
                    else:
                        actual = node.table.lower()
                if rule.schema.has_table(actual) and rule.schema.table(
                    actual
                ).has_column(node.column):
                    reads.add((actual, node.column.lower()))
            else:
                for table in scope.candidate_tables(node.column, rule):
                    reads.add((table, node.column.lower()))
        elif isinstance(node, (ast.InSubquery, ast.Exists)):
            _reads_of_select(node.subquery, scope, rule, reads)
        elif isinstance(node, ast.ScalarSubquery):
            _reads_of_select(node.subquery, scope, rule, reads)
