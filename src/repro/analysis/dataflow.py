"""Attribute-level dataflow analysis of rule programs.

Section 6.1 of the paper closes with an invitation: "the syntactic
conditions we use could be refined with finer semantic information".
This module is that refinement for the *attribute* (column) dimension.
For every rule it computes three sets, all purely syntactic and all
conservative:

* ``Writes(r)`` — ``(table, column, op-kind)`` triples covering every
  column the rule's action can modify: an UPDATE writes exactly its
  assigned columns (kind ``U``); an INSERT materialises whole rows, so
  it writes every column of its target (kind ``I``); a DELETE removes
  whole rows, likewise every column (kind ``D``).

* ``ColumnReads(r)`` — ``(table, column)`` pairs whose *values* the
  rule's behavior depends on. This is strictly sharper than the
  Section 3 ``Reads`` of :mod:`repro.analysis.derived`: a ``SELECT *``
  (or ``count(*)``) appearing where only row *existence* matters — an
  ``EXISTS`` subquery, or an aggregate over row counts — contributes no
  column reads at all, because updating a column value can never change
  which rows exist.

* ``RowReadTables(r)`` — tables whose row *membership* the rule depends
  on: every FROM table of every select it evaluates (with transition
  tables resolved to the rule's own table, as in ``Reads``). Inserts
  and deletes into these tables can affect the rule even when no column
  value is read — this is what keeps the refinement *sound*:
  ``count(*)`` reads no column, but its table still lands here. Target
  tables of the rule's own UPDATE/DELETE statements are deliberately
  *not* membership reads: insert interference with them is exactly
  Lemma 6.1 condition 4, and delete interference is covered by the
  WHERE-clause column reads (an unconditional write commutes with row
  removal).

The split powers the refined Lemma 6.1 overlap tests in
:mod:`repro.analysis.commutativity` (``column_dataflow=True``): an
update event ``(U, t.c)`` interferes with a reader only when ``(t, c)``
is in the reader's ``ColumnReads``, while insert/delete events check
table membership against ``ColumnReads``' tables ∪ ``RowReadTables``.
The lint passes of :mod:`repro.lint` reuse ``Writes``/``ColumnReads``
for dead-write detection.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.lang import ast
from repro.rules.rule import Rule

# The scope machinery of the Section 3 Reads computation is reused
# verbatim: binding resolution (aliases, transition tables, unqualified
# columns) must agree between the coarse and refined read sets.
from repro.analysis.derived import _bind_table, _Scope


@dataclass(frozen=True, order=True)
class Write:
    """One element of ``Writes(r)``: a column the action may modify.

    ``kind`` is the modifying operation: ``"I"`` (the column is filled
    by an inserted row), ``"D"`` (the column disappears with a deleted
    row), or ``"U"`` (the column is assigned by an update).
    """

    table: str
    column: str
    kind: str

    def __str__(self) -> str:
        return f"({self.kind}, {self.table}.{self.column})"


@dataclass(frozen=True)
class RuleDataflow:
    """The attribute-level footprint of one rule."""

    writes: frozenset[Write]
    column_reads: frozenset[tuple[str, str]]
    row_read_tables: frozenset[str]

    @property
    def written_columns(self) -> frozenset[tuple[str, str]]:
        return frozenset((w.table, w.column) for w in self.writes)

    @property
    def read_tables(self) -> frozenset[str]:
        """Every table the rule is sensitive to: column-value reads and
        row-membership reads combined."""
        return (
            frozenset(table for table, __ in self.column_reads)
            | self.row_read_tables
        )


def rule_dataflow(rule: Rule) -> RuleDataflow:
    """Compute the full attribute-level footprint of *rule*."""
    return RuleDataflow(
        writes=compute_writes(rule),
        column_reads=compute_column_reads(rule),
        row_read_tables=compute_row_read_tables(rule),
    )


# ----------------------------------------------------------------------
# Writes
# ----------------------------------------------------------------------


def compute_writes(rule: Rule) -> frozenset[Write]:
    """``Writes(r)`` as ``(table, column, op-kind)`` triples."""
    writes: set[Write] = set()
    for action in rule.actions:
        if isinstance(action, ast.Insert):
            table = action.table.lower()
            for column in rule.schema.table(table).column_names:
                writes.add(Write(table, column, "I"))
        elif isinstance(action, ast.Delete):
            table = action.table.lower()
            for column in rule.schema.table(table).column_names:
                writes.add(Write(table, column, "D"))
        elif isinstance(action, ast.Update):
            table = action.table.lower()
            for assignment in action.assignments:
                writes.add(Write(table, assignment.column.lower(), "U"))
    return frozenset(writes)


# ----------------------------------------------------------------------
# Column reads (value-sensitive) and row reads (membership-sensitive)
# ----------------------------------------------------------------------


def compute_column_reads(rule: Rule) -> frozenset[tuple[str, str]]:
    """``ColumnReads(r)``: the ``(table, column)`` pairs whose values the
    rule depends on.

    Differs from the Section 3 ``Reads`` exactly where only existence
    matters: an ``EXISTS (SELECT * ...)`` contributes its WHERE / GROUP
    BY / HAVING columns but not the starred output, and ``count(*)``
    contributes nothing (its value is pure row membership, tracked by
    :func:`compute_row_read_tables`).
    """
    reads: set[tuple[str, str]] = set()
    root = _Scope()

    if rule.condition is not None:
        _column_reads_of_expression(rule.condition, root, rule, reads)

    for action in rule.actions:
        if isinstance(action, ast.Select):
            # An action select is observable output: every produced
            # column is genuinely read.
            _column_reads_of_select(
                action, root, rule, reads, output_matters=True
            )
        elif isinstance(action, ast.Insert):
            scope = _Scope(outer=root)
            for row in action.rows:
                for value in row:
                    _column_reads_of_expression(value, scope, rule, reads)
            if action.query is not None:
                # The selected values become the inserted row: read.
                _column_reads_of_select(
                    action.query, root, rule, reads, output_matters=True
                )
        elif isinstance(action, ast.Delete):
            scope = _Scope(outer=root)
            _bind_table(scope, action.alias or action.table, action.table, rule)
            if action.alias:
                _bind_table(scope, action.table, action.table, rule)
            if action.where is not None:
                _column_reads_of_expression(action.where, scope, rule, reads)
        elif isinstance(action, ast.Update):
            scope = _Scope(outer=root)
            _bind_table(scope, action.alias or action.table, action.table, rule)
            if action.alias:
                _bind_table(scope, action.table, action.table, rule)
            for assignment in action.assignments:
                _column_reads_of_expression(
                    assignment.value, scope, rule, reads
                )
            if action.where is not None:
                _column_reads_of_expression(action.where, scope, rule, reads)
    return frozenset(reads)


def compute_row_read_tables(rule: Rule) -> frozenset[str]:
    """``RowReadTables(r)``: tables whose row membership the rule's
    behavior depends on (transition tables resolved to the rule's own
    table, mirroring ``Reads``)."""
    tables: set[str] = set()

    def resolve(name: str) -> str:
        name = name.lower()
        if name in ast.TRANSITION_TABLE_NAMES:
            return rule.table
        return name

    selects: list[ast.Select] = []
    if rule.condition is not None:
        selects.extend(ast.subqueries_of(rule.condition))
    for action in rule.actions:
        selects.extend(ast.selects_of_statement(action))

    for select in selects:
        for ref in select.tables:
            tables.add(resolve(ref.name))
    return frozenset(tables)


def _select_scope(
    select: ast.Select, outer: _Scope, rule: Rule
) -> tuple[_Scope, list[str]]:
    scope = _Scope(outer=outer)
    from_tables: list[str] = []
    for ref in select.tables:
        _bind_table(scope, ref.binding_name, ref.name, rule)
        actual = (
            rule.table
            if ref.name.lower() in ast.TRANSITION_TABLE_NAMES
            else ref.name.lower()
        )
        from_tables.append(actual)
    return scope, from_tables


def _column_reads_of_select(
    select: ast.Select,
    outer: _Scope,
    rule: Rule,
    reads: set[tuple[str, str]],
    *,
    output_matters: bool,
) -> None:
    scope, from_tables = _select_scope(select, outer, rule)

    if output_matters:
        if select.is_star:
            for table in from_tables:
                if rule.schema.has_table(table):
                    for column in rule.schema.table(table).column_names:
                        reads.add((table, column))
        else:
            for item in select.items:
                _column_reads_of_expression(item.expr, scope, rule, reads)
    # In an existence-only context the output columns are irrelevant:
    # only the predicates deciding *which* rows exist are value reads.
    # (DISTINCT over the items still cannot matter for existence — a
    # nonempty result stays nonempty under DISTINCT.)

    if select.where is not None:
        _column_reads_of_expression(select.where, scope, rule, reads)
    for key in select.group_by:
        _column_reads_of_expression(key, scope, rule, reads)
    if select.having is not None:
        _column_reads_of_expression(select.having, scope, rule, reads)


def _column_reads_of_expression(
    expr: ast.Expression,
    scope: _Scope,
    rule: Rule,
    reads: set[tuple[str, str]],
) -> None:
    for node in ast.walk_expression(expr):
        if isinstance(node, ast.ColumnRef):
            if node.table:
                actual = scope.resolve_qualified(node.table)
                if actual is None:
                    if node.table.lower() in ast.TRANSITION_TABLE_NAMES:
                        actual = rule.table
                    else:
                        actual = node.table.lower()
                if rule.schema.has_table(actual) and rule.schema.table(
                    actual
                ).has_column(node.column):
                    reads.add((actual, node.column.lower()))
            else:
                for table in scope.candidate_tables(node.column, rule):
                    reads.add((table, node.column.lower()))
        elif isinstance(node, ast.FuncCall) and node.star:
            # count(*): pure row-membership — no column values read.
            continue
        elif isinstance(node, ast.Exists):
            _column_reads_of_select(
                node.subquery, scope, rule, reads, output_matters=False
            )
        elif isinstance(node, ast.InSubquery):
            _column_reads_of_select(
                node.subquery, scope, rule, reads, output_matters=True
            )
        elif isinstance(node, ast.ScalarSubquery):
            _column_reads_of_select(
                node.subquery, scope, rule, reads, output_matters=True
            )
