"""Termination analysis — Section 5, Theorem 5.1.

The *triggering graph* ``TG_R`` has the rules as nodes and an edge
``ri → rj`` iff ``rj ∈ Triggers(ri)``. Theorem 5.1: if ``TG_R`` is
acyclic, rule processing is guaranteed to terminate.

When cycles exist the analyzer reports the strong components and every
elementary cycle inside them, so the user can inspect each cycle and —
per the interactive process the paper describes — *certify* that some
rule on it guarantees progress (its condition eventually becomes false,
or its action eventually has no effect). A certified rule is treated as
breaking every cycle through it.

As an automatic assist (the paper's first special case), the analyzer
detects *delete-only* rules on a cycle: a rule whose action only deletes
from tables that no rule on the same strong component inserts into —
such a rule's action eventually has no effect, so cycles through it
terminate.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.derived import DerivedDefinitions
from repro.errors import AnalysisError
from repro.lang import ast


class TriggeringGraph:
    """``TG_R``: nodes are rule names; edges follow ``Triggers``."""

    def __init__(self, definitions: DerivedDefinitions) -> None:
        self.definitions = definitions
        self.nodes: tuple[str, ...] = definitions.rule_names
        self.successors: dict[str, frozenset[str]] = {
            name: definitions.triggers(name) for name in self.nodes
        }

    @classmethod
    def from_successors(
        cls,
        nodes,
        successors: dict[str, frozenset[str]],
        definitions: DerivedDefinitions | None = None,
    ) -> "TriggeringGraph":
        """Build a graph over an explicit edge relation (reduced or
        refined graphs reuse the SCC/cycle machinery this way)."""
        graph = cls.__new__(cls)
        graph.definitions = definitions
        graph.nodes = tuple(nodes)
        graph.successors = {
            node: frozenset(successors.get(node, frozenset()))
            for node in graph.nodes
        }
        return graph

    def restricted_to(self, members: frozenset[str]) -> "TriggeringGraph":
        """The induced subgraph on *members*."""
        return TriggeringGraph.from_successors(
            tuple(node for node in self.nodes if node in members),
            {
                node: self.successors[node] & members
                for node in self.nodes
                if node in members
            },
            self.definitions,
        )

    def edges(self) -> list[tuple[str, str]]:
        return [
            (source, target)
            for source in self.nodes
            for target in sorted(self.successors[source])
        ]

    # ------------------------------------------------------------------

    def strong_components(self) -> list[frozenset[str]]:
        """Tarjan's SCCs, in reverse topological order."""
        index_counter = 0
        indices: dict[str, int] = {}
        lowlinks: dict[str, int] = {}
        on_stack: set[str] = set()
        stack: list[str] = []
        components: list[frozenset[str]] = []

        # Iterative Tarjan to survive deep graphs.
        for root in self.nodes:
            if root in indices:
                continue
            work: list[tuple[str, iter]] = [(root, iter(sorted(self.successors[root])))]
            indices[root] = lowlinks[root] = index_counter
            index_counter += 1
            stack.append(root)
            on_stack.add(root)
            while work:
                node, successor_iter = work[-1]
                advanced = False
                for successor in successor_iter:
                    if successor not in indices:
                        indices[successor] = lowlinks[successor] = index_counter
                        index_counter += 1
                        stack.append(successor)
                        on_stack.add(successor)
                        work.append(
                            (successor, iter(sorted(self.successors[successor])))
                        )
                        advanced = True
                        break
                    if successor in on_stack:
                        lowlinks[node] = min(
                            lowlinks[node], indices[successor]
                        )
                if advanced:
                    continue
                work.pop()
                if work:
                    parent = work[-1][0]
                    lowlinks[parent] = min(lowlinks[parent], lowlinks[node])
                if lowlinks[node] == indices[node]:
                    component = []
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        component.append(member)
                        if member == node:
                            break
                    components.append(frozenset(component))
        return components

    def cyclic_components(self) -> list[frozenset[str]]:
        """Strong components containing a cycle (size > 1, or a self-loop)."""
        return [
            component
            for component in self.strong_components()
            if len(component) > 1
            or next(iter(component)) in self.successors[next(iter(component))]
        ]

    def elementary_cycles(self, limit: int = 1_000) -> list[tuple[str, ...]]:
        """Elementary cycles (Johnson-style bounded enumeration).

        Each cycle is reported once, starting from its lexicographically
        least node. Enumeration stops at *limit* cycles.
        """
        cycles: list[tuple[str, ...]] = []
        nodes_sorted = sorted(self.nodes)

        for start in nodes_sorted:
            if len(cycles) >= limit:
                break
            # DFS allowing only nodes >= start, so each cycle is found
            # exactly once (rooted at its least node). Explicit stack of
            # (node, successor iterator) frames: generated rule graphs
            # reach thousands of nodes, past the recursion limit.
            path = [start]
            on_path = {start}
            work = [(start, iter(sorted(self.successors[start])))]
            while work and len(cycles) < limit:
                node, successor_iter = work[-1]
                advanced = False
                for successor in successor_iter:
                    if successor == start:
                        cycles.append(tuple(path))
                        if len(cycles) >= limit:
                            break
                    elif successor > start and successor not in on_path:
                        path.append(successor)
                        on_path.add(successor)
                        work.append(
                            (successor, iter(sorted(self.successors[successor])))
                        )
                        advanced = True
                        break
                if not advanced:
                    work.pop()
                    on_path.discard(node)
                    path.pop()
        return cycles


@dataclass
class TerminationAnalysis:
    """The outcome of termination analysis (Theorem 5.1 + certifications)."""

    #: True iff termination is guaranteed.
    guaranteed: bool
    #: cyclic strong components of the triggering graph (before certification)
    cyclic_components: list[frozenset[str]]
    #: cyclic strong components remaining after certified rules are removed
    uncertified_components: list[frozenset[str]]
    #: rules the user certified as progress-guaranteeing
    certified_rules: frozenset[str]
    #: per cyclic component, rules the delete-only heuristic would certify
    auto_certifiable: dict[frozenset[str], frozenset[str]] = field(
        default_factory=dict
    )
    graph: TriggeringGraph | None = None

    @property
    def may_not_terminate(self) -> bool:
        return not self.guaranteed

    def responsible_rules(self) -> frozenset[str]:
        """The rules involved in unresolved cycles (what the analyzer
        'isolates' for the user)."""
        rules: set[str] = set()
        for component in self.uncertified_components:
            rules |= component
        return frozenset(rules)

    def describe(self) -> str:
        if self.guaranteed:
            if self.cyclic_components:
                return (
                    "termination guaranteed (all "
                    f"{len(self.cyclic_components)} triggering cycles "
                    "certified)"
                )
            return "termination guaranteed (triggering graph is acyclic)"
        components = "; ".join(
            "{" + ", ".join(sorted(component)) + "}"
            for component in self.uncertified_components
        )
        return f"may not terminate: cyclic rule groups {components}"


class TerminationAnalyzer:
    """Builds ``TG_R`` and applies Theorem 5.1 with user certifications."""

    def __init__(self, definitions: DerivedDefinitions) -> None:
        self.definitions = definitions
        self.graph = TriggeringGraph(definitions)
        self._certified_rules: set[str] = set()

    # ------------------------------------------------------------------
    # Certification (the interactive loop of Section 5)
    # ------------------------------------------------------------------

    def certify_rule(self, rule: str) -> None:
        """Certify that repeated consideration of cycles through *rule*
        makes its condition eventually false or its action ineffective."""
        rule = rule.lower()
        if rule not in self.graph.successors:
            raise AnalysisError(f"unknown rule {rule!r}")
        self._certified_rules.add(rule)

    def revoke_rule_certification(self, rule: str) -> bool:
        rule = rule.lower()
        if rule in self._certified_rules:
            self._certified_rules.discard(rule)
            return True
        return False

    @property
    def certified_rules(self) -> frozenset[str]:
        return frozenset(self._certified_rules)

    # ------------------------------------------------------------------

    def auto_certifiable_rules(
        self, component: frozenset[str]
    ) -> frozenset[str]:
        """Delete-only heuristic (paper's first special case).

        A rule qualifies when its action performs only deletions, and no
        rule in the same strong component inserts into any table it
        deletes from: repetition must eventually find those tables empty.
        """
        qualifying: set[str] = set()
        inserted_tables = {
            event.table
            for member in component
            for event in self.definitions.performs(member)
            if event.kind == "I"
        }
        for member in component:
            performs = self.definitions.performs(member)
            if not performs:
                continue
            if any(event.kind != "D" for event in performs):
                continue
            deleted_tables = {event.table for event in performs}
            if deleted_tables & inserted_tables:
                continue
            qualifying.add(member)
        return frozenset(qualifying)

    def auto_certifiable_monotonic_rules(
        self, component: frozenset[str]
    ) -> frozenset[str]:
        """Monotonic-update heuristic (paper's second special case).

        A rule qualifies when every action is an UPDATE whose
        assignments all drift a column monotonically by a positive
        literal (``c = c ± k``) *toward a literal bound enforced by the
        same statement's WHERE clause* (``c < N`` for ``+k``, ``c > N``
        for ``-k``), and no other rule in the strong component writes
        any of those columns or inserts into those tables. Each
        consideration then strictly shrinks the set's distance to the
        bound, so the rule's action eventually has no effect.
        """
        qualifying: set[str] = set()
        for member in component:
            rule = self.definitions.ruleset.rule(member)
            drifts = _monotonic_drifts(rule)
            if drifts is None:
                continue
            if _component_interferes(self.definitions, component, member, drifts):
                continue
            qualifying.add(member)
        return frozenset(qualifying)

    # ------------------------------------------------------------------

    def analyze(self) -> TerminationAnalysis:
        """Theorem 5.1 plus certification: termination is guaranteed iff
        every cyclic strong component contains a certified rule whose
        removal breaks all of its cycles."""
        cyclic = self.graph.cyclic_components()
        uncertified = self._components_after_certification()
        auto = {
            component: (
                self.auto_certifiable_rules(component)
                | self.auto_certifiable_monotonic_rules(component)
            )
            for component in cyclic
        }
        return TerminationAnalysis(
            guaranteed=not uncertified,
            cyclic_components=cyclic,
            uncertified_components=uncertified,
            certified_rules=self.certified_rules,
            auto_certifiable=auto,
            graph=self.graph,
        )

    def apply_auto_certifications(self) -> frozenset[str]:
        """Certify every rule the heuristics can justify; returns them."""
        certified: set[str] = set()
        for component in self.graph.cyclic_components():
            for rule in self.auto_certifiable_rules(component):
                certified.add(rule)
            for rule in self.auto_certifiable_monotonic_rules(component):
                certified.add(rule)
        for rule in certified:
            self.certify_rule(rule)
        return frozenset(certified)

    def _components_after_certification(self) -> list[frozenset[str]]:
        """Cyclic components of ``TG_R`` minus certified rules.

        Removing a certified rule removes the node entirely: any cycle
        through it is broken because the rule stops propagating once its
        condition goes false or its action stops having effect.
        """
        if not self._certified_rules:
            return self.graph.cyclic_components()
        keep = [
            node
            for node in self.graph.nodes
            if node not in self._certified_rules
        ]
        reduced_successors = {
            node: frozenset(
                successor
                for successor in self.graph.successors[node]
                if successor not in self._certified_rules
            )
            for node in keep
        }
        reduced = TriggeringGraph.__new__(TriggeringGraph)
        reduced.definitions = self.definitions
        reduced.nodes = tuple(keep)
        reduced.successors = reduced_successors
        return reduced.cyclic_components()


# ----------------------------------------------------------------------
# Monotonic-update pattern matching (syntactic; deliberately narrow)
# ----------------------------------------------------------------------


def _literal_int(expr) -> int | None:
    if isinstance(expr, ast.Literal) and isinstance(expr.value, int) and not (
        isinstance(expr.value, bool)
    ):
        return expr.value
    if (
        isinstance(expr, ast.UnaryOp)
        and expr.op == "-"
        and isinstance(expr.operand, ast.Literal)
        and isinstance(expr.operand.value, int)
    ):
        return -expr.operand.value
    return None


def _drift_of_assignment(
    table: str, assignment: ast.Assignment
) -> tuple[str, str, int] | None:
    """Match ``c = c + k`` / ``c = c - k`` with literal positive k.

    Returns ``(table, column, signed_step)`` or None.
    """
    value = assignment.value
    if not isinstance(value, ast.BinaryOp) or value.op not in ("+", "-"):
        return None
    column = assignment.column.lower()

    def is_self_ref(expr) -> bool:
        return (
            isinstance(expr, ast.ColumnRef)
            and expr.column.lower() == column
            and (expr.table is None or expr.table.lower() == table)
        )

    if value.op == "+":
        if is_self_ref(value.left):
            step = _literal_int(value.right)
        elif is_self_ref(value.right):
            step = _literal_int(value.left)
        else:
            return None
        if step is None or step == 0:
            return None
        return (table, column, step)

    # value.op == "-": only c - k is monotone (k - c is not a drift).
    if not is_self_ref(value.left):
        return None
    step = _literal_int(value.right)
    if step is None or step <= 0:
        return None
    return (table, column, -step)


def _conjuncts(expr):
    if isinstance(expr, ast.BinaryOp) and expr.op == "and":
        yield from _conjuncts(expr.left)
        yield from _conjuncts(expr.right)
    else:
        yield expr


def _bounds_column(
    where, table: str, column: str, direction: int
) -> bool:
    """True when a WHERE conjunct bounds *column* against the drift:
    ``c < N`` / ``c <= N`` for upward drift, ``c > N`` / ``c >= N`` for
    downward (literal N; reversed operand order handled)."""
    if where is None:
        return False
    upward = direction > 0
    wanted_ops = ("<", "<=") if upward else (">", ">=")
    flipped_ops = (">", ">=") if upward else ("<", "<=")

    def is_column(expr) -> bool:
        return (
            isinstance(expr, ast.ColumnRef)
            and expr.column.lower() == column
            and (expr.table is None or expr.table.lower() == table)
        )

    for conjunct in _conjuncts(where):
        if not isinstance(conjunct, ast.BinaryOp):
            continue
        if conjunct.op in wanted_ops and is_column(conjunct.left) and (
            _literal_int(conjunct.right) is not None
        ):
            return True
        if conjunct.op in flipped_ops and is_column(conjunct.right) and (
            _literal_int(conjunct.left) is not None
        ):
            return True
    return False


def _monotonic_drifts(rule) -> list[tuple[str, str, int]] | None:
    """All of *rule*'s actions as bounded monotonic drifts, or None.

    Every action must be an UPDATE whose assignments each drift a column
    monotonically and whose WHERE bounds that column against the drift.
    """
    drifts: list[tuple[str, str, int]] = []
    for action in rule.actions:
        if not isinstance(action, ast.Update):
            return None
        table = action.table.lower()
        for assignment in action.assignments:
            drift = _drift_of_assignment(table, assignment)
            if drift is None:
                return None
            if not _bounds_column(action.where, table, drift[1], drift[2]):
                return None
            drifts.append(drift)
    return drifts or None


# ----------------------------------------------------------------------
# Layered termination report (chase-grade analysis, Section 5 extended)
# ----------------------------------------------------------------------

#: Ordered analysis modes: each subsumes the previous one.
TERMINATION_MODES = ("tg", "stratified", "critical")

VERDICT_AUTO = "auto-certified"
VERDICT_USER = "user-certified"
VERDICT_WITNESS = "witness-nonterminating"
VERDICT_UNKNOWN = "unknown"

#: Analyzer labels for auto-certified verdicts, weakest first.
ANALYZER_DELETE_ONLY = "delete-only"
ANALYZER_MONOTONIC = "monotonic"
ANALYZER_STRATIFIED = "stratified"
ANALYZER_CRITICAL = "critical-instance"


@dataclass(frozen=True)
class ComponentVerdict:
    """Per-cycle verdict of the layered termination analysis.

    ``verdict`` is one of ``auto-certified``, ``user-certified``,
    ``witness-nonterminating`` or ``unknown``; for auto-certified
    components ``analyzer`` names the weakest layer that discharged the
    cycle (``delete-only | monotonic | stratified | critical-instance``).
    """

    component: tuple[str, ...]
    verdict: str
    analyzer: str | None = None
    certified_rules: tuple[str, ...] = ()
    stratum: int | None = None
    detail: str = ""
    witness: object | None = None

    @property
    def discharged(self) -> bool:
        return self.verdict in (VERDICT_AUTO, VERDICT_USER)

    def label(self) -> str:
        if self.verdict == VERDICT_AUTO and self.analyzer:
            return f"{VERDICT_AUTO}({self.analyzer})"
        return self.verdict

    def to_dict(self) -> dict:
        payload = {
            "component": list(self.component),
            "verdict": self.verdict,
            "analyzer": self.analyzer,
            "certified_rules": list(self.certified_rules),
            "stratum": self.stratum,
            "detail": self.detail,
        }
        if self.witness is not None:
            payload["witness"] = self.witness.to_dict()
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "ComponentVerdict":
        witness = None
        if payload.get("witness") is not None:
            from repro.analysis.critical import Witness

            witness = Witness.from_dict(payload["witness"])
        return cls(
            component=tuple(payload["component"]),
            verdict=payload["verdict"],
            analyzer=payload.get("analyzer"),
            certified_rules=tuple(payload.get("certified_rules", ())),
            stratum=payload.get("stratum"),
            detail=payload.get("detail", ""),
            witness=witness,
        )


@dataclass
class TerminationReport:
    """Outcome of the layered (stratified / critical-instance) analysis.

    One :class:`ComponentVerdict` per cyclic strong component of the
    *base* triggering graph; ``strata`` maps each rule to its stratum in
    the refined-graph condensation (empty in plain ``tg`` mode).
    """

    mode: str
    verdicts: list[ComponentVerdict]
    strata: dict[str, int] = field(default_factory=dict)
    pruned_edges: list[tuple[str, str, str]] = field(default_factory=list)
    base: TerminationAnalysis | None = None

    @property
    def terminates(self) -> bool:
        return all(verdict.discharged for verdict in self.verdicts)

    @property
    def has_witness(self) -> bool:
        return any(v.verdict == VERDICT_WITNESS for v in self.verdicts)

    def witnesses(self) -> list:
        return [
            verdict.witness
            for verdict in self.verdicts
            if verdict.witness is not None
        ]

    def verdict_for(self, rule: str) -> ComponentVerdict | None:
        rule = rule.lower()
        for verdict in self.verdicts:
            if rule in verdict.component:
                return verdict
        return None

    def describe(self) -> str:
        if not self.verdicts:
            return (
                f"termination guaranteed [{self.mode}] "
                "(triggering graph is acyclic)"
            )
        if self.terminates:
            return (
                f"termination guaranteed [{self.mode}] ("
                + "; ".join(
                    "{" + ", ".join(v.component) + "}: " + v.label()
                    for v in self.verdicts
                )
                + ")"
            )
        bad = "; ".join(
            "{" + ", ".join(v.component) + "}: " + v.label()
            for v in self.verdicts
            if not v.discharged
        )
        prefix = (
            "non-terminating"
            if self.has_witness
            else "may not terminate"
        )
        return f"{prefix} [{self.mode}]: {bad}"

    def to_dict(self) -> dict:
        return {
            "mode": self.mode,
            "terminates": self.terminates,
            "verdicts": [verdict.to_dict() for verdict in self.verdicts],
            "strata": dict(sorted(self.strata.items())),
            "pruned_edges": [list(edge) for edge in self.pruned_edges],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "TerminationReport":
        return cls(
            mode=payload["mode"],
            verdicts=[
                ComponentVerdict.from_dict(entry)
                for entry in payload.get("verdicts", ())
            ],
            strata={
                rule: int(stratum)
                for rule, stratum in payload.get("strata", {}).items()
            },
            pruned_edges=[
                (edge[0], edge[1], edge[2])
                for edge in payload.get("pruned_edges", ())
            ],
        )


def _component_stratum(
    component: frozenset[str], strata: dict[str, int]
) -> int | None:
    values = [strata[rule] for rule in component if rule in strata]
    return min(values) if values else None


def build_termination_report(
    ruleset,
    *,
    mode: str = "stratified",
    certified: tuple[str, ...] = (),
    definitions: DerivedDefinitions | None = None,
    find_witnesses: bool = True,
    rules_source: str | None = None,
    witness_max_states: int = 400,
    witness_max_steps: int = 300,
) -> TerminationReport:
    """Run the layered termination analysis at the requested *mode*.

    ``tg`` reproduces Theorem 5.1 plus the per-rule heuristics;
    ``stratified`` adds refined-graph pruning and the combined
    non-increasing fixpoint; ``critical`` additionally runs the
    critical-instance saturation and, for still-undischarged cycles,
    searches for a concrete non-termination witness. Layers are tried
    weakest-first, so each verdict names the cheapest analyzer that
    discharges its cycle and the mode hierarchy is monotone.
    """
    if mode not in TERMINATION_MODES:
        raise AnalysisError(f"unknown termination mode {mode!r}")
    if definitions is None:
        definitions = DerivedDefinitions(ruleset)
    analyzer = TerminationAnalyzer(definitions)
    for rule in certified:
        analyzer.certify_rule(rule)
    base = analyzer.analyze()

    stratification = None
    critical = None
    strata: dict[str, int] = {}
    pruned: list[tuple[str, str, str]] = []
    if mode in ("stratified", "critical"):
        from repro.analysis.stratification import StratificationAnalyzer

        stratification = StratificationAnalyzer(definitions).analyze()
        strata = dict(stratification.strata)
        pruned = [
            (edge.source, edge.target, edge.reason)
            for edge in stratification.pruned_edges
        ]
    if mode == "critical":
        from repro.analysis.critical import CriticalInstanceAnalyzer

        critical = CriticalInstanceAnalyzer(ruleset, definitions).analyze()

    reduced_cyclic = base.uncertified_components
    verdicts: list[ComponentVerdict] = []
    for component in sorted(base.cyclic_components, key=sorted):
        members = tuple(sorted(component))
        stratum = _component_stratum(component, strata)

        # Layer 0: user certification (removal of certified rules broke
        # every cycle of this component).
        if analyzer.certified_rules and not any(
            reduced <= component for reduced in reduced_cyclic
        ):
            verdicts.append(
                ComponentVerdict(
                    members,
                    VERDICT_USER,
                    certified_rules=tuple(
                        sorted(component & analyzer.certified_rules)
                    ),
                    stratum=stratum,
                    detail="user-certified rules break every cycle",
                )
            )
            continue

        # Layer 1: the paper's per-rule heuristics on the original graph.
        simple = None
        for label, rules in (
            (ANALYZER_DELETE_ONLY, analyzer.auto_certifiable_rules(component)),
            (
                ANALYZER_MONOTONIC,
                analyzer.auto_certifiable_monotonic_rules(component),
            ),
        ):
            if not rules:
                continue
            remaining = analyzer.graph.restricted_to(component - rules)
            if not remaining.cyclic_components():
                simple = (label, rules)
                break
        if simple is not None:
            label, rules = simple
            verdicts.append(
                ComponentVerdict(
                    members,
                    VERDICT_AUTO,
                    analyzer=label,
                    certified_rules=tuple(sorted(rules)),
                    stratum=stratum,
                    detail=f"{label} rules break every cycle",
                )
            )
            continue

        # Layer 2: refined graph + combined non-increasing fixpoint.
        if stratification is not None:
            discharged = stratification.certify_component(component, analyzer)
            if discharged is not None:
                verdicts.append(
                    ComponentVerdict(
                        members,
                        VERDICT_AUTO,
                        analyzer=ANALYZER_STRATIFIED,
                        certified_rules=tuple(sorted(discharged.rules)),
                        stratum=stratum,
                        detail=discharged.detail,
                    )
                )
                continue

        # Layer 3: critical-instance tail saturation.
        if critical is not None:
            discharged = critical.certify_component(
                component, stratification, analyzer
            )
            if discharged is not None:
                verdicts.append(
                    ComponentVerdict(
                        members,
                        VERDICT_AUTO,
                        analyzer=ANALYZER_CRITICAL,
                        certified_rules=tuple(sorted(discharged.rules)),
                        stratum=stratum,
                        detail=discharged.detail,
                    )
                )
                continue

        # Layer 4: look for a concrete non-termination witness.
        if mode == "critical" and find_witnesses:
            from repro.analysis.critical import find_witness

            witness = find_witness(
                ruleset,
                component,
                rules_source=rules_source,
                max_states=witness_max_states,
                max_steps=witness_max_steps,
            )
            if witness is not None:
                verdicts.append(
                    ComponentVerdict(
                        members,
                        VERDICT_WITNESS,
                        stratum=stratum,
                        detail=witness.detail,
                        witness=witness,
                    )
                )
                continue

        verdicts.append(
            ComponentVerdict(
                members,
                VERDICT_UNKNOWN,
                stratum=stratum,
                detail="no analyzer in this mode discharges the cycle",
            )
        )

    return TerminationReport(
        mode=mode,
        verdicts=verdicts,
        strata=strata,
        pruned_edges=pruned,
        base=base,
    )


def _component_interferes(
    definitions: DerivedDefinitions,
    component: frozenset[str],
    member: str,
    drifts: list[tuple[str, str, int]],
) -> bool:
    """True when another rule in the component writes a drifted column
    or inserts into a drifted table (which could undo the progress)."""
    drifted_columns = {(table, column) for table, column, __ in drifts}
    drifted_tables = {table for table, __, __ in drifts}
    for other in component:
        if other == member:
            continue
        for event in definitions.performs(other):
            if event.kind == "I" and event.table in drifted_tables:
                return True
            if event.kind == "U" and (event.table, event.column) in (
                drifted_columns
            ):
                return True
    return False
