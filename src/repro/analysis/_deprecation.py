"""Deprecation policy for the per-property analyzer classes.

Since the introduction of the shared pairwise-analysis engine
(:mod:`repro.analysis.engine`), the supported entry point for the
per-property analyses is the session façade
:class:`~repro.analysis.analyzer.RuleAnalyzer` (or, for lower-level
control, an explicit :class:`~repro.analysis.engine.AnalysisEngine`).

Direct construction of :class:`ConfluenceAnalyzer`,
:class:`PartialConfluenceAnalyzer` and
:class:`ObservableDeterminismAnalyzer` keeps working — it is the
reference, memo-free code path and the tests exercise it — but it
bypasses the engine's memo tables, invalidation tracking and counters,
so it emits a :class:`DeprecationWarning`. The building-block analyzers
(:class:`CommutativityAnalyzer`, :class:`TerminationAnalyzer`) are not
deprecated: the engine is built from them.
"""

from __future__ import annotations

import warnings


def warn_direct_construction(class_name: str) -> None:
    """Emit the standard deprecation warning for *class_name*."""
    warnings.warn(
        f"constructing {class_name} directly is deprecated; use the "
        "RuleAnalyzer session façade (repro.RuleAnalyzer) or an "
        "AnalysisEngine, which share memoized pair verdicts across "
        "analyses. Direct construction still works but re-judges every "
        "pair from scratch.",
        DeprecationWarning,
        stacklevel=3,
    )
