"""Deprecation policy for the per-property analyzer classes.

Since the introduction of the shared pairwise-analysis engine
(:mod:`repro.analysis.engine`), the supported entry point for the
per-property analyses is the session façade
:class:`~repro.analysis.analyzer.RuleAnalyzer` (or, for lower-level
control, an explicit :class:`~repro.analysis.engine.AnalysisEngine`).

Direct construction of :class:`ConfluenceAnalyzer`,
:class:`PartialConfluenceAnalyzer` and
:class:`ObservableDeterminismAnalyzer` keeps working — it is the
reference, memo-free code path and the tests exercise it — but it
bypasses the engine's memo tables, invalidation tracking and counters,
so it emits a :class:`DeprecationWarning`. The building-block analyzers
(:class:`CommutativityAnalyzer`, :class:`TerminationAnalyzer`) are not
deprecated: the engine is built from them.
"""

from __future__ import annotations

import warnings


def warn_legacy_kwargs(api: str, names: list[str] | tuple[str, ...]) -> None:
    """Deprecation warning for pre-ExecutionConfig keyword arguments.

    Since the unified session API (:class:`repro.config.ExecutionConfig`),
    the supported way to select execution options — condition matching,
    the planned executor, the incremental substrate, durability — is one
    frozen config object passed as ``config=``. The scattered keywords
    keep working one release; each call emits this warning once.
    """
    rendered = ", ".join(f"{name}=" for name in names)
    warnings.warn(
        f"passing {rendered} to {api} is deprecated; pass an "
        "ExecutionConfig (repro.ExecutionConfig) via config= instead. "
        "The legacy keywords map onto config fields (planner=False "
        "selects matching='naive' plus the naive statement executor) "
        "and will be removed in the release after next.",
        DeprecationWarning,
        stacklevel=4,
    )


def warn_direct_construction(class_name: str) -> None:
    """Emit the standard deprecation warning for *class_name*."""
    warnings.warn(
        f"constructing {class_name} directly is deprecated; use the "
        "RuleAnalyzer session façade (repro.RuleAnalyzer) or an "
        "AnalysisEngine, which share memoized pair verdicts across "
        "analyses. Direct construction still works but re-judges every "
        "pair from scratch.",
        DeprecationWarning,
        stacklevel=3,
    )
