"""Incremental analysis (Section 9 future work, implemented).

"In many cases it is clear that most results of previous analysis are
still valid and only incremental additional analysis needs to be
performed. At the coarsest level, most rule applications can be
partitioned into groups of rules such that, across partitions, rules
reference different sets of tables and have no priority ordering. ...
analysis can be applied separately to each partition, and it needs to
be repeated for a partition only when rules in that partition change."

:class:`IncrementalAnalyzer` maintains a rule application as editable
sources, partitions it (see :mod:`repro.analysis.partitioning`), and
caches per-partition analysis results keyed by a content fingerprint.
Editing one rule re-analyzes only the partitions whose fingerprints
changed (usually one).

Why per-partition results combine soundly:

* **Termination** — a ``Triggers`` edge implies a shared table, so the
  triggering graph never crosses partitions: global acyclicity is the
  conjunction of per-partition acyclicity.
* **Confluence** — an unordered cross-partition pair shares no tables
  and no triggering, so none of Lemma 6.1's conditions can fire: every
  cross-partition pair commutes, and Definition 6.5 reduces to the
  per-partition checks.
* **Observable determinism** — *not* table-local: two observable rules
  in different partitions interleave their observable actions even
  though they "have no effect on each other". Under the Obs reduction,
  such a pair is noncommutative and (being cross-partition) necessarily
  unordered, so global observable determinism requires, beyond the
  per-partition analyses, that at most one partition contains
  observable rules.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.confluence import ConfluenceAnalysis
from repro.analysis.derived import DerivedDefinitions
from repro.analysis.engine import AnalysisEngine
from repro.analysis.observable import ObservableDeterminismAnalysis
from repro.analysis.partitioning import partition_rules
from repro.analysis.termination import TerminationAnalysis
from repro.errors import RuleError
from repro.lang.parser import parse_rule
from repro.lang.pretty import format_rule
from repro.rules.rule import Rule
from repro.rules.ruleset import RuleSet
from repro.schema.catalog import Schema


@dataclass
class PartitionResult:
    """Cached analysis of one partition."""

    fingerprint: tuple
    rules: frozenset[str]
    termination: TerminationAnalysis
    confluence: ConfluenceAnalysis
    observable: ObservableDeterminismAnalysis
    observable_rules: frozenset[str]


@dataclass
class IncrementalReport:
    """Combined verdicts plus re-analysis accounting."""

    terminates: bool
    confluent: bool
    observably_deterministic: bool
    partitions: list[PartitionResult] = field(default_factory=list)
    partitions_reanalyzed: int = 0
    partitions_reused: int = 0
    #: partitions (by rule sets) holding observable rules — more than one
    #: defeats observable determinism regardless of per-partition results
    observable_partitions: list[frozenset[str]] = field(default_factory=list)

    def summary(self) -> str:
        return (
            f"partitions={len(self.partitions)} "
            f"(reanalyzed {self.partitions_reanalyzed}, reused "
            f"{self.partitions_reused}); terminates={self.terminates}, "
            f"confluent={self.confluent}, observably deterministic="
            f"{self.observably_deterministic}"
        )


class IncrementalAnalyzer:
    """An editable rule application with cached per-partition analysis."""

    def __init__(self, schema: Schema) -> None:
        self.schema = schema
        self._sources: dict[str, str] = {}
        self._cache: dict[tuple, PartitionResult] = {}
        self._certified_commutes: set[frozenset[str]] = set()
        self._certified_termination: set[str] = set()
        self._extra_priorities: set[tuple[str, str]] = set()

    # ------------------------------------------------------------------
    # Editing
    # ------------------------------------------------------------------

    def define_rule(self, source: str) -> str:
        """Add or replace a rule from source text; returns its name."""
        definition = parse_rule(source)
        Rule(definition, self.schema)  # validate eagerly
        name = definition.name.lower()
        self._sources[name] = format_rule(definition)
        return name

    def remove_rule(self, name: str) -> None:
        name = name.lower()
        if name not in self._sources:
            raise RuleError(f"unknown rule {name!r}")
        del self._sources[name]
        self._certified_termination.discard(name)
        self._certified_commutes = {
            pair for pair in self._certified_commutes if name not in pair
        }
        self._extra_priorities = {
            pair for pair in self._extra_priorities if name not in pair
        }

    def certify_commutes(self, first: str, second: str) -> None:
        self._certified_commutes.add(frozenset({first.lower(), second.lower()}))

    def certify_termination(self, rule: str) -> None:
        self._certified_termination.add(rule.lower())

    def add_priority(self, higher: str, lower: str) -> None:
        self._extra_priorities.add((higher.lower(), lower.lower()))

    @property
    def rule_names(self) -> tuple[str, ...]:
        return tuple(self._sources)

    # ------------------------------------------------------------------
    # Analysis
    # ------------------------------------------------------------------

    def build_ruleset(self) -> RuleSet:
        ruleset = RuleSet.parse("\n\n".join(self._sources.values()), self.schema)
        for higher, lower in sorted(self._extra_priorities):
            ruleset.add_priority(higher, lower)
        return ruleset

    def analyze(self) -> IncrementalReport:
        """Analyze all partitions, reusing cached results when possible."""
        ruleset = self.build_ruleset()
        definitions = DerivedDefinitions(ruleset)
        partitions = partition_rules(definitions, ruleset.priorities)

        report = IncrementalReport(
            terminates=True, confluent=True, observably_deterministic=True
        )
        fresh_cache: dict[tuple, PartitionResult] = {}

        for partition in partitions:
            fingerprint = self._fingerprint(partition, ruleset)
            cached = self._cache.get(fingerprint)
            if cached is not None:
                result = cached
                report.partitions_reused += 1
            else:
                result = self._analyze_partition(
                    partition, fingerprint, ruleset
                )
                report.partitions_reanalyzed += 1
            fresh_cache[fingerprint] = result
            report.partitions.append(result)

            report.terminates &= result.termination.guaranteed
            report.confluent &= result.confluence.requirement_holds
            report.observably_deterministic &= (
                result.observable.confluence.requirement_holds
            )
            if result.observable_rules:
                report.observable_partitions.append(result.rules)

        # Cross-cutting obligations.
        report.confluent &= report.terminates  # Theorem 6.7
        # Theorem 8.1 needs full-R termination, and observable actions
        # from two independent partitions interleave nondeterministically.
        report.observably_deterministic &= report.terminates
        if len(report.observable_partitions) > 1:
            report.observably_deterministic = False

        self._cache = fresh_cache  # drop entries for vanished partitions
        return report

    # ------------------------------------------------------------------

    def _fingerprint(self, partition: frozenset[str], ruleset: RuleSet) -> tuple:
        """Content hash of everything a partition's analysis depends on."""
        sources = tuple(
            (name, self._sources[name]) for name in sorted(partition)
        )
        priorities = tuple(
            sorted(
                (higher, lower)
                for higher, lower in ruleset.priorities.pairs()
                if higher in partition and lower in partition
            )
        )
        certifications = tuple(
            sorted(
                tuple(sorted(pair))
                for pair in self._certified_commutes
                if pair <= partition
            )
        )
        certified_termination = tuple(
            sorted(self._certified_termination & partition)
        )
        return (sources, priorities, certifications, certified_termination)

    def _analyze_partition(
        self,
        partition: frozenset[str],
        fingerprint: tuple,
        ruleset: RuleSet,
    ) -> PartitionResult:
        subset = ruleset.subset(partition)
        engine = AnalysisEngine(subset)
        for pair in self._certified_commutes:
            if pair <= partition:
                first, second = sorted(pair)
                engine.certify_commutes(first, second)
        for rule in self._certified_termination & partition:
            engine.certify_termination(rule)

        termination = engine.analyze_termination()
        confluence = engine.analyze_confluence()
        observable = engine.analyze_observable_determinism()

        observable_rules = frozenset(
            name
            for name in partition
            if engine.definitions.observable(name)
        )
        return PartitionResult(
            fingerprint=fingerprint,
            rules=partition,
            termination=termination,
            confluence=confluence,
            observable=observable,
            observable_rules=observable_rules,
        )
