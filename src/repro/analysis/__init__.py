"""Static analysis of production-rule behavior — the paper's contribution.

* :mod:`repro.analysis.derived` — Section 3's preliminary definitions
  (``Triggered-By``, ``Performs``, ``Triggers``, ``Reads``,
  ``Can-Untrigger``, ``Observable``).
* :mod:`repro.analysis.termination` — Section 5: triggering graph,
  Theorem 5.1, cycle reporting and certification.
* :mod:`repro.analysis.commutativity` — Section 6.1: Lemma 6.1's
  syntactic conditions with user certifications.
* :mod:`repro.analysis.confluence` — Sections 6.3–6.4: the Confluence
  Requirement (Definition 6.5) and repair suggestions.
* :mod:`repro.analysis.partial_confluence` — Section 7: ``Sig(T')`` and
  Theorem 7.2.
* :mod:`repro.analysis.observable` — Section 8: the ``Obs`` reduction
  and Theorem 8.1.
* :mod:`repro.analysis.corollaries` — Corollaries 6.8–6.10 and 8.2.
* :mod:`repro.analysis.engine` — the shared memoized pairwise-analysis
  engine all the analyses above are served from.
* :mod:`repro.analysis.analyzer` — the interactive facade tying it all
  together (the paper's envisioned development environment).
"""

from repro.analysis.derived import (
    DerivedDefinitions,
    ObsExtendedDefinitions,
    OBS_TABLE,
)
from repro.analysis.commutativity import (
    CommutativityAnalyzer,
    NoncommutativityReason,
)
from repro.analysis.termination import (
    ComponentVerdict,
    TerminationAnalysis,
    TerminationAnalyzer,
    TerminationReport,
    TriggeringGraph,
    build_termination_report,
)
from repro.analysis.stratification import (
    StratificationAnalysis,
    StratificationAnalyzer,
)
from repro.analysis.critical import (
    CriticalAnalysis,
    CriticalInstanceAnalyzer,
    Witness,
    find_witness,
    replay_witness,
)
from repro.analysis.confluence import (
    ConfluenceAnalysis,
    ConfluenceAnalyzer,
    ConfluenceViolation,
    PairJudgment,
    RepairSuggestion,
    build_interference_sets,
    judge_unordered_pair,
)
from repro.analysis.engine import AnalysisEngine, EngineStats
from repro.analysis.partial_confluence import (
    PartialConfluenceAnalysis,
    PartialConfluenceAnalyzer,
    significant_rules,
)
from repro.analysis.observable import (
    ObservableDeterminismAnalysis,
    ObservableDeterminismAnalyzer,
)
from repro.analysis.corollaries import (
    CorollaryViolation,
    check_corollary_6_8,
    check_corollary_6_9,
    check_corollary_6_10,
    check_corollary_8_2,
)
from repro.analysis.analyzer import AnalysisReport, RuleAnalyzer
from repro.analysis.incremental import (
    IncrementalAnalyzer,
    IncrementalReport,
    PartitionResult,
)
from repro.analysis.partitioning import partition_rules
from repro.analysis.restricted import (
    initially_triggerable_rules,
    reachable_rules,
)

__all__ = [
    "DerivedDefinitions",
    "ObsExtendedDefinitions",
    "OBS_TABLE",
    "CommutativityAnalyzer",
    "NoncommutativityReason",
    "ComponentVerdict",
    "TerminationAnalysis",
    "TerminationAnalyzer",
    "TerminationReport",
    "TriggeringGraph",
    "build_termination_report",
    "StratificationAnalysis",
    "StratificationAnalyzer",
    "CriticalAnalysis",
    "CriticalInstanceAnalyzer",
    "Witness",
    "find_witness",
    "replay_witness",
    "ConfluenceAnalysis",
    "ConfluenceAnalyzer",
    "ConfluenceViolation",
    "PairJudgment",
    "RepairSuggestion",
    "build_interference_sets",
    "judge_unordered_pair",
    "AnalysisEngine",
    "EngineStats",
    "PartialConfluenceAnalysis",
    "PartialConfluenceAnalyzer",
    "significant_rules",
    "ObservableDeterminismAnalysis",
    "ObservableDeterminismAnalyzer",
    "CorollaryViolation",
    "check_corollary_6_8",
    "check_corollary_6_9",
    "check_corollary_6_10",
    "check_corollary_8_2",
    "AnalysisReport",
    "RuleAnalyzer",
    "IncrementalAnalyzer",
    "IncrementalReport",
    "PartitionResult",
    "partition_rules",
    "initially_triggerable_rules",
    "reachable_rules",
]
