"""Markdown rendering of a full analysis — the shareable artifact of the
paper's interactive development environment.

:func:`render_markdown` produces a self-contained document: the rule
inventory with derived definitions, the triggering graph and its
cycles, all three property verdicts with isolated problems and repair
suggestions, and (optionally) partial-confluence sections per requested
table group.
"""

from __future__ import annotations

from typing import Iterable

from repro.analysis.analyzer import AnalysisReport, RuleAnalyzer
from repro.rules.ruleset import RuleSet


def render_markdown(
    analyzer: RuleAnalyzer,
    report: AnalysisReport | None = None,
    partial_tables: Iterable[Iterable[str]] = (),
) -> str:
    """Render a full markdown analysis report for *analyzer*'s rule set."""
    ruleset = analyzer.ruleset
    if report is None:
        report = analyzer.analyze()

    lines: list[str] = []
    lines.append(f"# Rule analysis report — {len(ruleset)} rules")
    lines.append("")

    _verdict_table(lines, report)
    _rule_inventory(lines, analyzer, ruleset)
    _triggering_graph(lines, analyzer, report)
    _layered_termination_section(lines, report)
    _confluence_section(lines, report)
    _observable_section(lines, report)

    for tables in partial_tables:
        _partial_section(lines, analyzer, list(tables))

    return "\n".join(lines) + "\n"


def _verdict_table(lines: list[str], report: AnalysisReport) -> None:
    def verdict(value: bool) -> str:
        return "**guaranteed**" if value else "*may not hold*"

    lines.append("## Verdicts")
    lines.append("")
    lines.append("| property | verdict |")
    lines.append("|---|---|")
    lines.append(f"| termination | {verdict(report.terminates)} |")
    lines.append(f"| confluence | {verdict(report.confluent)} |")
    lines.append(
        f"| observable determinism | {verdict(report.observably_deterministic)} |"
    )
    lines.append("")


def _rule_inventory(
    lines: list[str], analyzer: RuleAnalyzer, ruleset: RuleSet
) -> None:
    definitions = analyzer.definitions
    lines.append("## Rules")
    lines.append("")
    lines.append(
        "| rule | on | triggered by | performs | observable |"
    )
    lines.append("|---|---|---|---|---|")
    for rule in ruleset:
        triggered_by = ", ".join(
            sorted(str(event) for event in definitions.triggered_by(rule.name))
        )
        performs = ", ".join(
            sorted(str(event) for event in definitions.performs(rule.name))
        )
        observable = "yes" if definitions.observable(rule.name) else ""
        lines.append(
            f"| `{rule.name}` | `{rule.table}` | {triggered_by} | "
            f"{performs or '—'} | {observable} |"
        )
    lines.append("")

    pairs = sorted(ruleset.priorities.direct_pairs())
    if pairs:
        lines.append("Priorities (direct): " + ", ".join(
            f"`{higher}` > `{lower}`" for higher, lower in pairs
        ))
        lines.append("")


def _triggering_graph(
    lines: list[str], analyzer: RuleAnalyzer, report: AnalysisReport
) -> None:
    lines.append("## Triggering graph (Theorem 5.1)")
    lines.append("")
    graph = analyzer.termination_analyzer.graph
    edges = graph.edges()
    if edges:
        lines.append(
            "Edges: "
            + ", ".join(f"`{source}` → `{target}`" for source, target in edges)
        )
    else:
        lines.append("No triggering edges.")
    lines.append("")

    termination = report.termination
    if termination.cyclic_components:
        lines.append("Cyclic rule groups:")
        lines.append("")
        for component in termination.cyclic_components:
            members = ", ".join(f"`{name}`" for name in sorted(component))
            suffix = []
            auto = termination.auto_certifiable.get(component, frozenset())
            if auto:
                suffix.append(
                    "auto-certifiable: "
                    + ", ".join(f"`{name}`" for name in sorted(auto))
                )
            if component & termination.certified_rules:
                suffix.append("certified by user")
            detail = f" ({'; '.join(suffix)})" if suffix else ""
            lines.append(f"- {{{members}}}{detail}")
        lines.append("")


def _layered_termination_section(
    lines: list[str], report: AnalysisReport
) -> None:
    layered = report.termination_report
    if layered is None:
        return
    lines.append(f"## Layered termination analysis (mode: {layered.mode})")
    lines.append("")
    if not layered.verdicts:
        lines.append("The triggering graph is acyclic; nothing to certify.")
        lines.append("")
        return
    lines.append("| cycle | verdict | stratum | detail |")
    lines.append("|---|---|---|---|")
    for verdict in layered.verdicts:
        members = ", ".join(f"`{name}`" for name in sorted(verdict.component))
        stratum = "—" if verdict.stratum is None else str(verdict.stratum)
        detail = verdict.detail or "—"
        lines.append(
            f"| {{{members}}} | {verdict.label()} | {stratum} | {detail} |"
        )
    lines.append("")
    if layered.pruned_edges:
        lines.append("Refined-graph edges pruned:")
        lines.append("")
        for source, target, reason in layered.pruned_edges:
            lines.append(f"- `{source}` → `{target}`: {reason}")
        lines.append("")
    for witness in layered.witnesses():
        members = ", ".join(f"`{name}`" for name in witness.component)
        trace = " → ".join(f"`{label}`" for label in witness.trace)
        lines.append(
            f"Non-termination witness for {{{members}}} "
            f"({witness.kind}): seed with "
            + "; ".join(f"`{stmt}`" for stmt in witness.statements)
            + f", then the run loops on {trace}. {witness.detail}."
        )
        lines.append("")


def _confluence_section(lines: list[str], report: AnalysisReport) -> None:
    lines.append("## Confluence (Definition 6.5)")
    lines.append("")
    confluence = report.confluence
    lines.append(
        f"{confluence.pairs_examined} unordered pairs examined; "
        f"{len(confluence.violations)} violations."
    )
    lines.append("")
    if confluence.violations:
        lines.append("| unordered pair | noncommuting witness | why |")
        lines.append("|---|---|---|")
        for violation in confluence.violations:
            why = "; ".join(str(reason) for reason in violation.reasons)
            lines.append(
                f"| (`{violation.pair_first}`, `{violation.pair_second}`) "
                f"| (`{violation.r1_member}`, `{violation.r2_member}`) "
                f"| {why} |"
            )
        lines.append("")
        lines.append("Suggested repairs:")
        lines.append("")
        for suggestion in confluence.suggestions():
            lines.append(f"- {suggestion.describe()}")
        lines.append("")


def _observable_section(lines: list[str], report: AnalysisReport) -> None:
    od = report.observable_determinism
    lines.append("## Observable determinism (Theorem 8.1)")
    lines.append("")
    if not od.observable_rules:
        lines.append("No observable rules.")
        lines.append("")
        return
    lines.append(
        "Observable rules: "
        + ", ".join(f"`{name}`" for name in sorted(od.observable_rules))
        + f"; Sig(Obs) = {{{', '.join(sorted(od.significant))}}}."
    )
    lines.append("")
    if od.confluence.violations:
        lines.append("Violations in Sig(Obs):")
        lines.append("")
        for violation in od.confluence.violations:
            lines.append(f"- {violation.describe()}")
        lines.append("")


def _partial_section(
    lines: list[str], analyzer: RuleAnalyzer, tables: list[str]
) -> None:
    analysis = analyzer.analyze_partial_confluence(tables)
    title = ", ".join(sorted(analysis.tables))
    lines.append(f"## Partial confluence w.r.t. {{{title}}} (Theorem 7.2)")
    lines.append("")
    lines.append(analysis.describe())
    lines.append("")
