"""Corollary checkers — Corollaries 6.8, 6.9, 6.10, and 8.2.

These are *properties guaranteed to hold* of any rule set our analysis
finds confluent (or observably deterministic). They serve two purposes
in the reproduction:

1. as simple developer guidelines (the paper's framing), exposed as
   checkable predicates;
2. as internal consistency checks — the test suite asserts them for
   every rule set the analyzers accept, which would catch
   implementation bugs in Definition 6.5 or the Sig computation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.commutativity import CommutativityAnalyzer
from repro.analysis.derived import DerivedDefinitions
from repro.rules.priorities import PriorityRelation


@dataclass(frozen=True)
class CorollaryViolation:
    """A counterexample to one of the corollaries."""

    corollary: str
    first: str
    second: str
    detail: str

    def __str__(self) -> str:
        return f"{self.corollary}: ({self.first}, {self.second}) — {self.detail}"


def check_corollary_6_8(
    definitions: DerivedDefinitions,
    priorities: PriorityRelation,
    commutativity: CommutativityAnalyzer,
    universe: frozenset[str] | None = None,
) -> list[CorollaryViolation]:
    """Corollary 6.8: in a confluent rule set, every unordered pair
    commutes. Returns violations (empty for any set Definition 6.5
    accepts)."""
    names = sorted(universe or definitions.rule_names)
    violations = []
    for i, first in enumerate(names):
        for second in names[i + 1 :]:
            if priorities.are_unordered(first, second) and not (
                commutativity.commute(first, second)
            ):
                violations.append(
                    CorollaryViolation(
                        corollary="6.8",
                        first=first,
                        second=second,
                        detail="unordered but noncommutative",
                    )
                )
    return violations


def check_corollary_6_9(
    definitions: DerivedDefinitions,
    priorities: PriorityRelation,
    commutativity: CommutativityAnalyzer,
    universe: frozenset[str] | None = None,
) -> list[CorollaryViolation]:
    """Corollary 6.9: if ``P = ∅`` and the set is confluent, *every* pair
    commutes. Only meaningful when the priority relation is empty."""
    if not priorities.is_empty():
        return []
    names = sorted(universe or definitions.rule_names)
    violations = []
    for i, first in enumerate(names):
        for second in names[i + 1 :]:
            if not commutativity.commute(first, second):
                violations.append(
                    CorollaryViolation(
                        corollary="6.9",
                        first=first,
                        second=second,
                        detail="P is empty but the pair is noncommutative",
                    )
                )
    return violations


def check_corollary_6_10(
    definitions: DerivedDefinitions,
    priorities: PriorityRelation,
    universe: frozenset[str] | None = None,
) -> list[CorollaryViolation]:
    """Corollary 6.10: in a confluent rule set, if ``ri`` may trigger
    ``rj`` (or vice versa) then the two are ordered."""
    names = sorted(universe or definitions.rule_names)
    violations = []
    for i, first in enumerate(names):
        for second in names[i + 1 :]:
            may_trigger = (
                second in definitions.triggers(first)
                or first in definitions.triggers(second)
            )
            if may_trigger and priorities.are_unordered(first, second):
                violations.append(
                    CorollaryViolation(
                        corollary="6.10",
                        first=first,
                        second=second,
                        detail="one may trigger the other but they are unordered",
                    )
                )
    return violations


def check_corollary_8_2(
    definitions: DerivedDefinitions,
    priorities: PriorityRelation,
) -> list[CorollaryViolation]:
    """Corollary 8.2: in an observably deterministic rule set, every two
    distinct observable rules are ordered."""
    observable = sorted(
        name for name in definitions.rule_names if definitions.observable(name)
    )
    violations = []
    for i, first in enumerate(observable):
        for second in observable[i + 1 :]:
            if priorities.are_unordered(first, second):
                violations.append(
                    CorollaryViolation(
                        corollary="8.2",
                        first=first,
                        second=second,
                        detail="both observable but unordered",
                    )
                )
    return violations
