"""Observable determinism — Section 8, Theorem 8.1.

A rule set is observably deterministic when the order and appearance of
observable actions (selects and rollbacks, in Starburst) cannot depend
on which eligible rule is chosen first.

The analysis is a reduction to partial confluence: pretend a fictional
table ``Obs`` exists and that every observable rule timestamps and logs
its observable actions there. With the extended definitions
(``Reads`` ∪ ``{Obs.c}``, ``Performs`` ∪ ``{(I, Obs)}`` for observable
rules — :class:`~repro.analysis.derived.ObsExtendedDefinitions`),
confluence with respect to ``{Obs}`` forces a unique final Obs content,
hence a unique stream of observable actions.

Theorem 8.1's obligations:

1. the Confluence Requirement holds for the rules in ``Sig(Obs)``
   (under the extended definitions), and
2. there are no infinite paths in any execution graph for **R** (the
   full rule set — note: unlike Theorem 7.2, termination of the whole
   set is required here).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis._deprecation import warn_direct_construction
from repro.analysis.commutativity import CommutativityAnalyzer
from repro.analysis.confluence import ConfluenceAnalysis, ConfluenceAnalyzer
from repro.analysis.derived import OBS_TABLE, ObsExtendedDefinitions
from repro.analysis.partial_confluence import significant_rules
from repro.analysis.termination import TerminationAnalysis, TerminationAnalyzer
from repro.rules.priorities import PriorityRelation
from repro.rules.ruleset import RuleSet


@dataclass
class ObservableDeterminismAnalysis:
    """Theorem 8.1's obligations and the combined verdict."""

    #: rules whose actions may be observable
    observable_rules: frozenset[str]
    #: Sig(Obs) under the extended definitions
    significant: frozenset[str]
    #: termination of the FULL rule set (Theorem 8.1's second obligation)
    termination: TerminationAnalysis
    #: Confluence Requirement for Sig(Obs) under extended definitions
    confluence: ConfluenceAnalysis

    @property
    def observably_deterministic(self) -> bool:
        return self.confluence.requirement_holds and self.termination.guaranteed

    def describe(self) -> str:
        if not self.observable_rules:
            return "observably deterministic (no observable rules)"
        if self.observably_deterministic:
            return (
                "observably deterministic "
                f"(observable rules: {', '.join(sorted(self.observable_rules))})"
            )
        problems = []
        if not self.termination.guaranteed:
            problems.append("rule set may not terminate")
        if not self.confluence.requirement_holds:
            problems.append(
                f"{len(self.confluence.violations)} commutativity "
                "violations in Sig(Obs)"
            )
        return "may not be observably deterministic: " + "; ".join(problems)


class ObservableDeterminismAnalyzer:
    """Runs the Theorem 8.1 reduction.

    User certifications made on the supplied commutativity analyzer are
    carried over to the extended analysis (a certification that two
    rules commute on the real tables does not silence the Obs-induced
    noncommutativity between two observable rules, however — that pair
    stays noncommutative unless both obligations are met by ordering,
    per Corollary 8.2).

    .. deprecated::
        Construct analyses through :class:`repro.RuleAnalyzer` (or an
        :class:`~repro.analysis.engine.AnalysisEngine`) instead; this
        stand-alone path re-judges every pair on every call. When an
        *engine* is supplied, the extended definitions and commutativity
        analyzer are the engine's shared Obs view (with certifications
        already mirrored) and the confluence step over ``Sig(Obs)`` is
        served from the engine's memoized pair verdicts.
    """

    def __init__(
        self,
        ruleset: RuleSet,
        priorities: PriorityRelation | None = None,
        termination_analyzer: TerminationAnalyzer | None = None,
        base_commutativity: CommutativityAnalyzer | None = None,
        *,
        engine=None,
        _internal: bool = False,
    ) -> None:
        if not _internal:
            warn_direct_construction("ObservableDeterminismAnalyzer")
        self.ruleset = ruleset
        self.priorities = priorities or ruleset.priorities
        self.engine = engine
        if engine is not None:
            self.extended = engine.obs_definitions
            self.commutativity = engine.obs_commutativity
        else:
            self.extended = ObsExtendedDefinitions(ruleset)
            self.commutativity = CommutativityAnalyzer(
                self.extended,
                refine=getattr(base_commutativity, "refine", False),
            )
            if base_commutativity is not None:
                observable = {
                    name
                    for name in self.extended.rule_names
                    if self.extended.observable(name)
                }
                for pair in base_commutativity.certified_pairs:
                    first, second = sorted(pair)
                    # Two observable rules are noncommutative *because of
                    # Obs* (both insert into it and read it); a user
                    # certification about the real tables cannot erase that.
                    if first in observable and second in observable:
                        continue
                    self.commutativity.certify_commutes(first, second)
        self.termination_analyzer = termination_analyzer or TerminationAnalyzer(
            self.extended
        )

    def analyze(self) -> ObservableDeterminismAnalysis:
        observable = frozenset(
            name
            for name in self.extended.rule_names
            if self.extended.observable(name)
        )
        significant = significant_rules(
            self.extended, self.commutativity, [OBS_TABLE]
        )
        termination = self.termination_analyzer.analyze()
        if self.engine is not None:
            confluence = self.engine.analyze_confluence(
                universe=significant, view="obs"
            )
        else:
            confluence = ConfluenceAnalyzer(
                self.extended, self.priorities, self.commutativity,
                _internal=True,
            ).analyze(universe=significant)
        return ObservableDeterminismAnalysis(
            observable_rules=observable,
            significant=significant,
            termination=termination,
            confluence=confluence,
        )
