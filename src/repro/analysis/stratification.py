"""Refined triggering graph + stratification (chase-style termination).

The triggering graph of Theorem 5.1 is purely syntactic: an edge
``ri → rj`` exists whenever ``ri`` *could* write an event ``rj`` is
subscribed to. Chase-termination work (Meier/Schmidt/Lausen, "On Chase
Termination Beyond Stratification") sharpens this with a semantic
firing relation: the edge is kept only when ``ri``'s writes can
actually make ``rj``'s condition true. This module builds that
*refined* graph using the constant-folding/interval engine of
:mod:`repro.lint.folding` and the attribute-level write summaries of
:mod:`repro.analysis.dataflow`, then partitions rules into *strata*
(the condensation of the refined graph) and certifies cycles whose
rules are collectively non-increasing via a fixpoint that generalizes
the paper's delete-only and monotonic-drift special cases.

Pruning rules (each is justified for the *tail* of a hypothetical
infinite run — finite contributions such as the initial user
transition never matter for termination):

* **dead condition** — ``src``'s condition is unsatisfiable: the rule
  never executes its actions, so it performs nothing.
* **dead actions** — an UPDATE/DELETE action whose WHERE is
  unsatisfiable matches no rows and performs no events; if the events
  a ``src → dst`` edge relies on come only from dead actions, the edge
  goes.
* **refuted transition conjunct** — ``dst``'s condition has a
  top-level ``exists (select * from inserted|new_updated where W)``
  conjunct with ``W`` confined to the transition row. If ``src``'s
  literal writes provably violate ``W`` (substitute and show
  unsatisfiability), and no other rule can smuggle satisfying rows
  into that slice (attribution guards below), then ``src``'s firing
  cannot supply the rows the conjunct needs, and every activation of
  ``dst`` is attributable to some *kept* edge instead.

Attribution guards: for an ``inserted`` conjunct no rule may UPDATE
the ``W``-columns of the table (pending inserted rows would mutate);
rows can only enter the slice via inserts, and every inserter has its
own edge to ``dst`` (insert-triggered by validation). For a
``new_updated`` conjunct ``src`` must be the *only* updater of the
table, so the slice holds ``src``'s post-images exclusively; the last
update applied to a row fixes its assigned columns, so refuting every
update action refutes every reachable post-image.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.analysis.dataflow import rule_dataflow
from repro.analysis.derived import DerivedDefinitions
from repro.analysis.termination import TriggeringGraph
from repro.lang import ast
from repro.lint.folding import fold_constant, is_folded, unsatisfiable
from repro.rules.events import TriggerEvent

__all__ = [
    "PrunedEdge",
    "Discharge",
    "StratificationAnalysis",
    "StratificationAnalyzer",
    "substitute_columns",
    "top_level_conjuncts",
]


@dataclass(frozen=True)
class PrunedEdge:
    """A triggering-graph edge removed by refinement, with the reason."""

    source: str
    target: str
    reason: str


@dataclass(frozen=True)
class Discharge:
    """A successful component certification: the removed rules and why."""

    rules: frozenset[str]
    detail: str


# ----------------------------------------------------------------------
# Symbolic helpers (shared with the critical-instance analyzer)
# ----------------------------------------------------------------------


def top_level_conjuncts(expr):
    """Yield the top-level conjuncts of *expr* (``and``-flattened)."""
    if isinstance(expr, ast.BinaryOp) and expr.op == "and":
        yield from top_level_conjuncts(expr.left)
        yield from top_level_conjuncts(expr.right)
    else:
        yield expr


def substitute_columns(expr, values, binding: str | None = None):
    """Replace column references with literal values.

    A reference is replaced when its column (lowercased) appears in
    *values* and it is unqualified or qualified with *binding*. Returns
    the rewritten expression, or ``None`` when *expr* contains a node
    kind we cannot rewrite soundly (subqueries, aggregates).
    """
    if isinstance(expr, ast.Literal):
        return expr
    if isinstance(expr, ast.ColumnRef):
        qualifier = expr.table.lower() if expr.table else None
        if qualifier is not None and binding is not None and qualifier != binding:
            return expr
        column = expr.column.lower()
        if column in values:
            return ast.Literal(values[column])
        return expr
    if isinstance(expr, ast.BinaryOp):
        left = substitute_columns(expr.left, values, binding)
        right = substitute_columns(expr.right, values, binding)
        if left is None or right is None:
            return None
        return ast.BinaryOp(expr.op, left, right)
    if isinstance(expr, ast.UnaryOp):
        operand = substitute_columns(expr.operand, values, binding)
        if operand is None:
            return None
        return ast.UnaryOp(expr.op, operand)
    if isinstance(expr, ast.IsNull):
        operand = substitute_columns(expr.operand, values, binding)
        if operand is None:
            return None
        return replace(expr, operand=operand)
    if isinstance(expr, ast.Between):
        parts = [
            substitute_columns(part, values, binding)
            for part in (expr.operand, expr.low, expr.high)
        ]
        if any(part is None for part in parts):
            return None
        return replace(expr, operand=parts[0], low=parts[1], high=parts[2])
    if isinstance(expr, ast.InList):
        operand = substitute_columns(expr.operand, values, binding)
        items = [substitute_columns(item, values, binding) for item in expr.items]
        if operand is None or any(item is None for item in items):
            return None
        return replace(expr, operand=operand, items=tuple(items))
    return None


@dataclass(frozen=True)
class ConfinedConjunct:
    """``exists (select * from <transition> t where W)`` with ``W``
    confined to the transition row ``t``."""

    kind: str  # "inserted" | "new_updated" | "deleted" | "old_updated"
    where: object
    binding: str
    columns: frozenset[str]


def confined_transition_conjuncts(rule) -> tuple[ConfinedConjunct, ...]:
    """The rule condition's top-level confined transition conjuncts."""
    if rule.condition is None:
        return ()
    found: list[ConfinedConjunct] = []
    for conjunct in top_level_conjuncts(rule.condition):
        if not isinstance(conjunct, ast.Exists) or conjunct.negated:
            continue
        select = conjunct.subquery
        if len(select.tables) != 1 or not select.is_star:
            continue
        if select.group_by or select.having is not None:
            continue
        table_ref = select.tables[0]
        kind = table_ref.name.lower()
        if kind not in ast.TRANSITION_TABLE_NAMES:
            continue
        if select.where is None:
            continue
        binding = table_ref.binding_name.lower()
        columns: set[str] = set()
        confined = True
        for node in ast.walk_expression(select.where):
            if isinstance(
                node,
                (ast.Exists, ast.InSubquery, ast.ScalarSubquery, ast.FuncCall),
            ):
                confined = False
                break
            if isinstance(node, ast.ColumnRef):
                qualifier = node.table.lower() if node.table else None
                if qualifier is not None and qualifier != binding:
                    confined = False
                    break
                columns.add(node.column.lower())
        if confined:
            found.append(
                ConfinedConjunct(
                    kind, select.where, binding, frozenset(columns)
                )
            )
    return tuple(found)


# ----------------------------------------------------------------------
# Per-rule write summaries
# ----------------------------------------------------------------------


_UNFOLDED = object()


def _fold_literal(expr):
    """Fold *expr* to a closed constant value, or ``_UNFOLDED``."""
    folded = fold_constant(expr)
    if is_folded(folded):
        return folded
    return _UNFOLDED


@dataclass
class _WriteSummary:
    """What one rule's live actions can write, symbolically."""

    #: events performed by actions that can actually run
    events: frozenset[TriggerEvent]
    #: table → list of {column: literal} insert rows (partial when a
    #: value does not fold); missing tables → no live inserts
    insert_rows: dict[str, list[dict[str, object]]]
    #: tables receiving an INSERT ... SELECT (rows unknowable)
    opaque_insert_tables: frozenset[str]
    #: table → list of {column: literal} update assignments (partial)
    update_assignments: dict[str, list[dict[str, object]]]


def summarize_writes(rule) -> _WriteSummary:
    """Summarize *rule*'s effective writes, skipping dead actions."""
    if rule.condition is not None and unsatisfiable(rule.condition):
        return _WriteSummary(frozenset(), {}, frozenset(), {})
    events: set[TriggerEvent] = set()
    insert_rows: dict[str, list[dict[str, object]]] = {}
    opaque: set[str] = set()
    update_assignments: dict[str, list[dict[str, object]]] = {}
    for action in rule.actions:
        if isinstance(action, ast.Insert):
            table = action.table.lower()
            events.add(TriggerEvent.insert(table))
            if action.query is not None:
                opaque.add(table)
                continue
            columns = [
                column.lower()
                for column in rule.schema.table(table).column_names
            ]
            for row in action.rows:
                values: dict[str, object] = {}
                for column, expr in zip(columns, row):
                    literal = _fold_literal(expr)
                    if literal is not _UNFOLDED:
                        values[column] = literal
                insert_rows.setdefault(table, []).append(values)
        elif isinstance(action, ast.Delete):
            if action.where is not None and unsatisfiable(action.where):
                continue
            events.add(TriggerEvent.delete(action.table))
        elif isinstance(action, ast.Update):
            if action.where is not None and unsatisfiable(action.where):
                continue
            table = action.table.lower()
            values = {}
            for assignment in action.assignments:
                events.add(TriggerEvent.update(table, assignment.column))
                literal = _fold_literal(assignment.value)
                if literal is not _UNFOLDED:
                    values[assignment.column.lower()] = literal
            update_assignments.setdefault(table, []).append(values)
    return _WriteSummary(
        frozenset(events), insert_rows, frozenset(opaque), update_assignments
    )


# ----------------------------------------------------------------------
# The analyzer
# ----------------------------------------------------------------------


@dataclass
class StratificationAnalysis:
    """The refined graph, its pruned edges, and the rule strata."""

    refined: TriggeringGraph
    pruned_edges: tuple[PrunedEdge, ...] = ()
    strata: dict[str, int] = field(default_factory=dict)

    def certify_component(self, component, analyzer) -> Discharge | None:
        """Try to discharge a cyclic component of the *base* graph.

        Works on the refined subgraph and iterates the delete-only and
        monotonic heuristics to a fixpoint: each round removes every
        qualifying rule that still sits on a refined cycle, which can
        unlock further qualifications (the generalized non-increasing
        argument). Returns the removed rules, or ``None``.
        """
        members = frozenset(component)
        pruned_inside = sum(
            1
            for edge in self.pruned_edges
            if edge.source in members and edge.target in members
        )
        remaining = set(members)
        sub = self.refined.restricted_to(members)
        removed: set[str] = set()
        while True:
            cyclic = sub.cyclic_components()
            if not cyclic:
                if removed:
                    detail = (
                        f"{pruned_inside} refined-away edges + "
                        "non-increasing fixpoint removed "
                        + ", ".join(sorted(removed))
                    )
                else:
                    detail = (
                        "refined triggering graph is acyclic here "
                        f"({pruned_inside} edges pruned)"
                    )
                return Discharge(frozenset(removed), detail)
            scope = frozenset(remaining)
            candidates = analyzer.auto_certifiable_rules(
                scope
            ) | analyzer.auto_certifiable_monotonic_rules(scope)
            on_cycles: set[str] = set()
            for scc in cyclic:
                on_cycles |= scc
            progress = candidates & on_cycles
            if not progress:
                return None
            removed |= progress
            remaining -= progress
            sub = sub.restricted_to(frozenset(remaining))


class StratificationAnalyzer:
    """Builds the refined triggering graph and the strata over it."""

    def __init__(self, definitions: DerivedDefinitions) -> None:
        self.definitions = definitions
        self.ruleset = definitions.ruleset
        self.base = TriggeringGraph(definitions)

    def analyze(self) -> StratificationAnalysis:
        summaries = {
            name: summarize_writes(self.ruleset.rule(name))
            for name in self.base.nodes
        }
        conjuncts = {
            name: confined_transition_conjuncts(self.ruleset.rule(name))
            for name in self.base.nodes
        }
        # Attribution guards need global write facts (raw dataflow — a
        # dead action today could be resurrected by an edit; the guard
        # stays conservative).
        updated_columns: set[tuple[str, str]] = set()
        table_updaters: dict[str, set[str]] = {}
        for name in self.base.nodes:
            for write in rule_dataflow(self.ruleset.rule(name)).writes:
                if write.kind == "U":
                    updated_columns.add((write.table, write.column))
                    table_updaters.setdefault(write.table, set()).add(name)

        successors: dict[str, frozenset[str]] = {}
        pruned: list[PrunedEdge] = []
        for source in self.base.nodes:
            summary = summaries[source]
            kept: set[str] = set()
            for target in sorted(self.base.successors[source]):
                target_rule = self.ruleset.rule(target)
                live = summary.events & target_rule.triggered_by
                if not live:
                    pruned.append(
                        PrunedEdge(
                            source,
                            target,
                            "triggering events come only from dead "
                            "actions or a dead condition",
                        )
                    )
                    continue
                reason = self._refuted_conjunct(
                    source,
                    summary,
                    target_rule,
                    conjuncts[target],
                    updated_columns,
                    table_updaters,
                )
                if reason is not None:
                    pruned.append(PrunedEdge(source, target, reason))
                    continue
                kept.add(target)
            successors[source] = frozenset(kept)

        refined = TriggeringGraph.from_successors(
            self.base.nodes, successors, self.definitions
        )
        components = refined.strong_components()
        strata: dict[str, int] = {}
        for stratum, component in enumerate(reversed(components)):
            for rule in component:
                strata[rule] = stratum
        return StratificationAnalysis(refined, tuple(pruned), strata)

    # ------------------------------------------------------------------

    def _refuted_conjunct(
        self,
        source: str,
        summary: _WriteSummary,
        target_rule,
        target_conjuncts,
        updated_columns,
        table_updaters,
    ) -> str | None:
        """A reason string when some confined conjunct of the target's
        condition provably rejects every row *source* can put into the
        slice it ranges over (with the attribution guards satisfied)."""
        table = target_rule.table
        for conjunct in target_conjuncts:
            if conjunct.kind == "inserted":
                if any(
                    (table, column) in updated_columns
                    for column in conjunct.columns
                ):
                    continue  # pending rows could mutate under us
                if table in summary.opaque_insert_tables:
                    continue
                rows = summary.insert_rows.get(table, [])
                if all(
                    self._row_violates(conjunct, values) for values in rows
                ):
                    return (
                        f"inserted-rows of {source} cannot satisfy "
                        f"`exists(... from inserted ...)` of {target_rule.name}"
                    )
            elif conjunct.kind == "new_updated":
                if table_updaters.get(table, set()) - {source}:
                    continue  # another updater could supply rows
                assignments = summary.update_assignments.get(table, [])
                if all(
                    self._row_violates(conjunct, values)
                    for values in assignments
                ):
                    return (
                        f"updated-rows of {source} cannot satisfy "
                        f"`exists(... from new_updated ...)` of "
                        f"{target_rule.name}"
                    )
        return None

    @staticmethod
    def _row_violates(conjunct: ConfinedConjunct, values) -> bool:
        """True when ``W`` is provably false for a slice row carrying
        *values* (unassigned columns stay free, so the proof must hold
        for every completion)."""
        substituted = substitute_columns(
            conjunct.where, values, conjunct.binding
        )
        if substituted is None:
            return False
        return unsatisfiable(substituted) is not None
