"""Rule-set partitioning for incremental analysis (Section 9 future work).

"Most rule applications can be partitioned into groups of rules such
that, across partitions, rules reference different sets of tables and
have no priority ordering. ... analysis can be applied separately to
each partition, and it needs to be repeated for a partition only when
rules in that partition change."

Two rules belong to the same partition when they share any table (in
``Triggered-By``, ``Performs`` or ``Reads``) or are related by a
priority ordering. Partitions are the connected components of that
relation.
"""

from __future__ import annotations

from repro.analysis.derived import DerivedDefinitions
from repro.rules.priorities import PriorityRelation


def _touched_tables(definitions: DerivedDefinitions, rule: str) -> frozenset[str]:
    tables = {event.table for event in definitions.triggered_by(rule)}
    tables |= {event.table for event in definitions.performs(rule)}
    tables |= {table for table, __ in definitions.reads(rule)}
    return frozenset(tables)


def partition_rules(
    definitions: DerivedDefinitions,
    priorities: PriorityRelation,
) -> list[frozenset[str]]:
    """Partition the rule set into independent groups.

    Returns the partitions sorted by their smallest member, each a
    frozenset of rule names. Analyses run on one partition are
    unaffected by rules in the others (they share no tables and no
    orderings), so each may be re-analyzed independently.
    """
    names = list(definitions.rule_names)
    parent: dict[str, str] = {name: name for name in names}

    def find(node: str) -> str:
        while parent[node] != node:
            parent[node] = parent[parent[node]]
            node = parent[node]
        return node

    def union(first: str, second: str) -> None:
        root_first, root_second = find(first), find(second)
        if root_first != root_second:
            parent[root_second] = root_first

    tables = {name: _touched_tables(definitions, name) for name in names}
    for i, first in enumerate(names):
        for second in names[i + 1 :]:
            if tables[first] & tables[second]:
                union(first, second)
            elif priorities.are_ordered(first, second):
                union(first, second)

    groups: dict[str, set[str]] = {}
    for name in names:
        groups.setdefault(find(name), set()).add(name)
    return sorted(
        (frozenset(group) for group in groups.values()),
        key=lambda group: min(group),
    )
