"""Confluence analysis — Sections 6.3 and 6.4.

For every pair of *unordered* rules ``(ri, rj)``, Definition 6.5 builds
two mutually recursive sets ``R1 ∋ ri`` and ``R2 ∋ rj``::

    R1 ← {ri};  R2 ← {rj}
    repeat until unchanged:
        R1 ← R1 ∪ {r ∈ R | r ∈ Triggers(r1) for some r1 ∈ R1
                            and r > r2 ∈ P for some r2 ∈ R2 and r ≠ rj}
        R2 ← R2 ∪ {r ∈ R | r ∈ Triggers(r2) for some r2 ∈ R2
                            and r > r1 ∈ P for some r1 ∈ R1 and r ≠ ri}

The **Confluence Requirement** holds when every ``r1 ∈ R1`` commutes
with every ``r2 ∈ R2``, for every unordered pair. Theorem 6.7: the
requirement plus guaranteed termination implies confluence (exactly one
final state in every execution graph).

When the requirement fails, the analyzer reports each violation — the
unordered pair responsible, the noncommuting ``(r1, r2)`` witness and
its Lemma 6.1 reasons — and the Section 6.4 repair options: certify that
the witness pair actually commutes, or order the unordered pair.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis._deprecation import warn_direct_construction
from repro.analysis.commutativity import (
    CommutativityAnalyzer,
    NoncommutativityReason,
)
from repro.analysis.derived import DerivedDefinitions
from repro.rules.priorities import PriorityRelation


def _interference_fixpoint(
    definitions: DerivedDefinitions,
    priorities: PriorityRelation,
    ri: str,
    rj: str,
    universe: frozenset[str],
) -> tuple[frozenset[str], frozenset[str], frozenset[str], int]:
    """The Definition 6.5 fixpoint, instrumented for memo dependency
    tracking.

    Returns ``(R1, R2, candidates, iterations)`` where *candidates* is
    every rule whose priority standing was queried while growing the
    sets (accepted or not) — together with the members themselves these
    are exactly the rules whose priority edges the result depends on.
    """
    r1: set[str] = {ri}
    r2: set[str] = {rj}
    examined: set[str] = set()
    iterations = 0
    changed = True
    while changed:
        changed = False
        iterations += 1
        # R1 gains rules triggered from R1 that outrank something in R2.
        candidates1 = {
            candidate
            for member in r1
            for candidate in definitions.triggers(member)
            if candidate in universe and candidate != rj and candidate not in r1
        }
        examined |= candidates1
        for candidate in candidates1:
            if any(priorities.has_precedence(candidate, lower) for lower in r2):
                r1.add(candidate)
                changed = True
        candidates2 = {
            candidate
            for member in r2
            for candidate in definitions.triggers(member)
            if candidate in universe and candidate != ri and candidate not in r2
        }
        examined |= candidates2
        for candidate in candidates2:
            if any(priorities.has_precedence(candidate, lower) for lower in r1):
                r2.add(candidate)
                changed = True
    return frozenset(r1), frozenset(r2), frozenset(examined), iterations


def build_interference_sets(
    definitions: DerivedDefinitions,
    priorities: PriorityRelation,
    ri: str,
    rj: str,
    universe: frozenset[str] | None = None,
) -> tuple[frozenset[str], frozenset[str]]:
    """The ``(R1, R2)`` fixpoint of Definition 6.5 for unordered ``(ri, rj)``.

    ``universe`` restricts the rule set considered (used when analyzing a
    subset such as ``Sig(T')``); defaults to all rules.
    """
    ri = ri.lower()
    rj = rj.lower()
    if universe is None:
        universe = frozenset(definitions.rule_names)
    r1, r2, __, __ = _interference_fixpoint(
        definitions, priorities, ri, rj, universe
    )
    return r1, r2


@dataclass(frozen=True)
class ConfluenceViolation:
    """One failure of the Confluence Requirement.

    The unordered pair ``(pair_first, pair_second)`` generated sets R1
    and R2 containing the noncommuting witness ``(r1, r2)``.
    """

    pair_first: str
    pair_second: str
    r1_member: str
    r2_member: str
    r1_set: frozenset[str]
    r2_set: frozenset[str]
    reasons: tuple[NoncommutativityReason, ...]

    @property
    def is_direct(self) -> bool:
        """True when the witness is the unordered pair itself — the
        paper's 'most common case' (cf. Corollary 6.8)."""
        return {self.r1_member, self.r2_member} == {
            self.pair_first,
            self.pair_second,
        }

    def describe(self) -> str:
        why = "; ".join(str(reason) for reason in self.reasons)
        return (
            f"unordered pair ({self.pair_first}, {self.pair_second}): "
            f"{self.r1_member} and {self.r2_member} may not commute ({why})"
        )


@dataclass(frozen=True)
class RepairSuggestion:
    """A Section 6.4 repair option for one violation.

    ``kind`` is ``"certify"`` (declare the witness pair commutative — the
    best option when valid) or ``"order"`` (add a priority between the
    unordered pair; note this may surface new violations — the
    'non-confluence moves around' phenomenon).
    """

    kind: str
    first: str
    second: str

    def describe(self) -> str:
        if self.kind == "certify":
            return (
                f"certify that rules {self.first!r} and {self.second!r} "
                "actually commute"
            )
        return (
            f"add a priority ordering between rules {self.first!r} and "
            f"{self.second!r}"
        )


@dataclass
class ConfluenceAnalysis:
    """The outcome of confluence analysis over one rule (sub)set."""

    #: True iff the Confluence Requirement holds for every unordered pair.
    requirement_holds: bool
    #: violations, one per (unordered pair, noncommuting witness)
    violations: list[ConfluenceViolation] = field(default_factory=list)
    #: number of unordered pairs examined
    pairs_examined: int = 0
    #: the rule names analyzed
    universe: frozenset[str] = frozenset()

    def confluent(self, termination_guaranteed: bool) -> bool:
        """Theorem 6.7: requirement + termination ⇒ confluence."""
        return self.requirement_holds and termination_guaranteed

    def responsible_pairs(self) -> list[tuple[str, str]]:
        seen: list[tuple[str, str]] = []
        for violation in self.violations:
            pair = (violation.pair_first, violation.pair_second)
            if pair not in seen:
                seen.append(pair)
        return seen

    def suggestions(self) -> list[RepairSuggestion]:
        """Repair options per Section 6.4 (approach 3 — removing
        priorities — is 'non-intuitive and in fact useless', so it is
        never suggested)."""
        suggestions: list[RepairSuggestion] = []
        seen: set[tuple[str, str, str]] = set()
        for violation in self.violations:
            certify_key = (
                "certify",
                *sorted((violation.r1_member, violation.r2_member)),
            )
            if certify_key not in seen:
                seen.add(certify_key)
                suggestions.append(
                    RepairSuggestion(
                        "certify", violation.r1_member, violation.r2_member
                    )
                )
            order_key = (
                "order",
                *sorted((violation.pair_first, violation.pair_second)),
            )
            if order_key not in seen:
                seen.add(order_key)
                suggestions.append(
                    RepairSuggestion(
                        "order", violation.pair_first, violation.pair_second
                    )
                )
        return suggestions

    def describe(self) -> str:
        if self.requirement_holds:
            return (
                f"confluence requirement holds "
                f"({self.pairs_examined} unordered pairs checked)"
            )
        pairs = ", ".join(
            f"({first}, {second})" for first, second in self.responsible_pairs()
        )
        return (
            f"may not be confluent: {len(self.violations)} violations "
            f"from unordered pairs {pairs}"
        )


@dataclass(frozen=True)
class PairJudgment:
    """The confluence verdict for one unordered pair, with the
    dependency footprint the engine's memo invalidation needs.

    ``members`` is ``R1 ∪ R2`` — the rules whose pairwise commutativity
    (hence certifications) the verdict depends on. ``uppers`` adds every
    candidate whose priority standing was queried while building the
    fixpoint: the verdict can only change when a priority edge from a
    rule in ``uppers`` to a rule in ``members`` appears or disappears.
    """

    first: str
    second: str
    violations: tuple[ConfluenceViolation, ...]
    r1_set: frozenset[str]
    r2_set: frozenset[str]
    members: frozenset[str]
    uppers: frozenset[str]
    iterations: int


def judge_unordered_pair(
    definitions: DerivedDefinitions,
    priorities: PriorityRelation,
    commutativity: CommutativityAnalyzer,
    first: str,
    second: str,
    universe: frozenset[str],
) -> PairJudgment:
    """Definition 6.5 for one unordered pair: build ``(R1, R2)`` and
    check every cross member pair for commutativity."""
    r1_set, r2_set, candidates, iterations = _interference_fixpoint(
        definitions, priorities, first, second, universe
    )
    violations: list[ConfluenceViolation] = []
    for r1_member in sorted(r1_set):
        for r2_member in sorted(r2_set):
            if commutativity.commute(r1_member, r2_member):
                continue
            violations.append(
                ConfluenceViolation(
                    pair_first=first,
                    pair_second=second,
                    r1_member=r1_member,
                    r2_member=r2_member,
                    r1_set=r1_set,
                    r2_set=r2_set,
                    reasons=commutativity.noncommutativity_reasons(
                        r1_member, r2_member
                    ),
                )
            )
    members = r1_set | r2_set
    return PairJudgment(
        first=first,
        second=second,
        violations=tuple(violations),
        r1_set=r1_set,
        r2_set=r2_set,
        members=members,
        uppers=members | candidates,
        iterations=iterations,
    )


class ConfluenceAnalyzer:
    """Applies Definition 6.5 across all unordered pairs of a rule set.

    .. deprecated::
        Construct analyses through :class:`repro.RuleAnalyzer` (or an
        :class:`~repro.analysis.engine.AnalysisEngine`) instead; this
        stand-alone path re-judges every pair on every call.
    """

    def __init__(
        self,
        definitions: DerivedDefinitions,
        priorities: PriorityRelation,
        commutativity: CommutativityAnalyzer | None = None,
        *,
        _internal: bool = False,
    ) -> None:
        if not _internal:
            warn_direct_construction("ConfluenceAnalyzer")
        self.definitions = definitions
        self.priorities = priorities
        self.commutativity = commutativity or CommutativityAnalyzer(definitions)

    def analyze(
        self, universe: frozenset[str] | None = None
    ) -> ConfluenceAnalysis:
        """Check the Confluence Requirement for every unordered pair in
        *universe* (default: the full rule set)."""
        if universe is None:
            universe = frozenset(self.definitions.rule_names)
        names = sorted(universe)
        violations: list[ConfluenceViolation] = []
        pairs_examined = 0

        for i, first in enumerate(names):
            for second in names[i + 1 :]:
                if not self.priorities.are_unordered(first, second):
                    continue
                pairs_examined += 1
                judgment = judge_unordered_pair(
                    self.definitions,
                    self.priorities,
                    self.commutativity,
                    first,
                    second,
                    universe,
                )
                violations.extend(judgment.violations)

        return ConfluenceAnalysis(
            requirement_holds=not violations,
            violations=violations,
            pairs_examined=pairs_examined,
            universe=frozenset(names),
        )
