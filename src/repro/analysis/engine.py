"""The shared pairwise-analysis engine behind the session façade.

Every Section 6–8 analysis in this repo ultimately spends its time in
the same two places: the raw Lemma 6.1 pair judgments (syntactic
noncommutativity reasons) and the per-unordered-pair Definition 6.5
verdicts (interference fixpoint + cross-member commutativity checks).
The paper frames these analyses as the core of an *interactive*
development environment — analyze, certify or order, re-analyze — and
``repair_confluence`` literalises that loop, so re-judging all O(n²)
pairs from scratch on every round is the dominant cost.

:class:`AnalysisEngine` is one shared, memoized judge for all of them:

* **Raw Lemma 6.1 memo** — per pair, keyed by rule content; these
  verdicts depend only on the two rules' definitions (``Triggers`` /
  ``Can-Untrigger`` edges are membership tests on rule-local event
  sets), so they survive certifications, priority edits, and universe
  restrictions, and are shared between the base and ``Obs``-extended
  views and with restricted sub-engines.
* **Pair-verdict memo** — per (unordered pair, universe), the full
  :class:`~repro.analysis.confluence.PairJudgment` with its dependency
  footprint. Invalidated *precisely*:

  - **certify / revoke (a, b)** — drops only verdicts whose
    ``R1 ∪ R2`` contains both ``a`` and ``b`` (commutativity is only
    consulted across those members);
  - **priority add / remove** — the closure delta is computed and a
    verdict is dropped only when some changed edge ``(x, y)`` has
    ``x`` among the rules whose precedence the fixpoint queried and
    ``y`` among its members;
  - **rule edit** (:meth:`update_ruleset`) — per-rule content
    fingerprints are diffed; verdicts touching a changed rule (or a
    rule whose ``Triggers`` set changed) are dropped, as are the raw
    memos of pairs involving it. Adding or removing rules clears the
    pair memo wholesale (any rule may join a fixpoint).

* **Parallel fan-out** — on rule sets above ``parallel_threshold`` the
  engine pre-judges the O(n²) raw Lemma 6.1 pairs in chunked batches on
  a thread pool. Workers call the pure
  :meth:`~repro.analysis.commutativity.CommutativityAnalyzer.compute_reasons`
  (reads only immutable definitions/ASTs); results are installed into
  the memo from the coordinating thread in sorted order, so the
  parallel path is byte-identical to the serial one.

The engine also keeps :class:`EngineStats` — pairs judged, memo hits,
invalidations, fixpoint iterations, per-phase wall-clock — surfaced
through ``AnalysisReport.stats`` and ``starburst-analyze --stats``.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Iterable

from repro.analysis.commutativity import (
    CommutativityAnalyzer,
    NoncommutativityReason,
)
from repro.analysis.confluence import (
    ConfluenceAnalysis,
    PairJudgment,
    judge_unordered_pair,
)
from repro.analysis.derived import (
    DerivedDefinitions,
    ObsExtendedDefinitions,
)
from repro.analysis.termination import TerminationAnalysis, TerminationAnalyzer
from repro.rules.ruleset import RuleSet

#: The two definition views an engine serves: the paper's base
#: definitions (Sections 3–7) and the ``Obs``-extended definitions
#: (Section 8).
BASE_VIEW = "base"
OBS_VIEW = "obs"


@dataclass
class EngineStats:
    """Counters and per-phase timings for one engine (cumulative).

    ``pairs_judged`` counts Definition 6.5 unordered-pair verdicts
    actually computed (fixpoint + Lemma 6.1 checks over R1 × R2);
    ``pair_memo_hits`` counts verdicts served from the memo instead.
    ``lemma_judgments`` / ``lemma_memo_hits`` are the same split for the
    raw Lemma 6.1 pair reasons underneath.
    """

    pairs_judged: int = 0
    pair_memo_hits: int = 0
    lemma_judgments: int = 0
    lemma_memo_hits: int = 0
    invalidations: int = 0
    fixpoint_iterations: int = 0
    parallel_batches: int = 0
    confluence_passes: int = 0
    timings: dict[str, float] = field(default_factory=dict)

    def add_time(self, phase: str, seconds: float) -> None:
        self.timings[phase] = self.timings.get(phase, 0.0) + seconds

    def snapshot(self) -> "EngineStats":
        clone = EngineStats(**{
            key: value
            for key, value in self.__dict__.items()
            if key != "timings"
        })
        clone.timings = dict(self.timings)
        return clone

    def to_dict(self) -> dict:
        data = {
            key: value for key, value in self.__dict__.items()
            if key != "timings"
        }
        data["timings"] = {
            phase: round(seconds, 6)
            for phase, seconds in sorted(self.timings.items())
        }
        return data


class _View:
    """One definition view (base or Obs-extended) with its memo tables."""

    def __init__(
        self,
        key: str,
        definitions: DerivedDefinitions,
        commutativity: CommutativityAnalyzer,
    ) -> None:
        self.key = key
        self.definitions = definitions
        self.commutativity = commutativity
        #: (frozenset(pair), universe frozenset) -> PairJudgment
        self.pair_memo: dict[
            tuple[frozenset[str], frozenset[str]], PairJudgment
        ] = {}


def _rule_fingerprint(rule) -> tuple:
    """Content fingerprint of one rule: everything a pair judgment can
    read from it (source covers condition/actions/clauses; the derived
    event sets and observability are listed explicitly so a change in
    their computation also fingerprints)."""
    return (
        rule.name,
        rule.source(),
        tuple(sorted(str(event) for event in rule.triggered_by)),
        rule.is_observable,
    )


class AnalysisEngine:
    """Shared memoized pair-judging service for one analysis session.

    One engine instance backs all of a session's analyses — full
    confluence, partial confluence, observable determinism, the repair
    loop, and restricted sub-analyses (via :meth:`restrict`, which
    shares the raw Lemma 6.1 memo and stats).
    """

    def __init__(
        self,
        ruleset: RuleSet,
        *,
        refine: bool = False,
        granularity: str = "column",
        column_dataflow: bool = False,
        parallel: bool | None = None,
        parallel_threshold: int = 48,
        max_workers: int | None = None,
        memoize: bool = True,
        stats: EngineStats | None = None,
        reason_stores: dict[str, dict] | None = None,
    ) -> None:
        self.ruleset = ruleset
        self.refine = refine
        self.granularity = granularity
        self.column_dataflow = column_dataflow
        self.parallel = parallel
        self.parallel_threshold = parallel_threshold
        self.max_workers = max_workers or min(8, (os.cpu_count() or 2))
        self.memoize = memoize
        self.stats = stats if stats is not None else EngineStats()
        #: raw Lemma 6.1 memo dicts per view; shared with restricted
        #: sub-engines (judgments are universe-independent)
        self._reason_stores: dict[str, dict] = (
            reason_stores
            if reason_stores is not None
            else {BASE_VIEW: {}, OBS_VIEW: {}}
        )
        self._certified_commutes: set[frozenset[str]] = set()
        self._fingerprints = {
            rule.name: _rule_fingerprint(rule) for rule in ruleset
        }
        self._priority_snapshot = ruleset.priorities.pairs()
        self._views: dict[str, _View] = {}
        self._termination_analyzer: TerminationAnalyzer | None = None
        #: memoized pair_pruning_counts() result; depends only on rule
        #: content, so it is dropped on rule edits and nothing else
        self._pruning_counts: dict[str, int] | None = None

    # ------------------------------------------------------------------
    # Views and component access
    # ------------------------------------------------------------------

    def _build_view(self, key: str) -> _View:
        if key == BASE_VIEW:
            definitions: DerivedDefinitions = DerivedDefinitions(self.ruleset)
        else:
            definitions = ObsExtendedDefinitions(self.ruleset)
        commutativity = CommutativityAnalyzer(
            definitions,
            granularity=self.granularity,
            refine=self.refine,
            column_dataflow=self.column_dataflow,
            cache=self._reason_stores[key],
            stats=self.stats,
            on_certification=lambda pair, added, _key=key: (
                self._certification_changed(_key, pair, added)
            ),
        )
        view = _View(key, definitions, commutativity)
        # Replay session certifications into a freshly (re)built view.
        for pair in sorted(self._certified_commutes, key=sorted):
            if self._applies_to_view(view, pair):
                first, second = sorted(pair)
                commutativity.certify_commutes(first, second)
        return view

    def _view(self, key: str) -> _View:
        view = self._views.get(key)
        if view is None:
            view = self._build_view(key)
            self._views[key] = view
        return view

    def _applies_to_view(self, view: _View, pair: frozenset[str]) -> bool:
        """A certification about the real tables never silences the
        Obs-induced noncommutativity between two observable rules
        (Corollary 8.2), so it is not replayed into the Obs view."""
        if view.key == BASE_VIEW:
            return True
        names = [name for name in pair if name in view.definitions.ruleset]
        if len(names) != 2:
            return False
        return not all(view.definitions.observable(name) for name in names)

    @property
    def definitions(self) -> DerivedDefinitions:
        return self._view(BASE_VIEW).definitions

    @property
    def commutativity(self) -> CommutativityAnalyzer:
        return self._view(BASE_VIEW).commutativity

    @property
    def obs_definitions(self) -> ObsExtendedDefinitions:
        return self._view(OBS_VIEW).definitions  # type: ignore[return-value]

    @property
    def obs_commutativity(self) -> CommutativityAnalyzer:
        return self._view(OBS_VIEW).commutativity

    @property
    def termination_analyzer(self) -> TerminationAnalyzer:
        if self._termination_analyzer is None:
            self._termination_analyzer = TerminationAnalyzer(self.definitions)
        return self._termination_analyzer

    @property
    def certified_commutes(self) -> frozenset[frozenset[str]]:
        return frozenset(self._certified_commutes)

    # ------------------------------------------------------------------
    # Session edits and invalidation
    # ------------------------------------------------------------------

    def certify_commutes(self, first: str, second: str) -> None:
        """Certify on every view (the Obs view filters internally)."""
        # Certifying through the base view's analyzer fires the
        # _certification_changed hook, which records the pair, preps the
        # Obs view, and invalidates dependent verdicts.
        self._view(BASE_VIEW).commutativity.certify_commutes(first, second)

    def revoke_certification(self, first: str, second: str) -> bool:
        return self._view(BASE_VIEW).commutativity.revoke_certification(
            first, second
        )

    def certify_termination(self, rule: str) -> None:
        """Termination certifications never affect pair verdicts (the
        Confluence Requirement does not consult termination)."""
        self.termination_analyzer.certify_rule(rule)

    def revoke_termination_certification(self, rule: str) -> bool:
        return self.termination_analyzer.revoke_rule_certification(rule)

    def add_priority(self, higher: str, lower: str) -> None:
        self.ruleset.add_priority(higher, lower)
        self._sync_priorities()

    def remove_priority(self, higher: str, lower: str) -> bool:
        removed = self.ruleset.remove_priority(higher, lower)
        self._sync_priorities()
        return removed

    def _certification_changed(
        self, view_key: str, pair: frozenset[str], added: bool
    ) -> None:
        """Hook fired by a view's CommutativityAnalyzer on certify or
        revoke — including direct calls that bypass the engine API."""
        if view_key == BASE_VIEW:
            if added:
                self._certified_commutes.add(pair)
            else:
                self._certified_commutes.discard(pair)
            # Mirror into the Obs view when it exists and the pair is
            # not Obs-pinned; its own hook will invalidate its memo.
            obs = self._views.get(OBS_VIEW)
            if obs is not None and self._applies_to_view(obs, pair):
                first, second = sorted(pair)
                if added:
                    obs.commutativity.certify_commutes(first, second)
                else:
                    obs.commutativity.revoke_certification(first, second)
            self._invalidate_certification(self._views.get(BASE_VIEW), pair)
        else:
            self._invalidate_certification(self._views.get(OBS_VIEW), pair)

    def _invalidate_certification(
        self, view: _View | None, pair: frozenset[str]
    ) -> None:
        """Drop pair verdicts whose R1 ∪ R2 contains both certified
        rules — the only verdicts that consulted their commutativity."""
        if view is None:
            return
        stale = [
            key
            for key, judgment in view.pair_memo.items()
            if pair <= judgment.members
        ]
        for key in stale:
            del view.pair_memo[key]
        self.stats.invalidations += len(stale)

    def _sync_priorities(self) -> None:
        """Detect priority-relation changes (made through the engine or
        directly on the rule set) and invalidate by closure delta."""
        current = self.ruleset.priorities.pairs()
        if current == self._priority_snapshot:
            return
        delta = current ^ self._priority_snapshot
        self._priority_snapshot = current
        for view in self._views.values():
            stale = [
                key
                for key, judgment in view.pair_memo.items()
                if any(
                    x in judgment.uppers and y in judgment.members
                    for x, y in delta
                )
            ]
            for key in stale:
                del view.pair_memo[key]
            self.stats.invalidations += len(stale)

    def invalidate_all(self) -> None:
        """Flush every memo (pair verdicts and raw Lemma 6.1 reasons)."""
        for view in self._views.values():
            self.stats.invalidations += len(view.pair_memo)
            view.pair_memo.clear()
        for store in self._reason_stores.values():
            store.clear()

    def update_ruleset(self, ruleset: RuleSet) -> frozenset[str]:
        """Swap in an edited rule set, invalidating precisely.

        Returns the names whose content fingerprint changed (including
        added and removed rules). Certifications and priority deltas are
        reconciled; memo entries that cannot have been affected survive.
        """
        old_fingerprints = self._fingerprints
        new_fingerprints = {
            rule.name: _rule_fingerprint(rule) for rule in ruleset
        }
        changed = frozenset(
            name
            for name in set(old_fingerprints) | set(new_fingerprints)
            if old_fingerprints.get(name) != new_fingerprints.get(name)
        )
        membership_changed = set(old_fingerprints) != set(new_fingerprints)

        # Capture the old Triggers adjacency before rebuilding: an edit
        # to rule r can change Triggers(s) for any s (via Triggered-By),
        # which changes which candidates s contributes to a fixpoint.
        old_triggers = {}
        base = self._views.get(BASE_VIEW)
        if base is not None and not membership_changed:
            old_triggers = {
                name: base.definitions.triggers(name)
                for name in base.definitions.rule_names
            }

        self.ruleset = ruleset
        self._fingerprints = new_fingerprints
        if changed:
            self._pruning_counts = None
        self._certified_commutes = {
            pair
            for pair in self._certified_commutes
            if all(name in new_fingerprints for name in pair)
        }
        surviving_termination_certs = frozenset()
        if self._termination_analyzer is not None:
            surviving_termination_certs = frozenset(
                name
                for name in self._termination_analyzer.certified_rules
                if name in new_fingerprints
            )
        self._termination_analyzer = None

        if changed:
            for store in self._reason_stores.values():
                dropped = [pair for pair in store if pair & changed]
                for pair in dropped:
                    del store[pair]
                self.stats.invalidations += len(dropped)

        old_views = self._views
        self._views = {}
        for key, old_view in old_views.items():
            view = self._view(key)
            if not self.memoize:
                continue
            if membership_changed:
                self.stats.invalidations += len(old_view.pair_memo)
                continue  # any rule may join a fixpoint: start cold
            affected = set(changed)
            for name in view.definitions.rule_names:
                if old_triggers.get(name) != view.definitions.triggers(name):
                    affected.add(name)
            for key2, judgment in old_view.pair_memo.items():
                if affected & judgment.uppers:
                    self.stats.invalidations += 1
                    continue
                view.pair_memo[key2] = judgment

        for rule in surviving_termination_certs:
            self.termination_analyzer.certify_rule(rule)
        # The edited rule set may also carry different priorities
        # (precedes/follows clauses): invalidate by closure delta.
        self._sync_priorities()
        return changed

    # ------------------------------------------------------------------
    # Restricted sub-sessions (Section 9)
    # ------------------------------------------------------------------

    def restrict(self, names: Iterable[str]) -> "AnalysisEngine":
        """An engine over ``ruleset.subset(names)`` that shares this
        engine's raw Lemma 6.1 memo and stats, and inherits its
        certifications (commutativity and termination) and priorities.

        Raw judgments are universe-independent (every Lemma 6.1
        condition is a membership test on the two rules' own event
        sets), so sharing the store across the restriction is sound.
        """
        keep = frozenset(name.lower() for name in names)
        sub = AnalysisEngine(
            self.ruleset.subset(keep),
            refine=self.refine,
            granularity=self.granularity,
            column_dataflow=self.column_dataflow,
            parallel=self.parallel,
            parallel_threshold=self.parallel_threshold,
            max_workers=self.max_workers,
            memoize=self.memoize,
            stats=self.stats,
            reason_stores=self._reason_stores,
        )
        for pair in sorted(self._certified_commutes, key=sorted):
            if pair <= keep:
                first, second = sorted(pair)
                sub.certify_commutes(first, second)
        if self._termination_analyzer is not None:
            for rule in sorted(self._termination_analyzer.certified_rules):
                if rule in keep:
                    sub.certify_termination(rule)
        return sub

    # ------------------------------------------------------------------
    # Analyses
    # ------------------------------------------------------------------

    def analyze_termination(self) -> TerminationAnalysis:
        start = time.perf_counter()
        analysis = self.termination_analyzer.analyze()
        self.stats.add_time("termination", time.perf_counter() - start)
        return analysis

    def analyze_confluence(
        self,
        universe: frozenset[str] | None = None,
        *,
        view: str = BASE_VIEW,
    ) -> ConfluenceAnalysis:
        """The Confluence Requirement over *universe*, served from the
        pair-verdict memo wherever valid."""
        start = time.perf_counter()
        self._sync_priorities()
        v = self._view(view)
        if universe is None:
            universe = frozenset(v.definitions.rule_names)
        names = sorted(universe)
        universe = frozenset(names)  # one shared object: its hash caches
        priorities = self.ruleset.priorities

        if self._should_parallelize(len(names)):
            self._warm_reasons_parallel(v, names)

        violations = []
        pairs_examined = 0
        for i, first in enumerate(names):
            for second in names[i + 1 :]:
                if not priorities.are_unordered(first, second):
                    continue
                pairs_examined += 1
                key = (frozenset((first, second)), universe)
                judgment = v.pair_memo.get(key) if self.memoize else None
                if judgment is None:
                    judgment = judge_unordered_pair(
                        v.definitions,
                        priorities,
                        v.commutativity,
                        first,
                        second,
                        universe,
                    )
                    self.stats.pairs_judged += 1
                    self.stats.fixpoint_iterations += judgment.iterations
                    if self.memoize:
                        v.pair_memo[key] = judgment
                else:
                    self.stats.pair_memo_hits += 1
                violations.extend(judgment.violations)

        self.stats.confluence_passes += 1
        self.stats.add_time(
            f"confluence[{view}]", time.perf_counter() - start
        )
        return ConfluenceAnalysis(
            requirement_holds=not violations,
            violations=violations,
            pairs_examined=pairs_examined,
            universe=universe,
        )

    def analyze_partial_confluence(self, tables: Iterable[str]):
        from repro.analysis.partial_confluence import PartialConfluenceAnalyzer

        start = time.perf_counter()
        analyzer = PartialConfluenceAnalyzer(
            self.definitions,
            self.ruleset.priorities,
            self.commutativity,
            self.termination_analyzer,
            engine=self,
            _internal=True,
        )
        analysis = analyzer.analyze(tables)
        self.stats.add_time("partial_confluence", time.perf_counter() - start)
        return analysis

    def analyze_observable_determinism(self):
        from repro.analysis.observable import ObservableDeterminismAnalyzer

        start = time.perf_counter()
        analyzer = ObservableDeterminismAnalyzer(
            self.ruleset,
            priorities=self.ruleset.priorities,
            termination_analyzer=self.termination_analyzer,
            engine=self,
            _internal=True,
        )
        analysis = analyzer.analyze()
        self.stats.add_time("observable", time.perf_counter() - start)
        return analysis

    # ------------------------------------------------------------------
    # Precision accounting
    # ------------------------------------------------------------------

    def pair_pruning_counts(self) -> dict[str, int]:
        """Raw noncommutative unordered-pair counts at each precision
        tier — the coarse table ablation, the paper's column-level
        events, and the attribute-level dataflow refinement — plus the
        total pair count.

        Quantifies how much each tier prunes: every tier is sound, so
        ``dataflow <= column <= table`` always holds (the tiers only
        remove noncommutativity reasons, never add them). Certifications
        and priorities are deliberately ignored: this counts what the
        *syntactic* analysis proves. Memoized per rule-set content (the
        counts cannot change under certify/priority edits).
        """
        if self._pruning_counts is not None:
            return dict(self._pruning_counts)
        start = time.perf_counter()
        definitions = self.definitions
        names = sorted(definitions.rule_names)
        pairs = [
            (first, second)
            for i, first in enumerate(names)
            for second in names[i + 1 :]
        ]
        counts: dict[str, int] = {"total_pairs": len(pairs)}
        tiers = (
            ("table", {"granularity": "table"}),
            ("column", {"granularity": "column"}),
            ("dataflow", {"granularity": "column", "column_dataflow": True}),
        )
        for label, kwargs in tiers:
            judge = CommutativityAnalyzer(
                definitions, refine=self.refine, **kwargs
            )
            counts[f"noncommutative_{label}"] = sum(
                1
                for first, second in pairs
                if judge.compute_reasons(first, second)
            )
        self._pruning_counts = counts
        self.stats.add_time("pair_pruning", time.perf_counter() - start)
        return dict(counts)

    # ------------------------------------------------------------------
    # Parallel fan-out
    # ------------------------------------------------------------------

    def _should_parallelize(self, n_rules: int) -> bool:
        if self.parallel is False:
            return False
        if self.parallel is True:
            return n_rules >= 2
        return n_rules >= self.parallel_threshold

    def _warm_reasons_parallel(self, view: _View, names: list[str]) -> None:
        """Pre-judge every raw Lemma 6.1 pair over *names* in chunked
        batches on a thread pool, then install results deterministically.

        Workers only call the pure ``compute_reasons`` (no shared-state
        writes); the coordinating thread stores results in sorted pair
        order, so the memo contents — and everything derived from them —
        are byte-identical to the serial path.
        """
        pending = [
            (first, second)
            for i, first in enumerate(names)
            for second in names[i + 1 :]
            if not view.commutativity.is_cached(first, second)
        ]
        if len(pending) < 2:
            return
        chunk_size = max(1, len(pending) // (self.max_workers * 4))
        chunks = [
            pending[i : i + chunk_size]
            for i in range(0, len(pending), chunk_size)
        ]

        def judge_chunk(
            chunk: list[tuple[str, str]],
        ) -> list[tuple[str, str, tuple[NoncommutativityReason, ...]]]:
            return [
                (first, second, view.commutativity.compute_reasons(first, second))
                for first, second in chunk
            ]

        start = time.perf_counter()
        with ThreadPoolExecutor(max_workers=self.max_workers) as pool:
            results = list(pool.map(judge_chunk, chunks))
        for chunk_result in results:
            for first, second, reasons in chunk_result:
                view.commutativity.store_reasons(first, second, reasons)
        self.stats.parallel_batches += len(chunks)
        self.stats.add_time("parallel_warm", time.perf_counter() - start)
