"""Graphviz (DOT) export of the analysis and execution graphs.

The paper's interactive environment is fundamentally about *showing*
rule programmers the structure of their rule sets; DOT output plugs
into any Graphviz toolchain. No Graphviz dependency is required — these
functions only emit text.

* :func:`triggering_graph_dot` — ``TG_R`` with cyclic strong components
  highlighted and priority edges drawn dashed;
* :func:`execution_graph_dot` — an explored execution graph with final
  states doubled and edge labels naming the considered rule.
"""

from __future__ import annotations

from repro.analysis.termination import TriggeringGraph
from repro.rules.priorities import PriorityRelation
from repro.runtime.exec_graph import ExecutionGraph


def _quote(name: str) -> str:
    escaped = name.replace('"', '\\"')
    return f'"{escaped}"'


def triggering_graph_dot(
    graph: TriggeringGraph,
    priorities: PriorityRelation | None = None,
    certified: frozenset[str] = frozenset(),
    certified_pairs: frozenset[frozenset[str]] = frozenset(),
    suggested: frozenset[str] = frozenset(),
    legend: bool = False,
    strata: dict[str, int] | None = None,
    witness_rules: frozenset[str] = frozenset(),
) -> str:
    """Render ``TG_R`` as DOT.

    Rules on a cyclic strong component are filled red (or green when
    user-certified); rules in *suggested* — uncertified cycle members
    the lint heuristics (RPL007) believe could be discharged — keep the
    red fill but get a dashed border, mirroring the "suggested cycle
    certification" lint output. Rules in *witness_rules* — members of a
    cycle with a concrete non-termination witness (RPL010) — are filled
    orange with a bold border. ``Triggers`` edges are solid, direct
    priority edges dashed grey, and user-certified commutativity
    *certified_pairs* appear as dashed green undirected edges. When the
    layered analysis supplies *strata* (rule -> stratum of the
    refined-graph condensation), nodes are grouped into one
    ``cluster_stratum_<i>`` subgraph per stratum. With ``legend=True``
    a legend cluster explains every style in use.
    """
    cyclic_members: set[str] = set()
    for component in graph.cyclic_components():
        cyclic_members |= component

    lines = ["digraph triggering_graph {", "  rankdir=LR;"]
    lines.append("  node [shape=box, style=rounded];")

    def node_line(node: str, indent: str = "  ") -> str:
        attributes = []
        if node in witness_rules:
            attributes.append(
                'style="rounded,filled,bold", fillcolor=orange'
            )
        elif node in cyclic_members:
            if node in certified:
                attributes.append(
                    'style="rounded,filled", fillcolor=palegreen'
                )
            elif node in suggested:
                attributes.append(
                    'style="rounded,filled,dashed", fillcolor=lightcoral'
                )
            else:
                attributes.append(
                    'style="rounded,filled", fillcolor=lightcoral'
                )
        rendered = f" [{', '.join(attributes)}]" if attributes else ""
        return f"{indent}{_quote(node)}{rendered};"

    if strata:
        by_stratum: dict[int | None, list[str]] = {}
        for node in graph.nodes:
            by_stratum.setdefault(strata.get(node), []).append(node)
        for stratum in sorted(
            key for key in by_stratum if key is not None
        ):
            lines.append(f"  subgraph cluster_stratum_{stratum} {{")
            lines.append(f'    label="stratum {stratum}";')
            lines.append("    fontsize=10;")
            lines.append("    color=grey;")
            for node in sorted(by_stratum[stratum]):
                lines.append(node_line(node, indent="    "))
            lines.append("  }")
        for node in sorted(by_stratum.get(None, ())):
            lines.append(node_line(node))
    else:
        for node in graph.nodes:
            lines.append(node_line(node))

    for source in graph.nodes:
        for target in sorted(graph.successors[source]):
            lines.append(f"  {_quote(source)} -> {_quote(target)};")

    if priorities is not None:
        for higher, lower in sorted(priorities.direct_pairs()):
            lines.append(
                f"  {_quote(higher)} -> {_quote(lower)} "
                '[style=dashed, color=grey, label="precedes"];'
            )

    for pair in sorted(certified_pairs, key=sorted):
        first, second = sorted(pair)
        lines.append(
            f"  {_quote(first)} -> {_quote(second)} "
            "[style=dashed, color=darkgreen, dir=none, "
            'label="certified commutes"];'
        )

    if legend:
        lines.extend(
            _legend_lines(
                certified, certified_pairs, suggested, witness_rules
            )
        )

    lines.append("}")
    return "\n".join(lines) + "\n"


def _legend_lines(
    certified: frozenset[str],
    certified_pairs: frozenset[frozenset[str]],
    suggested: frozenset[str],
    witness_rules: frozenset[str] = frozenset(),
) -> list[str]:
    rows = [
        ("uncertified cycle member", "filled", "lightcoral"),
    ]
    if suggested:
        rows.append(
            ("certification suggested (lint RPL007)", "filled,dashed",
             "lightcoral")
        )
    if witness_rules:
        rows.append(
            ("non-termination witness (lint RPL010)", "filled,bold",
             "orange")
        )
    if certified:
        rows.append(("user-certified cycle member", "filled", "palegreen"))
    lines = [
        "  subgraph cluster_legend {",
        '    label="legend";',
        "    fontsize=10;",
        "    node [shape=box, style=rounded, fontsize=10];",
    ]
    for position, (text, style, fill) in enumerate(rows):
        lines.append(
            f'    legend{position} [label="{text}", '
            f'style="rounded,{style}", fillcolor={fill}];'
        )
    lines.append(
        '    legend_triggers_a [label=""]; legend_triggers_b [label=""];'
    )
    lines.append(
        '    legend_triggers_a -> legend_triggers_b [label="triggers"];'
    )
    lines.append(
        "    legend_triggers_b -> legend_triggers_a "
        '[style=dashed, color=grey, label="precedes"];'
    )
    if certified_pairs:
        lines.append(
            "    legend_triggers_a -> legend_triggers_a "
            "[style=dashed, color=darkgreen, dir=none, "
            'label="certified commutes"];'
        )
    lines.append("  }")
    return lines


def execution_graph_dot(graph: ExecutionGraph) -> str:
    """Render an explored execution graph as DOT.

    States are numbered in discovery-stable order (sorted by key);
    the initial state is bolded, final states use double circles.
    """
    keys = sorted(
        set(graph.edges)
        | graph.final_states
        | {graph.initial}
        | {child for successors in graph.edges.values() for __, child in successors},
        key=repr,
    )
    index = {key: position for position, key in enumerate(keys)}

    lines = ["digraph execution_graph {"]
    for key in keys:
        attributes = ["shape=circle", f'label="S{index[key]}"']
        if key in graph.final_states:
            attributes[0] = "shape=doublecircle"
        if key == graph.initial:
            attributes.append("penwidth=2")
        lines.append(f"  s{index[key]} [{', '.join(attributes)}];")

    for key, successors in graph.edges.items():
        for rule, child in successors:
            lines.append(
                f"  s{index[key]} -> s{index[child]} "
                f"[label={_quote(rule)}];"
            )

    lines.append("}")
    return "\n".join(lines) + "\n"
