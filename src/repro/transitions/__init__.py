"""Transition theory: primitive deltas, net effects, transition tables.

Implements the net-effect semantics of Section 2 of the paper (after
[WF90]): rules consider only the *net effect* of a transition, composed
at tuple granularity:

1. several updates of one tuple → the single composite update;
2. update then delete → just the deletion (of the original value);
3. insert then update → insertion of the updated tuple;
4. insert then delete → nothing at all.
"""

from repro.transitions.delta import DeltaLog, Primitive
from repro.transitions.net_effect import NetEffect, TableNetEffect
from repro.transitions.transition_tables import transition_table_overlays

__all__ = [
    "DeltaLog",
    "Primitive",
    "NetEffect",
    "TableNetEffect",
    "transition_table_overlays",
]
