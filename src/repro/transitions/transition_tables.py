"""Materialization of transition tables for rule conditions and actions.

At the moment a rule is considered, its condition and action see four
logical tables reflecting its triggering transition (Section 2):

* ``inserted``      — tuples of the rule's table inserted by the transition;
* ``deleted``       — tuples deleted by it;
* ``new_updated``   — post-transition values of updated tuples;
* ``old_updated``   — pre-transition values of updated tuples.

A rule may only refer to transition tables corresponding to its
triggering operations; :mod:`repro.rules.rule` validates that statically.
"""

from __future__ import annotations

from repro.transitions.net_effect import NetEffect

TRANSITION_TABLES = ("inserted", "deleted", "new_updated", "old_updated")


def transition_table_overlays(
    net_effect: NetEffect,
    table: str,
    column_names: tuple[str, ...],
) -> dict[str, tuple[tuple[str, ...], list[tuple]]]:
    """Build overlay entries serving the four transition tables.

    The overlays map each transition-table name to ``(columns, rows)``
    in the format expected by
    :class:`repro.engine.query.OverlayProvider`. Rows are sorted by tid,
    giving deterministic iteration order.
    """
    effect = net_effect.table(table)
    inserted = [effect.inserted[tid] for tid in sorted(effect.inserted)]
    deleted = [effect.deleted[tid] for tid in sorted(effect.deleted)]
    updated_tids = sorted(effect.updated)
    old_updated = [effect.updated[tid][0] for tid in updated_tids]
    new_updated = [effect.updated[tid][1] for tid in updated_tids]
    return {
        "inserted": (column_names, inserted),
        "deleted": (column_names, deleted),
        "new_updated": (column_names, new_updated),
        "old_updated": (column_names, old_updated),
    }
