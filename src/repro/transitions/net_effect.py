"""Net-effect composition of primitive operations ([WF90], Section 2).

Folding a primitive sequence at tuple (tid) granularity yields, per
table, three disjoint maps: inserted tuples, deleted tuples (with their
pre-transition values), and updated tuples (with pre- and
post-transition values). Identity composite updates (old == new after
composition) vanish from the net effect: a sequence of updates that
restores a tuple's original values triggers nothing — which is also what
makes rule *untriggering* (Section 3's ``Can-Untrigger``) possible at
the tuple level.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.transitions.delta import Primitive


@dataclass
class TableNetEffect:
    """The net effect of a transition on a single table."""

    table: str
    inserted: dict[int, tuple] = field(default_factory=dict)
    deleted: dict[int, tuple] = field(default_factory=dict)
    updated: dict[int, tuple[tuple, tuple]] = field(default_factory=dict)

    def is_empty(self) -> bool:
        return not (self.inserted or self.deleted or self.updated)

    def updated_columns(self, column_names: tuple[str, ...]) -> frozenset[str]:
        """Column names whose value changed in some composite update."""
        changed: set[str] = set()
        for old, new in self.updated.values():
            for name, old_value, new_value in zip(column_names, old, new):
                if old_value != new_value or type(old_value) is not type(
                    new_value
                ):
                    changed.add(name)
        return frozenset(changed)

    def canonical(self) -> tuple:
        """A hashable, tid-free canonical form (for execution-graph states).

        Tids are surrogate identifiers; two transitions that insert,
        delete and update the same bags of values are the same
        transition for state-identity purposes.
        """
        return (
            self.table,
            tuple(sorted(self.inserted.values(), key=_row_key)),
            tuple(sorted(self.deleted.values(), key=_row_key)),
            tuple(
                sorted(
                    self.updated.values(),
                    key=lambda pair: (_row_key(pair[0]), _row_key(pair[1])),
                )
            ),
        )


def _row_key(values: tuple) -> tuple:
    from repro.engine.values import row_sort_key

    return row_sort_key(values)


class NetEffect:
    """The net effect of a transition across all tables."""

    def __init__(self, tables: dict[str, TableNetEffect] | None = None) -> None:
        self._tables = tables or {}

    @classmethod
    def from_primitives(cls, primitives: list[Primitive]) -> "NetEffect":
        """Fold *primitives* (in sequence order) into their net effect."""
        tables: dict[str, TableNetEffect] = {}
        for primitive in primitives:
            effect = tables.get(primitive.table)
            if effect is None:
                effect = TableNetEffect(primitive.table)
                tables[primitive.table] = effect
            _fold(effect, primitive)

        # Drop identity composite updates and empty tables.
        for effect in tables.values():
            identity = [
                tid
                for tid, (old, new) in effect.updated.items()
                if old == new
            ]
            for tid in identity:
                del effect.updated[tid]
        tables = {
            name: effect for name, effect in tables.items() if not effect.is_empty()
        }
        return cls(tables)

    def table(self, name: str) -> TableNetEffect:
        """The (possibly empty) net effect on table *name*."""
        return self._tables.get(name.lower(), TableNetEffect(name.lower()))

    @property
    def tables(self) -> tuple[str, ...]:
        return tuple(sorted(self._tables))

    def is_empty(self) -> bool:
        return not self._tables

    def operations(
        self, column_names_of: dict[str, tuple[str, ...]]
    ) -> frozenset:
        """The operation set ``O ⊆ O`` of this transition (Section 3).

        Returns :class:`~repro.rules.events.TriggerEvent` values:
        ``(I, t)`` when the net effect inserts into ``t``; ``(D, t)``
        when it deletes; ``(U, t.c)`` for every column ``c`` changed by
        a composite update. *column_names_of* maps table name to its
        column-name tuple (needed to name updated columns).
        """
        from repro.rules.events import TriggerEvent

        operations: set = set()
        for name, effect in self._tables.items():
            if effect.inserted:
                operations.add(TriggerEvent.insert(name))
            if effect.deleted:
                operations.add(TriggerEvent.delete(name))
            if effect.updated:
                for column in effect.updated_columns(column_names_of[name]):
                    operations.add(TriggerEvent.update(name, column))
        return frozenset(operations)

    def canonical(self) -> tuple:
        return tuple(
            self._tables[name].canonical() for name in sorted(self._tables)
        )

    def __repr__(self) -> str:
        parts = []
        for name in sorted(self._tables):
            effect = self._tables[name]
            parts.append(
                f"{name}(+{len(effect.inserted)} -{len(effect.deleted)} "
                f"~{len(effect.updated)})"
            )
        return f"NetEffect({', '.join(parts) or 'empty'})"


def _fold(effect: TableNetEffect, primitive: Primitive) -> None:
    tid = primitive.tid
    if primitive.kind == "I":
        if tid in effect.inserted or tid in effect.updated or tid in effect.deleted:
            # Tids are unique for a tuple's lifetime, so re-insertion of a
            # tid can only be the rollback-free re-use guarded against in
            # storage; reaching here indicates a processor bug.
            raise ValueError(f"tid {tid} already present in net effect")
        effect.inserted[tid] = primitive.new
        return

    if primitive.kind == "U":
        if tid in effect.inserted:
            # insert then update => insert of the updated tuple
            effect.inserted[tid] = primitive.new
            return
        if tid in effect.updated:
            # update then update => composite update
            original_old, __ = effect.updated[tid]
            effect.updated[tid] = (original_old, primitive.new)
            return
        if tid in effect.deleted:
            raise ValueError(f"update of deleted tid {tid}")
        effect.updated[tid] = (primitive.old, primitive.new)
        return

    # primitive.kind == "D"
    if tid in effect.inserted:
        # insert then delete => not considered at all
        del effect.inserted[tid]
        return
    if tid in effect.updated:
        # update then delete => deletion of the original value
        original_old, __ = effect.updated.pop(tid)
        effect.deleted[tid] = original_old
        return
    if tid in effect.deleted:
        raise ValueError(f"double delete of tid {tid}")
    effect.deleted[tid] = primitive.old
