"""Net-effect composition of primitive operations ([WF90], Section 2).

Folding a primitive sequence at tuple (tid) granularity yields, per
table, three disjoint maps: inserted tuples, deleted tuples (with their
pre-transition values), and updated tuples (with pre- and
post-transition values). Identity composite updates (old == new after
composition) vanish from the net effect: a sequence of updates that
restores a tuple's original values triggers nothing — which is also what
makes rule *untriggering* (Section 3's ``Can-Untrigger``) possible at
the tuple level.

Incrementality. Because tids are unique for a tuple's lifetime,
net-effect composition is associative over log suffixes *including* the
compaction steps (dropping identity updates and empty tables): an
identity composite update means the tuple currently holds its
pre-transition values, so folding later primitives onto the compacted
state yields exactly the from-scratch result. :meth:`NetEffect.fold`
exploits this: the rule processor keeps one cached net effect per rule
and advances it by only the primitives appended since the last check,
instead of refolding the whole suffix. Folds are copy-on-write at table
granularity — a fold touching table ``t`` leaves every other table's
:class:`TableNetEffect` structurally shared with the input — so forked
processors alias their parents' cached transitions.
"""

from __future__ import annotations

from repro.transitions.delta import Primitive


class TableNetEffect:
    """The net effect of a transition on a single table."""

    __slots__ = ("table", "inserted", "deleted", "updated", "_owned", "_canonical")

    def __init__(
        self,
        table: str,
        inserted: dict[int, tuple] | None = None,
        deleted: dict[int, tuple] | None = None,
        updated: dict[int, tuple[tuple, tuple]] | None = None,
    ) -> None:
        self.table = table
        self.inserted = inserted if inserted is not None else {}
        self.deleted = deleted if deleted is not None else {}
        self.updated = updated if updated is not None else {}
        #: False once this effect is structurally shared (a fold must
        #: copy it before mutating)
        self._owned = True
        #: memoized canonical() — invalidated on mutation
        self._canonical: tuple | None = None

    def is_empty(self) -> bool:
        return not (self.inserted or self.deleted or self.updated)

    def updated_columns(self, column_names: tuple[str, ...]) -> frozenset[str]:
        """Column names whose value changed in some composite update."""
        changed: set[str] = set()
        for old, new in self.updated.values():
            for name, old_value, new_value in zip(column_names, old, new):
                if old_value != new_value or type(old_value) is not type(
                    new_value
                ):
                    changed.add(name)
        return frozenset(changed)

    def canonical(self) -> tuple:
        """A hashable, tid-free canonical form (for execution-graph states).

        Tids are surrogate identifiers; two transitions that insert,
        delete and update the same bags of values are the same
        transition for state-identity purposes.
        """
        if self._canonical is None:
            self._canonical = (
                self.table,
                tuple(sorted(self.inserted.values(), key=_row_key)),
                tuple(sorted(self.deleted.values(), key=_row_key)),
                tuple(
                    sorted(
                        self.updated.values(),
                        key=lambda pair: (
                            _row_key(pair[0]),
                            _row_key(pair[1]),
                        ),
                    )
                ),
            )
        return self._canonical

    def _copy(self) -> "TableNetEffect":
        clone = TableNetEffect(
            self.table,
            dict(self.inserted),
            dict(self.deleted),
            dict(self.updated),
        )
        clone._canonical = self._canonical
        return clone

    def __eq__(self, other) -> bool:
        if not isinstance(other, TableNetEffect):
            return NotImplemented
        return (
            self.table == other.table
            and self.inserted == other.inserted
            and self.deleted == other.deleted
            and self.updated == other.updated
        )

    def __repr__(self) -> str:
        return (
            f"TableNetEffect(table={self.table!r}, "
            f"inserted={self.inserted!r}, deleted={self.deleted!r}, "
            f"updated={self.updated!r})"
        )


def _row_key(values: tuple) -> tuple:
    from repro.engine.values import row_sort_key

    return row_sort_key(values)


class NetEffect:
    """The net effect of a transition across all tables."""

    __slots__ = ("_tables",)

    def __init__(self, tables: dict[str, TableNetEffect] | None = None) -> None:
        self._tables = tables or {}

    @classmethod
    def from_primitives(cls, primitives) -> "NetEffect":
        """Fold *primitives* (in sequence order) into their net effect."""
        return cls().fold(primitives)

    def fold(self, primitives) -> "NetEffect":
        """This net effect advanced by *primitives* (in sequence order).

        Equivalent to refolding the full underlying sequence from
        scratch, in time proportional to ``len(primitives)`` plus the
        pending state of the touched tables. Copy-on-write: untouched
        tables are shared with ``self``; touched tables are copied
        first unless ``self`` still owns them (see :meth:`share`).
        Ownership of mutated state transfers to the result — after a
        fold, use the returned net effect, not ``self``.
        """
        tables = self._tables
        result: dict[str, TableNetEffect] | None = None
        touched: set[str] = set()
        #: (table, tid) pairs whose composite update this fold modified —
        #: the only entries that can have become identity updates
        updated_tids: set[tuple[str, int]] = set()
        for primitive in primitives:
            if result is None:
                result = dict(tables)
            name = primitive.table
            effect = result.get(name)
            if effect is None:
                effect = TableNetEffect(name)
                result[name] = effect
            elif name not in touched and not effect._owned:
                effect = effect._copy()
                result[name] = effect
            touched.add(name)
            effect._canonical = None
            _fold(effect, primitive)
            if primitive.kind == "U" and primitive.tid in effect.updated:
                updated_tids.add((name, primitive.tid))

        if result is None:
            return self

        # Compact: identity composite updates and empty table effects
        # vanish from the net effect. Only entries this fold modified
        # can have become identity, so compaction is O(new primitives).
        for name, tid in updated_tids:
            effect = result[name]
            pair = effect.updated.get(tid)
            if pair is not None and pair[0] == pair[1]:
                del effect.updated[tid]
        for name in touched:
            if result[name].is_empty():
                del result[name]
        return NetEffect(result)

    def share(self) -> "NetEffect":
        """Mark every table effect shared; later folds copy-on-write.

        Called when a cached net effect escapes its owner (processor
        forks, ``pending_net_effect`` returns to a caller).
        """
        for effect in self._tables.values():
            effect._owned = False
        return self

    def table(self, name: str) -> TableNetEffect:
        """The (possibly empty) net effect on table *name*."""
        return self._tables.get(name.lower()) or TableNetEffect(name.lower())

    @property
    def tables(self) -> tuple[str, ...]:
        return tuple(sorted(self._tables))

    def is_empty(self) -> bool:
        return not self._tables

    def operations(
        self, column_names_of: dict[str, tuple[str, ...]]
    ) -> frozenset:
        """The operation set ``O ⊆ O`` of this transition (Section 3).

        Returns :class:`~repro.rules.events.TriggerEvent` values:
        ``(I, t)`` when the net effect inserts into ``t``; ``(D, t)``
        when it deletes; ``(U, t.c)`` for every column ``c`` changed by
        a composite update. *column_names_of* maps table name to its
        column-name tuple (needed to name updated columns).
        """
        operations: set = set()
        for name in self._tables:
            operations |= self.operations_for(name, column_names_of[name])
        return frozenset(operations)

    def operations_for(
        self, table: str, column_names: tuple[str, ...]
    ) -> frozenset:
        """The operation set restricted to *table*.

        Rules trigger only on operations of their own table, so the
        processor's triggering check needs just this slice — O(pending
        effect on one table) instead of O(pending effect overall).
        """
        from repro.rules.events import TriggerEvent

        effect = self._tables.get(table)
        if effect is None:
            return frozenset()
        operations: set = set()
        if effect.inserted:
            operations.add(TriggerEvent.insert(table))
        if effect.deleted:
            operations.add(TriggerEvent.delete(table))
        if effect.updated:
            for column in effect.updated_columns(column_names):
                operations.add(TriggerEvent.update(table, column))
        return frozenset(operations)

    def canonical(self) -> tuple:
        return tuple(
            self._tables[name].canonical() for name in sorted(self._tables)
        )

    def __repr__(self) -> str:
        parts = []
        for name in sorted(self._tables):
            effect = self._tables[name]
            parts.append(
                f"{name}(+{len(effect.inserted)} -{len(effect.deleted)} "
                f"~{len(effect.updated)})"
            )
        return f"NetEffect({', '.join(parts) or 'empty'})"


def _fold(effect: TableNetEffect, primitive: Primitive) -> None:
    tid = primitive.tid
    if primitive.kind == "I":
        if tid in effect.inserted or tid in effect.updated or tid in effect.deleted:
            # Tids are unique for a tuple's lifetime, so re-insertion of a
            # tid can only be the rollback-free re-use guarded against in
            # storage; reaching here indicates a processor bug.
            raise ValueError(f"tid {tid} already present in net effect")
        effect.inserted[tid] = primitive.new
        return

    if primitive.kind == "U":
        if tid in effect.inserted:
            # insert then update => insert of the updated tuple
            effect.inserted[tid] = primitive.new
            return
        if tid in effect.updated:
            # update then update => composite update
            original_old, __ = effect.updated[tid]
            effect.updated[tid] = (original_old, primitive.new)
            return
        if tid in effect.deleted:
            raise ValueError(f"update of deleted tid {tid}")
        effect.updated[tid] = (primitive.old, primitive.new)
        return

    # primitive.kind == "D"
    if tid in effect.inserted:
        # insert then delete => not considered at all
        del effect.inserted[tid]
        return
    if tid in effect.updated:
        # update then delete => deletion of the original value
        original_old, __ = effect.updated.pop(tid)
        effect.deleted[tid] = original_old
        return
    if tid in effect.deleted:
        raise ValueError(f"double delete of tid {tid}")
    effect.deleted[tid] = primitive.old
