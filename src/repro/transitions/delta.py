"""Primitive tuple-level operations and the append-only delta log.

The rule processor appends a :class:`Primitive` for every tuple an
INSERT/DELETE/UPDATE statement touches. Each rule holds a *marker* (a
log position); the rule's current triggering transition is the net
effect of the log suffix past its marker. This reproduces the
composite-transition bookkeeping of Section 2: rules not yet considered
see operations folded into the transition that first triggered them,
while a rule already considered only sees operations executed since.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Primitive:
    """One tuple-level operation, as executed (not net-effect composed).

    ``kind`` is ``"I"``, ``"D"`` or ``"U"``. ``old`` is None for inserts;
    ``new`` is None for deletes.
    """

    seq: int
    kind: str
    table: str
    tid: int
    old: tuple | None
    new: tuple | None

    def __post_init__(self) -> None:
        if self.kind not in ("I", "D", "U"):
            raise ValueError(f"bad primitive kind {self.kind!r}")
        if self.kind == "I" and (self.old is not None or self.new is None):
            raise ValueError("insert primitive needs new values only")
        if self.kind == "D" and (self.old is None or self.new is not None):
            raise ValueError("delete primitive needs old values only")
        if self.kind == "U" and (self.old is None or self.new is None):
            raise ValueError("update primitive needs old and new values")


class DeltaLog:
    """An append-only log of primitives with stable positions."""

    def __init__(self) -> None:
        self._primitives: list[Primitive] = []

    @property
    def position(self) -> int:
        """The current end-of-log position (a marker value)."""
        return len(self._primitives)

    def record_insert(self, table: str, tid: int, values: tuple) -> Primitive:
        return self._append("I", table, tid, None, values)

    def record_delete(self, table: str, tid: int, values: tuple) -> Primitive:
        return self._append("D", table, tid, values, None)

    def record_update(
        self, table: str, tid: int, old: tuple, new: tuple
    ) -> Primitive:
        return self._append("U", table, tid, old, new)

    def _append(
        self,
        kind: str,
        table: str,
        tid: int,
        old: tuple | None,
        new: tuple | None,
    ) -> Primitive:
        primitive = Primitive(
            seq=len(self._primitives),
            kind=kind,
            table=table.lower(),
            tid=tid,
            old=old,
            new=new,
        )
        self._primitives.append(primitive)
        return primitive

    def since(self, marker: int) -> list[Primitive]:
        """The primitives appended at or after log position *marker*."""
        if marker < 0:
            raise ValueError("marker must be non-negative")
        return self._primitives[marker:]

    def all(self) -> list[Primitive]:
        return list(self._primitives)

    def truncate(self, position: int) -> None:
        """Discard primitives past *position* (used by rollback restore)."""
        del self._primitives[position:]

    def __len__(self) -> int:
        return len(self._primitives)
