"""Primitive tuple-level operations and the append-only delta log.

The rule processor appends a :class:`Primitive` for every tuple an
INSERT/DELETE/UPDATE statement touches. Each rule holds a *marker* (a
log position); the rule's current triggering transition is the net
effect of the log suffix past its marker. This reproduces the
composite-transition bookkeeping of Section 2: rules not yet considered
see operations folded into the transition that first triggered them,
while a rule already considered only sees operations executed since.

Representation. The log is a sequence of *sealed chunks* (immutable
tuples of primitives, shared structurally between forks) followed by a
private mutable tail. :meth:`DeltaLog.fork` seals the tail and aliases
the chunk list, so forking a processor mid-exploration is O(chunks)
regardless of how many primitives the log holds — the execution-graph
explorer forks at every branch, and used to pay O(log) per fork.

The log also maintains a per-table *touch index* (:meth:`last_write`):
the position just past the most recent primitive on each table. The
rule processor uses it to skip triggering checks for rules whose table
was not written since their marker, without folding anything.
"""

from __future__ import annotations


class Primitive:
    """One tuple-level operation, as executed (not net-effect composed).

    ``kind`` is ``"I"``, ``"D"`` or ``"U"``. ``old`` is None for inserts;
    ``new`` is None for deletes.

    This is the hot-path record type — one instance per tuple touched by
    any statement — so construction performs no validation: the three
    typed ``DeltaLog.record_*`` constructors enforce the shape invariants
    by their signatures. Use :meth:`checked` for the validating path
    (deserialization, hand-built test fixtures).
    """

    __slots__ = ("seq", "kind", "table", "tid", "old", "new")

    def __init__(
        self,
        seq: int,
        kind: str,
        table: str,
        tid: int,
        old: tuple | None,
        new: tuple | None,
    ) -> None:
        self.seq = seq
        self.kind = kind
        self.table = table
        self.tid = tid
        self.old = old
        self.new = new

    @classmethod
    def checked(
        cls,
        seq: int,
        kind: str,
        table: str,
        tid: int,
        old: tuple | None,
        new: tuple | None,
    ) -> "Primitive":
        """The validating constructor (deserialization / fixtures)."""
        primitive = cls(seq, kind, table, tid, old, new)
        primitive.validate()
        return primitive

    def validate(self) -> None:
        if self.kind not in ("I", "D", "U"):
            raise ValueError(f"bad primitive kind {self.kind!r}")
        if self.kind == "I" and (self.old is not None or self.new is None):
            raise ValueError("insert primitive needs new values only")
        if self.kind == "D" and (self.old is None or self.new is not None):
            raise ValueError("delete primitive needs old values only")
        if self.kind == "U" and (self.old is None or self.new is None):
            raise ValueError("update primitive needs old and new values")

    def _astuple(self) -> tuple:
        return (self.seq, self.kind, self.table, self.tid, self.old, self.new)

    def __eq__(self, other) -> bool:
        if not isinstance(other, Primitive):
            return NotImplemented
        return self._astuple() == other._astuple()

    def __hash__(self) -> int:
        return hash(self._astuple())

    def __repr__(self) -> str:
        return (
            f"Primitive(seq={self.seq}, kind={self.kind!r}, "
            f"table={self.table!r}, tid={self.tid}, old={self.old!r}, "
            f"new={self.new!r})"
        )


class DeltaLog:
    """An append-only log of primitives with stable positions.

    Positions are stable across :meth:`fork`: a marker taken on the
    parent indexes the same primitives on every fork.
    """

    __slots__ = ("_chunks", "_base", "_tail", "_last_write", "_sink")

    def __init__(self) -> None:
        #: sealed, immutable chunks — structurally shared between forks
        self._chunks: list[tuple[Primitive, ...]] = []
        #: total number of primitives across sealed chunks
        self._base = 0
        #: private mutable tail (never shared)
        self._tail: list[Primitive] = []
        #: table -> position just past its most recent primitive
        self._last_write: dict[str, int] = {}
        #: optional callable invoked with every appended primitive — the
        #: durability hook (the rule processor points it at a WAL
        #: writer). Never copied by :meth:`fork`: forks are exploratory
        #: and must not write to the durable log.
        self._sink = None

    def set_sink(self, sink) -> None:
        """Attach (or detach, with None) the per-primitive sink."""
        self._sink = sink

    @property
    def position(self) -> int:
        """The current end-of-log position (a marker value)."""
        return self._base + len(self._tail)

    def record_insert(self, table: str, tid: int, values: tuple) -> Primitive:
        return self._append("I", table, tid, None, values)

    def record_delete(self, table: str, tid: int, values: tuple) -> Primitive:
        return self._append("D", table, tid, values, None)

    def record_update(
        self, table: str, tid: int, old: tuple, new: tuple
    ) -> Primitive:
        return self._append("U", table, tid, old, new)

    def _append(
        self,
        kind: str,
        table: str,
        tid: int,
        old: tuple | None,
        new: tuple | None,
    ) -> Primitive:
        table = table.lower()
        position = self._base + len(self._tail)
        primitive = Primitive(position, kind, table, tid, old, new)
        self._tail.append(primitive)
        self._last_write[table] = position + 1
        if self._sink is not None:
            self._sink(primitive)
        return primitive

    # ------------------------------------------------------------------
    # Structural sharing
    # ------------------------------------------------------------------

    def seal(self) -> None:
        """Freeze the mutable tail into an immutable shared chunk."""
        if self._tail:
            self._chunks.append(tuple(self._tail))
            self._base += len(self._tail)
            self._tail = []

    def fork(self, share: bool = True) -> "DeltaLog":
        """An independent log holding the same primitives.

        With ``share`` (the default) the prefix is aliased in O(chunks);
        appends on either side stay private. ``share=False`` performs
        the flat O(n) copy of the pre-chunked representation (kept for
        benchmarking the non-incremental substrate).
        """
        clone = DeltaLog()
        if share:
            self.seal()
            clone._chunks = list(self._chunks)
            clone._base = self._base
        else:
            clone._chunks = [tuple(self._iter_all())] if self.position else []
            clone._base = self.position
        clone._last_write = dict(self._last_write)
        return clone

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------

    def _iter_all(self):
        for chunk in self._chunks:
            yield from chunk
        yield from self._tail

    def iter_range(self, start: int, stop: int):
        """Iterate primitives with ``start <= position < stop``."""
        if start < 0:
            raise ValueError("marker must be non-negative")
        if start >= stop:
            return
        offset = 0
        for chunk in self._chunks:
            end = offset + len(chunk)
            if end > start:
                lo = max(0, start - offset)
                hi = min(len(chunk), stop - offset)
                yield from chunk[lo:hi]
                if end >= stop:
                    return
            offset = end
        lo = max(0, start - self._base)
        hi = stop - self._base
        yield from self._tail[lo:hi]

    def since(self, marker: int) -> list[Primitive]:
        """The primitives appended at or after log position *marker*."""
        if marker < 0:
            raise ValueError("marker must be non-negative")
        return list(self.iter_range(marker, self.position))

    def all(self) -> list[Primitive]:
        return list(self._iter_all())

    def last_write(self, table: str) -> int:
        """Position just past the most recent primitive on *table*
        (0 if the table was never written)."""
        return self._last_write.get(table, 0)

    def written_since(self, table: str, position: int) -> bool:
        """True iff *table* has a primitive at or past *position*.

        The one touch-index consultation both consumers share: the rule
        processor's two-level triggering short-circuit (a rule whose
        table was not written since its marker cannot be triggered, and
        a cached verdict stays valid until the table is written past the
        check point) and the rete network's advance short-circuit (a
        network none of whose tables were written needs no folding).
        """
        return self._last_write.get(table, 0) > position

    def truncate(self, position: int) -> None:
        """Discard primitives past *position* (used by rollback restore)."""
        if position >= self.position:
            return
        kept = list(self.iter_range(0, position))
        self._chunks = []
        self._base = 0
        self._tail = kept
        self._last_write = {}
        for primitive in kept:
            self._last_write[primitive.table] = primitive.seq + 1

    def compact(self) -> int:
        """Drop the stored primitive prefix, keeping positions and the
        touch index.

        The concurrent server uses a :class:`DeltaLog` purely as a
        monotone *epoch source* and touch index over published commits:
        it never reads primitives back (the WAL holds the durable copy),
        so retaining them would grow memory without bound. Compaction
        seals the tail and discards the chunk contents; ``position``,
        ``last_write`` and ``written_since`` are unaffected, while
        :meth:`iter_range`/:meth:`since` over the dropped prefix return
        nothing (the compaction point is the new readable floor).
        Returns the number of primitives dropped.
        """
        self.seal()
        dropped = sum(len(chunk) for chunk in self._chunks)
        self._chunks = []
        return dropped

    def __len__(self) -> int:
        return self.position


class ColumnTouchIndex:
    """Per-kind, per-column write epochs over a stream of primitives.

    The coarse touch index (:meth:`DeltaLog.last_write`) answers "was
    this table written past position p?". First-committer-wins
    validation at *column* granularity needs three finer questions,
    answered by feeding every published primitive through
    :meth:`observe`:

    * ``inserted_since(table, p)`` — rows appeared (membership grew);
    * ``deleted_since(table, p)`` — rows disappeared (and with them
      every column value they carried);
    * ``updated_since(table, column, p)`` — this column's values
      changed in place (an update primitive whose old and new tuples
      differ at the column's index).

    Positions follow the same convention as ``last_write``: the value
    stored is one past the primitive's position, and 0 means "never".
    """

    __slots__ = ("_inserted", "_deleted", "_updated")

    def __init__(self) -> None:
        self._inserted: dict[str, int] = {}
        self._deleted: dict[str, int] = {}
        self._updated: dict[str, dict[int, int]] = {}

    def observe(self, primitive: Primitive) -> None:
        position = primitive.seq + 1
        if primitive.kind == "I":
            self._inserted[primitive.table] = position
        elif primitive.kind == "D":
            self._deleted[primitive.table] = position
        else:
            changed = self._updated.setdefault(primitive.table, {})
            for index, (old, new) in enumerate(
                zip(primitive.old, primitive.new)
            ):
                if old != new:
                    changed[index] = position

    def inserted_since(self, table: str, position: int) -> bool:
        return self._inserted.get(table, 0) > position

    def deleted_since(self, table: str, position: int) -> bool:
        return self._deleted.get(table, 0) > position

    def updated_since(self, table: str, column: int, position: int) -> bool:
        return self._updated.get(table, {}).get(column, 0) > position

    def any_update_since(self, table: str, position: int) -> bool:
        """True iff *any* column of *table* was updated past *position*."""
        return any(
            at > position for at in self._updated.get(table, {}).values()
        )
