"""[HH91]-style unique-fixed-point class (reconstruction).

Accepts a rule set iff

1. the triggering graph is acyclic (termination), and
2. **every** pair of distinct rules — ordered or not — commutes under
   the raw syntactic conditions of Lemma 6.1, with no user
   certifications.

This is strictly stronger than the paper's Confluence Requirement:
if all pairs commute then every ``R1 × R2`` pair of Definition 6.5
commutes trivially, so Definition 6.5 accepts everything this class
accepts (the subsumption direction proved in Section 9); rule sets
that use priorities to serialize noncommuting rules are accepted by
Definition 6.5 but rejected here.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.commutativity import CommutativityAnalyzer
from repro.analysis.derived import DerivedDefinitions
from repro.analysis.termination import TriggeringGraph
from repro.rules.ruleset import RuleSet


@dataclass(frozen=True)
class BaselineVerdict:
    """A baseline's accept/reject decision with its reasons."""

    accepts: bool
    reasons: tuple[str, ...] = ()


class HH91Checker:
    """Pairwise-commutativity unique-fixed-point class."""

    name = "hh91"

    def __init__(self, ruleset: RuleSet) -> None:
        self.ruleset = ruleset
        self.definitions = DerivedDefinitions(ruleset)
        # Raw Lemma 6.1 — deliberately no certification support.
        self._commutativity = CommutativityAnalyzer(self.definitions)

    def check(self) -> BaselineVerdict:
        reasons: list[str] = []

        graph = TriggeringGraph(self.definitions)
        cyclic = graph.cyclic_components()
        if cyclic:
            rendered = "; ".join(
                "{" + ", ".join(sorted(component)) + "}" for component in cyclic
            )
            reasons.append(f"triggering graph has cycles: {rendered}")

        names = sorted(self.definitions.rule_names)
        for i, first in enumerate(names):
            for second in names[i + 1 :]:
                if not self._commutativity.commute(first, second):
                    reasons.append(
                        f"rules {first!r} and {second!r} do not commute"
                    )

        return BaselineVerdict(accepts=not reasons, reasons=tuple(reasons))

    def accepts(self) -> bool:
        return self.check().accepts
