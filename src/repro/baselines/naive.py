"""Total-ordering baseline.

Early production-system work sidesteps confluence by *imposing* a total
order on the rules (the paper's Section 1.1: "the goal of previous work
is to impose restrictions and/or orderings ... such that unique fixed
points are guaranteed"). This checker accepts a rule set iff its
priority relation is already a total order — execution graphs then have
no branches, so confluence and observable determinism hold trivially
(given termination, which is still checked via the triggering graph).
"""

from __future__ import annotations

from repro.analysis.derived import DerivedDefinitions
from repro.analysis.termination import TriggeringGraph
from repro.baselines.hh91 import BaselineVerdict
from repro.rules.ruleset import RuleSet


class TotalOrderChecker:
    """Accepts iff priorities form a total order (and TG is acyclic)."""

    name = "total-order"

    def __init__(self, ruleset: RuleSet) -> None:
        self.ruleset = ruleset
        self.definitions = DerivedDefinitions(ruleset)

    def check(self) -> BaselineVerdict:
        reasons: list[str] = []

        graph = TriggeringGraph(self.definitions)
        if graph.cyclic_components():
            reasons.append("triggering graph has cycles")

        unordered = self.ruleset.priorities.unordered_pairs()
        for first, second in unordered:
            reasons.append(f"rules {first!r} and {second!r} are unordered")

        return BaselineVerdict(accepts=not reasons, reasons=tuple(reasons))

    def accepts(self) -> bool:
        return self.check().accepts
