"""[ZH90]-style rule-triggering-system class (reconstruction).

Accepts a rule set iff

1. the triggering graph is acyclic, and
2. rules are non-interfering at **table granularity**: no rule writes a
   table that any other rule reads or writes (writes = tables appearing
   in ``Performs``, reads = tables appearing in ``Reads``).

Table-granularity disjointness implies none of Lemma 6.1's conditions
can fire for any pair, so this class is contained in the
pairwise-commutativity class of :class:`~repro.baselines.hh91.HH91Checker`
— reproducing the subsumption chain cited in Section 9 ([HH91] subsumes
[Ras90, ZH90]).
"""

from __future__ import annotations

from repro.analysis.derived import DerivedDefinitions
from repro.analysis.termination import TriggeringGraph
from repro.baselines.hh91 import BaselineVerdict
from repro.rules.ruleset import RuleSet


class ZH90Checker:
    """Table-granularity non-interference class."""

    name = "zh90"

    def __init__(self, ruleset: RuleSet) -> None:
        self.ruleset = ruleset
        self.definitions = DerivedDefinitions(ruleset)

    def check(self) -> BaselineVerdict:
        reasons: list[str] = []

        graph = TriggeringGraph(self.definitions)
        cyclic = graph.cyclic_components()
        if cyclic:
            rendered = "; ".join(
                "{" + ", ".join(sorted(component)) + "}" for component in cyclic
            )
            reasons.append(f"triggering graph has cycles: {rendered}")

        names = sorted(self.definitions.rule_names)
        write_tables = {
            name: {event.table for event in self.definitions.performs(name)}
            for name in names
        }
        touch_tables = {
            name: write_tables[name]
            | {table for table, __ in self.definitions.reads(name)}
            for name in names
        }
        for i, first in enumerate(names):
            for second in names[i + 1 :]:
                overlap = (write_tables[first] & touch_tables[second]) | (
                    write_tables[second] & touch_tables[first]
                )
                if overlap:
                    reasons.append(
                        f"rules {first!r} and {second!r} interfere on "
                        f"tables {{{', '.join(sorted(overlap))}}}"
                    )

        return BaselineVerdict(accepts=not reasons, reasons=tuple(reasons))

    def accepts(self) -> bool:
        return self.check().accepts
