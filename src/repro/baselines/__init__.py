"""Baseline comparators for the Section 9 subsumption claims.

The paper compares its confluence analysis against prior work on OPS5
rule sets: [HH91] identifies a class of rule sets with guaranteed
unique fixed points, and has been shown to subsume [Ras90] and [ZH90].
The paper proves its Confluence Requirement properly subsumes [HH91]'s
class: every rule set [HH91] accepts is accepted by Definition 6.5, but
not vice versa.

None of those checkers were released, so we reconstruct them as
conservative syntactic classes with the subsumption ordering built in
**by construction** (see DESIGN.md "Substitutions"):

* :class:`ZH90Checker` — table-granularity non-interference: accepts iff
  the triggering graph is acyclic and no rule writes a table another
  rule reads or writes (strictly stronger than commutativity).
* :class:`HH91Checker` — pairwise-commutativity class: accepts iff the
  triggering graph is acyclic and *every* pair of distinct rules
  commutes under the raw Lemma 6.1 conditions (no user certifications).
* :class:`TotalOrderChecker` — the "impose a total ordering" approach of
  early OPS5 work: accepts iff the priority relation is a total order
  (then execution is deterministic trivially).

With these definitions the chain ZH90 ⊆ HH91 ⊆ Definition 6.5 is a
theorem (each class's condition implies the next's), and the benchmark
``bench_subsumption`` measures how much *properly* each inclusion gains
on random rule sets.
"""

from repro.baselines.hh91 import HH91Checker
from repro.baselines.zh90 import ZH90Checker
from repro.baselines.naive import TotalOrderChecker

__all__ = ["HH91Checker", "ZH90Checker", "TotalOrderChecker"]
