"""Rule objects: triggering events, rules, priorities, and rule sets."""

from repro.rules.events import TriggerEvent
from repro.rules.rule import Rule
from repro.rules.priorities import PriorityRelation
from repro.rules.ruleset import RuleSet

__all__ = ["TriggerEvent", "Rule", "PriorityRelation", "RuleSet"]
