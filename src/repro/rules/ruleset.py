"""The rule set ``R`` with its priority relation ``P`` (Section 3).

A :class:`RuleSet` is the unit all analyses operate on: an ordered
collection of named :class:`~repro.rules.rule.Rule` objects over one
schema, together with the transitive priority relation induced by their
``precedes``/``follows`` clauses (plus any orderings added later through
the interactive analyzer).
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.errors import RuleError
from repro.lang.parser import parse_rules
from repro.rules.priorities import PriorityRelation
from repro.rules.rule import Rule
from repro.schema.catalog import Schema


class RuleSet:
    """An immutable-ish collection of rules; priorities may be extended."""

    def __init__(self, schema: Schema, rules: Iterable[Rule] = ()) -> None:
        self.schema = schema
        self._rules: dict[str, Rule] = {}
        self._deactivated: set[str] = set()
        for rule in rules:
            self._add(rule)
        self.priorities = self._build_priorities()

    @classmethod
    def parse(cls, source: str, schema: Schema) -> "RuleSet":
        """Parse a sequence of ``create rule`` statements into a rule set."""
        definitions = parse_rules(source)
        return cls(schema, [Rule(defn, schema) for defn in definitions])

    def _add(self, rule: Rule) -> None:
        if rule.schema is not self.schema:
            raise RuleError(
                f"rule {rule.name!r} is bound to a different schema"
            )
        if rule.name in self._rules:
            raise RuleError(f"duplicate rule name {rule.name!r}")
        self._rules[rule.name] = rule

    def _build_priorities(self) -> PriorityRelation:
        relation = PriorityRelation(list(self._rules))
        for rule in self._rules.values():
            for lower in rule.precedes:
                if lower not in self._rules:
                    raise RuleError(
                        f"rule {rule.name!r} precedes unknown rule {lower!r}"
                    )
                relation.add_ordering(rule.name, lower)
            for higher in rule.follows:
                if higher not in self._rules:
                    raise RuleError(
                        f"rule {rule.name!r} follows unknown rule {higher!r}"
                    )
                relation.add_ordering(higher, rule.name)
        return relation

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------

    def rule(self, name: str) -> Rule:
        try:
            return self._rules[name.lower()]
        except KeyError:
            raise RuleError(f"unknown rule {name!r}") from None

    def has_rule(self, name: str) -> bool:
        return name.lower() in self._rules

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(self._rules)

    def __iter__(self) -> Iterator[Rule]:
        return iter(self._rules.values())

    def __len__(self) -> int:
        return len(self._rules)

    def __contains__(self, name: str) -> bool:
        return self.has_rule(name)

    # ------------------------------------------------------------------
    # Priority editing (the Section 6.4 interactive loop)
    # ------------------------------------------------------------------

    def add_priority(self, higher: str, lower: str) -> None:
        """Add ``higher > lower`` (as if editing a precedes clause)."""
        self.rule(higher)
        self.rule(lower)
        self.priorities.add_ordering(higher, lower)

    def remove_priority(self, higher: str, lower: str) -> bool:
        return self.priorities.remove_ordering(higher, lower)

    # ------------------------------------------------------------------
    # Activation (Starburst's deactivate/activate commands)
    # ------------------------------------------------------------------

    def deactivate(self, name: str) -> None:
        """Deactivate a rule: it stops being triggered until reactivated."""
        self.rule(name)
        self._deactivated.add(name.lower())

    def activate(self, name: str) -> None:
        self.rule(name)
        self._deactivated.discard(name.lower())

    def is_active(self, name: str) -> bool:
        self.rule(name)
        return name.lower() not in self._deactivated

    @property
    def active_names(self) -> tuple[str, ...]:
        return tuple(
            name for name in self._rules if name not in self._deactivated
        )

    def active_subset(self) -> "RuleSet":
        """The active rules as a stand-alone rule set (for analysis)."""
        return self.subset(self.active_names)

    # ------------------------------------------------------------------
    # Choose (Section 3)
    # ------------------------------------------------------------------

    def choose(self, triggered: Iterable[str]) -> tuple[str, ...]:
        """``Choose(R')``: the triggered rules eligible for consideration.

        A triggered rule is eligible iff no *other triggered* rule has
        precedence over it. Result is in rule-definition order.
        """
        triggered_set = {name.lower() for name in triggered}
        for name in triggered_set:
            self.rule(name)
        eligible = tuple(
            name
            for name in self._rules
            if name in triggered_set
            and not any(
                self.priorities.has_precedence(other, name)
                for other in triggered_set
                if other != name
            )
        )
        return eligible

    # ------------------------------------------------------------------

    def subset(self, names: Iterable[str]) -> "RuleSet":
        """A new RuleSet over the same schema containing only *names*.

        Priorities among the retained rules are preserved (including
        those added interactively).
        """
        keep = {name.lower() for name in names}
        for name in keep:
            self.rule(name)
        subset = RuleSet.__new__(RuleSet)
        subset.schema = self.schema
        subset._rules = {
            name: rule for name, rule in self._rules.items() if name in keep
        }
        subset._deactivated = set()
        relation = PriorityRelation(list(subset._rules))
        for higher, lower in sorted(self.priorities.pairs()):
            if higher in keep and lower in keep:
                relation.add_ordering(higher, lower)
        subset.priorities = relation
        return subset

    def source(self) -> str:
        """All rules rendered back to rule-language source."""
        return "\n\n".join(rule.source() for rule in self)

    def __repr__(self) -> str:
        return f"RuleSet({', '.join(self._rules)})"
