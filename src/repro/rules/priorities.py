"""The user-defined priority relation ``P`` (Section 3).

``P`` is the transitive closure of the orderings induced by ``precedes``
and ``follows`` clauses: if ``r1`` specifies ``r2`` in its precedes list
(or ``r2`` names ``r1`` in its follows list) then ``r1 > r2 ∈ P``. The
relation must be a strict partial order; cycles are rejected.
"""

from __future__ import annotations

from repro.errors import PriorityCycleError, RuleError


class PriorityRelation:
    """A strict partial order over rule names, closed under transitivity."""

    def __init__(self, rule_names: list[str]) -> None:
        self._names = [name.lower() for name in rule_names]
        self._name_set = set(self._names)
        if len(self._name_set) != len(self._names):
            raise RuleError("duplicate rule names in priority relation")
        #: direct edges: higher -> set of lower
        self._direct: dict[str, set[str]] = {name: set() for name in self._names}
        #: transitive closure: higher -> every lower it precedes
        self._closure: dict[str, set[str]] = {name: set() for name in self._names}
        #: inverse closure: lower -> every higher that precedes it
        self._above: dict[str, set[str]] = {name: set() for name in self._names}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def add_ordering(self, higher: str, lower: str) -> None:
        """Record ``higher > lower``; raises on cycles or self-ordering."""
        higher = higher.lower()
        lower = lower.lower()
        for name in (higher, lower):
            if name not in self._name_set:
                raise RuleError(f"unknown rule {name!r} in priority ordering")
        if higher == lower:
            raise PriorityCycleError([higher, lower])
        if higher in self._closure[lower]:
            # The new edge would close a cycle; borrow it briefly so the
            # direct graph contains the loop to report, then restore.
            self._direct[higher].add(lower)
            cycle = self._find_cycle(higher)
            self._direct[higher].discard(lower)
            raise PriorityCycleError(cycle)
        self._direct[higher].add(lower)
        # Incremental closure update: the edge adds exactly the pairs
        # (a, b) for a above-or-equal *higher*, b below-or-equal *lower*.
        new_above = {higher} | self._above[higher]
        new_below = {lower} | self._closure[lower]
        for name in new_above:
            self._closure[name] |= new_below
        for name in new_below:
            self._above[name] |= new_above

    def remove_ordering(self, higher: str, lower: str) -> bool:
        """Remove a *direct* ordering; returns True if one was present.

        Only direct edges can be removed — an ordering implied by
        transitivity through other edges persists, mirroring how a rule
        programmer can only edit precedes/follows clauses.
        """
        higher = higher.lower()
        lower = lower.lower()
        if lower in self._direct.get(higher, ()):
            self._direct[higher].discard(lower)
            self._rebuild_closure()
            return True
        return False

    def copy(self) -> "PriorityRelation":
        clone = PriorityRelation(list(self._names))
        clone._direct = {name: set(lower) for name, lower in self._direct.items()}
        clone._closure = {name: set(low) for name, low in self._closure.items()}
        clone._above = {name: set(high) for name, high in self._above.items()}
        return clone

    def _rebuild_closure(self) -> None:
        """Recompute the closure from the direct edges (memoized DFS).

        ``add_ordering`` maintains the closure incrementally; this full
        rebuild only runs after edge *removal*, where implied pairs may
        have to disappear. Each node's reachable set is computed once,
        in reverse-finish order, so the whole pass is O(V·E) set unions
        rather than one traversal per start node.
        """
        ACTIVE, DONE = 1, 2
        closure: dict[str, set[str]] = {}
        state: dict[str, int] = {}
        for root in self._names:
            if state.get(root) == DONE:
                continue
            state[root] = ACTIVE
            closure[root] = set()
            stack = [(root, iter(self._direct[root]))]
            while stack:
                node, successors = stack[-1]
                for succ in successors:
                    if state.get(succ) == ACTIVE:
                        raise PriorityCycleError(self._find_cycle(succ))
                    if state.get(succ) == DONE:
                        closure[node].add(succ)
                        closure[node] |= closure[succ]
                        continue
                    state[succ] = ACTIVE
                    closure[succ] = set()
                    stack.append((succ, iter(self._direct[succ])))
                    break
                else:
                    state[node] = DONE
                    stack.pop()
                    if stack:
                        parent = stack[-1][0]
                        closure[parent].add(node)
                        closure[parent] |= closure[node]
        self._closure = closure
        above: dict[str, set[str]] = {name: set() for name in self._names}
        for high, lowers in closure.items():
            for low in lowers:
                above[low].add(high)
        self._above = above

    def _find_cycle(self, start: str) -> list[str]:
        path = [start]
        seen = {start}
        node = start
        while True:
            for successor in sorted(self._direct[node]):
                if successor == start:
                    return path + [start]
                if successor not in seen:
                    seen.add(successor)
                    path.append(successor)
                    node = successor
                    break
            else:
                # Dead end: backtrack (cannot happen when a cycle through
                # start exists, but guard against pathological graphs).
                path.pop()
                if not path:
                    return [start, start]
                node = path[-1]

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def has_precedence(self, higher: str, lower: str) -> bool:
        """True iff ``higher > lower ∈ P`` (transitively)."""
        return lower.lower() in self._closure.get(higher.lower(), frozenset())

    def are_ordered(self, first: str, second: str) -> bool:
        return self.has_precedence(first, second) or self.has_precedence(
            second, first
        )

    def are_unordered(self, first: str, second: str) -> bool:
        first = first.lower()
        second = second.lower()
        if first == second:
            return False
        return not self.are_ordered(first, second)

    def lower_than(self, name: str) -> frozenset[str]:
        """All rules that *name* has precedence over."""
        return frozenset(self._closure.get(name.lower(), ()))

    def pairs(self) -> frozenset[tuple[str, str]]:
        """``P`` as a set of (higher, lower) pairs, closed transitively."""
        return frozenset(
            (higher, lower)
            for higher, lowers in self._closure.items()
            for lower in lowers
        )

    def direct_pairs(self) -> frozenset[tuple[str, str]]:
        """Only the directly specified (higher, lower) pairs."""
        return frozenset(
            (higher, lower)
            for higher, lowers in self._direct.items()
            for lower in lowers
        )

    def unordered_pairs(self) -> list[tuple[str, str]]:
        """All unordered pairs of distinct rules, lexicographically."""
        names = sorted(self._name_set)
        return [
            (first, second)
            for i, first in enumerate(names)
            for second in names[i + 1 :]
            if self.are_unordered(first, second)
        ]

    def is_empty(self) -> bool:
        return all(not lowers for lowers in self._closure.values())

    def __contains__(self, pair: tuple[str, str]) -> bool:
        higher, lower = pair
        return self.has_precedence(higher, lower)

    def __repr__(self) -> str:
        pairs = sorted(self.direct_pairs())
        rendered = ", ".join(f"{h} > {l}" for h, l in pairs)
        return f"PriorityRelation({rendered or 'empty'})"
