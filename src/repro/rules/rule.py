"""The Rule object: a validated, schema-bound rule definition.

A :class:`Rule` wraps a parsed :class:`~repro.lang.ast.RuleDefinition`
and binds it to a :class:`~repro.schema.catalog.Schema`, validating that

* the rule's table and every referenced table/column exist;
* transition tables are only used when the corresponding triggering
  operation is declared (Section 2: "A rule may refer only to transition
  tables corresponding to its triggering operations");
* ``updated(...)`` column lists name real columns of the rule's table.

The triggered-by event set (``Triggered-By`` of Section 3) is computed
here because it is purely syntactic; the other derived definitions
(``Performs``, ``Reads``, ...) live in :mod:`repro.analysis.derived`.
"""

from __future__ import annotations

from repro.errors import RuleError
from repro.lang import ast
from repro.lang.parser import parse_rule
from repro.lang.pretty import format_rule
from repro.rules.events import TriggerEvent
from repro.schema.catalog import Schema


class Rule:
    """A schema-validated production rule."""

    def __init__(self, definition: ast.RuleDefinition, schema: Schema) -> None:
        self.definition = definition
        self.schema = schema
        self.name = definition.name.lower()
        self.table = definition.table.lower()
        self._validate()
        self.triggered_by = self._compute_triggered_by()

    @classmethod
    def parse(cls, source: str, schema: Schema) -> "Rule":
        """Parse *source* as a ``create rule`` statement and bind it."""
        return cls(parse_rule(source), schema)

    # ------------------------------------------------------------------
    # Derived syntactic properties
    # ------------------------------------------------------------------

    @property
    def condition(self) -> ast.Expression | None:
        return self.definition.condition

    @property
    def actions(self) -> tuple[ast.Statement, ...]:
        return self.definition.actions

    @property
    def precedes(self) -> tuple[str, ...]:
        return tuple(name.lower() for name in self.definition.precedes)

    @property
    def follows(self) -> tuple[str, ...]:
        return tuple(name.lower() for name in self.definition.follows)

    @property
    def is_observable(self) -> bool:
        """Starburst: a rule's action may be observable iff it includes a
        select or rollback statement (Section 3, ``Observable``)."""
        return any(
            isinstance(action, (ast.Select, ast.Rollback))
            for action in self.actions
        )

    def trigger_kinds(self) -> frozenset[ast.TriggerKind]:
        return frozenset(spec.kind for spec in self.definition.triggers)

    def _compute_triggered_by(self) -> frozenset[TriggerEvent]:
        """``Triggered-By(r)`` — the operations in ``O`` that trigger r."""
        events: set[TriggerEvent] = set()
        table_def = self.schema.table(self.table)
        for spec in self.definition.triggers:
            if spec.kind is ast.TriggerKind.INSERTED:
                events.add(TriggerEvent.insert(self.table))
            elif spec.kind is ast.TriggerKind.DELETED:
                events.add(TriggerEvent.delete(self.table))
            else:
                columns = spec.columns or table_def.column_names
                for column in columns:
                    events.add(TriggerEvent.update(self.table, column))
        return frozenset(events)

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------

    def _validate(self) -> None:
        if not self.schema.has_table(self.table):
            raise RuleError(
                f"rule {self.name!r} is on unknown table {self.table!r}"
            )
        table_def = self.schema.table(self.table)
        for spec in self.definition.triggers:
            for column in spec.columns:
                if not table_def.has_column(column):
                    raise RuleError(
                        f"rule {self.name!r}: updated({column}) names no "
                        f"column of table {self.table!r}"
                    )

        allowed_transition_tables = self._allowed_transition_tables()
        for select in self._all_selects():
            self._validate_tables(select.tables, allowed_transition_tables)
        for action in self.actions:
            self._validate_action_target(action)

    def _allowed_transition_tables(self) -> frozenset[str]:
        allowed: set[str] = set()
        for spec in self.definition.triggers:
            if spec.kind is ast.TriggerKind.INSERTED:
                allowed.add("inserted")
            elif spec.kind is ast.TriggerKind.DELETED:
                allowed.add("deleted")
            else:
                allowed.add("new_updated")
                allowed.add("old_updated")
        return frozenset(allowed)

    def _all_selects(self):
        if self.condition is not None:
            yield from ast.subqueries_of(self.condition)
        for action in self.actions:
            yield from ast.selects_of_statement(action)

    def _validate_tables(
        self,
        tables: tuple[ast.TableRef, ...],
        allowed_transition_tables: frozenset[str],
    ) -> None:
        for ref in tables:
            name = ref.name.lower()
            if name in ast.TRANSITION_TABLE_NAMES:
                if name not in allowed_transition_tables:
                    raise RuleError(
                        f"rule {self.name!r} references transition table "
                        f"{name!r} but is not triggered by the "
                        "corresponding operation"
                    )
            elif not self.schema.has_table(name):
                raise RuleError(
                    f"rule {self.name!r} references unknown table {name!r}"
                )

    def _validate_action_target(self, action: ast.Statement) -> None:
        if isinstance(action, ast.Insert):
            target = action.table
        elif isinstance(action, ast.Delete):
            target = action.table
        elif isinstance(action, ast.Update):
            target = action.table
        elif isinstance(action, (ast.Select, ast.Rollback)):
            return
        else:
            raise RuleError(
                f"rule {self.name!r} has an unsupported action type "
                f"{type(action).__name__}"
            )
        if target.lower() in ast.TRANSITION_TABLE_NAMES:
            raise RuleError(
                f"rule {self.name!r} cannot modify transition table "
                f"{target!r}"
            )
        if not self.schema.has_table(target):
            raise RuleError(
                f"rule {self.name!r} modifies unknown table {target!r}"
            )
        if isinstance(action, ast.Update):
            table_def = self.schema.table(action.table)
            for assignment in action.assignments:
                if not table_def.has_column(assignment.column):
                    raise RuleError(
                        f"rule {self.name!r} updates unknown column "
                        f"{action.table}.{assignment.column}"
                    )

    # ------------------------------------------------------------------

    def source(self) -> str:
        """The rule rendered back to rule-language source."""
        return format_rule(self.definition)

    def __repr__(self) -> str:
        return f"Rule({self.name} on {self.table})"

    def __hash__(self) -> int:
        return hash(self.name)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Rule):
            return NotImplemented
        return self.name == other.name and self.definition == other.definition
