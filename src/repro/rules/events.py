"""Database modification operations — the set ``O`` of Section 3.

``O = {(I, t) | t ∈ T} ∪ {(D, t) | t ∈ T} ∪ {(U, t.c) | t.c ∈ C}``

A :class:`TriggerEvent` is one element of ``O``. Both the triggering
predicates of rules (``Triggered-By``) and the write sets of rule
actions (``Performs``) are expressed as sets of these events.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.schema.catalog import Schema


@dataclass(frozen=True, order=True)
class TriggerEvent:
    """One element of the operation set ``O``.

    ``kind`` is ``"I"``, ``"D"`` or ``"U"``; ``column`` is set only for
    updates.
    """

    kind: str
    table: str
    column: str | None = None

    def __post_init__(self) -> None:
        if self.kind not in ("I", "D", "U"):
            raise ValueError(f"bad event kind {self.kind!r}")
        if (self.kind == "U") != (self.column is not None):
            raise ValueError("update events carry a column; others do not")

    @classmethod
    def insert(cls, table: str) -> "TriggerEvent":
        return cls("I", table.lower())

    @classmethod
    def delete(cls, table: str) -> "TriggerEvent":
        return cls("D", table.lower())

    @classmethod
    def update(cls, table: str, column: str) -> "TriggerEvent":
        return cls("U", table.lower(), column.lower())

    def __str__(self) -> str:
        if self.kind == "U":
            return f"(U, {self.table}.{self.column})"
        return f"({self.kind}, {self.table})"


def all_events(schema: Schema) -> frozenset[TriggerEvent]:
    """The full operation set ``O`` for *schema*."""
    events: set[TriggerEvent] = set()
    for table in schema:
        events.add(TriggerEvent.insert(table.name))
        events.add(TriggerEvent.delete(table.name))
        for column in table.column_names:
            events.add(TriggerEvent.update(table.name, column))
    return frozenset(events)
