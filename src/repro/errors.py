"""Exception hierarchy for the production-rule reproduction library.

Every error raised by this package derives from :class:`ReproError`, so
callers can catch a single base class. Sub-hierarchies mirror the major
subsystems: language processing, schema/catalog management, query and DML
execution, rule definition, rule processing, and static analysis.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class LanguageError(ReproError):
    """Base class for tokenizer and parser errors."""


class TokenizeError(LanguageError):
    """Raised when the tokenizer encounters an invalid character sequence."""

    def __init__(self, message: str, line: int, column: int) -> None:
        super().__init__(f"{message} (line {line}, column {column})")
        self.line = line
        self.column = column


class ParseError(LanguageError):
    """Raised when the parser cannot derive a valid statement or rule."""

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        location = f" (line {line}, column {column})" if line else ""
        super().__init__(f"{message}{location}")
        self.line = line
        self.column = column


class SchemaError(ReproError):
    """Raised for catalog violations: unknown/duplicate tables or columns."""


class TypeCheckError(SchemaError):
    """Raised when an expression or DML statement fails static typing."""


class ExecutionError(ReproError):
    """Base class for runtime evaluation failures."""


class EvaluationError(ExecutionError):
    """Raised when expression evaluation fails (e.g. bad operand types)."""


class QueryError(ExecutionError):
    """Raised when a SELECT statement cannot be executed."""


class RollbackSignal(ExecutionError):
    """Raised by a ``rollback`` action to abort the surrounding transaction.

    This is control flow, not a programming error: the rule processor
    catches it, restores the pre-transaction database state, and records
    the rollback as an observable action.
    """

    def __init__(self, message: str = "") -> None:
        super().__init__(message or "rollback")
        self.message = message


class ConflictError(ReproError):
    """A session failed first-committer-wins validation and was aborted.

    Retriable by construction: the session's fork is discarded and
    nothing it did is visible, so the caller may simply open a fresh
    session (against a newer snapshot) and re-run the same statements.
    :class:`~repro.runtime.server.RuleServer` raises it from
    ``Session.commit``; ``items`` names the conflicting footprint
    entries (``"table"`` or ``"table.column"``).
    """

    def __init__(self, message: str, items: tuple[str, ...] = ()) -> None:
        super().__init__(message)
        self.items = items


class RuleError(ReproError):
    """Raised for invalid rule definitions or rule-set construction."""


class PriorityCycleError(RuleError):
    """Raised when precedes/follows clauses induce a cyclic ordering."""

    def __init__(self, cycle: list[str]) -> None:
        super().__init__(
            "user-defined priorities are cyclic: " + " > ".join(cycle)
        )
        self.cycle = cycle


class RuleProcessingError(ReproError):
    """Raised when the rule processor cannot make progress."""


class RuleProcessingLimitExceeded(RuleProcessingError):
    """Raised when rule processing exceeds its configured step budget.

    Conservatively treated as possible nontermination by callers.
    """

    def __init__(self, limit: int) -> None:
        super().__init__(f"rule processing exceeded {limit} steps")
        self.limit = limit


class ExplorationLimitExceeded(RuleProcessingError):
    """Raised when execution-graph exploration exceeds its state budget."""

    def __init__(self, limit: int) -> None:
        super().__init__(f"execution graph exploration exceeded {limit} states")
        self.limit = limit


class AnalysisError(ReproError):
    """Raised for invalid static-analysis requests (e.g. unknown rule)."""
