"""A streaming ingestion workload for the concurrent server (ROADMAP item 5).

Many independent event *streams*, each with an append-only event table
and a tiny per-region state table maintained by rules, plus one shared
``totals`` counter that periodically forces genuine cross-stream write
conflicts:

* ``{stream}_events(id, region, value)`` — the append-only firehose;
* ``{stream}_state(region, alerts, escalations)`` — one row per region;
* ``totals(id, ingested)`` — a single hot row every ``hot_every``-th
  batch bumps (the contention dial: ``hot_every=0`` turns it off).

Two rules per (stream, region) pair::

    create rule {stream}_alert_r{r} on {stream}_events
    when inserted
    if exists (select * from inserted where region = {r} and value > 95)
    then update {stream}_state set alerts = alerts + 1 where region = {r}

    create rule {stream}_escalate_r{r} on {stream}_state
    when updated(alerts)
    if exists (select * from {stream}_state
               where region = {r} and alerts >= 5)
    then update {stream}_state set alerts = alerts - 5,
                escalations = escalations + 1
         where region = {r}

The alert rule reads only its own transition (the ``inserted``
transition table), so concurrent batches into *different* streams have
disjoint footprints and commit without conflict; the escalate rule
cascades off the alert rule and terminates by monotone decrease of
``alerts``. Everything is seeded, so a run is reproducible
batch-for-batch.

:func:`drive_streaming` is the load driver the server benchmark gate
runs: it deals the seeded batches to worker threads (each stream's
batches stay on one worker, so conflicts come only from the shared
``totals`` row and from retries), pushes every batch through
:meth:`~repro.runtime.server.RuleServer.run_transaction`, and reports
throughput and per-commit latency percentiles.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass, field

from repro.engine.database import Database
from repro.lang.parser import parse_statement
from repro.rules.ruleset import RuleSet
from repro.schema.catalog import Schema, schema_from_spec

#: the default stream set (one independent rule family each)
STREAMS = (
    "clicks",
    "orders",
    "payments",
    "sensors",
    "logins",
    "errors",
    "metrics",
    "traces",
)

_ALERT_TEMPLATE = """
create rule {stream}_alert_r{region} on {stream}_events
when inserted
if exists (select * from inserted where region = {region} and value > 95)
then update {stream}_state set alerts = alerts + 1 where region = {region}
"""

_ESCALATE_TEMPLATE = """
create rule {stream}_escalate_r{region} on {stream}_state
when updated(alerts)
if exists (select * from {stream}_state
           where region = {region} and alerts >= 5)
then update {stream}_state set alerts = alerts - 5,
            escalations = escalations + 1
     where region = {region}
"""


@dataclass(frozen=True)
class StreamingBatch:
    """One ingestion transaction: statements for one server session.

    Statements are pre-parsed ASTs — a 100-row ``INSERT`` costs more to
    parse than to execute, and the driver measures ingestion, not
    parsing (a real stream consumer would bind batches into a prepared
    statement once, not re-parse per batch)."""

    index: int
    stream: str
    statements: tuple
    rows: int


@dataclass
class StreamingWorkload:
    """Schema, rules, the (empty-events) instance, and seeded batches."""

    schema: Schema
    ruleset: RuleSet
    database: Database
    streams: tuple[str, ...]
    regions: int
    batches: tuple[StreamingBatch, ...]

    @property
    def total_rows(self) -> int:
        return sum(batch.rows for batch in self.batches)


def streaming_schema(streams: tuple[str, ...] = STREAMS) -> Schema:
    spec: dict = {}
    for stream in streams:
        spec[f"{stream}_events"] = ["id", "region", "value"]
        spec[f"{stream}_state"] = ["region", "alerts", "escalations"]
    spec["totals"] = ["id", "ingested"]
    return schema_from_spec(spec)


def streaming_workload(
    rows: int = 100_000,
    batch_rows: int = 100,
    regions: int = 4,
    streams: tuple[str, ...] = STREAMS,
    seed: int = 0,
    hot_every: int = 13,
) -> StreamingWorkload:
    """Build the workload: *rows* events in ``rows // batch_rows``
    seeded batches dealt round-robin over *streams*.

    Each batch is one multi-row ``INSERT`` into its stream's event
    table; every ``hot_every``-th batch additionally bumps the shared
    ``totals`` row inside the same transaction (0 disables the hot row
    and makes the workload conflict-free under per-stream dealing; keep
    it coprime with ``len(streams)`` so the hot batches rotate over
    streams — and therefore over driver workers — instead of pinning to
    one).
    Event values are uniform on ``1..100``, so ~5% clear the alert
    rule's ``> 95`` threshold in every region.
    """
    rng = random.Random(seed)
    schema = streaming_schema(streams)
    rules = "\n".join(
        template.format(stream=stream, region=region)
        for stream in streams
        for region in range(regions)
        for template in (_ALERT_TEMPLATE, _ESCALATE_TEMPLATE)
    )
    ruleset = RuleSet.parse(rules, schema)

    database = Database(schema)
    for stream in streams:
        database.load(
            f"{stream}_state", [(region, 0, 0) for region in range(regions)]
        )
    database.load("totals", [(0, 0)])

    batches: list[StreamingBatch] = []
    next_id = {stream: 0 for stream in streams}
    for index in range(rows // batch_rows):
        stream = streams[index % len(streams)]
        values = []
        for _ in range(batch_rows):
            event_id = next_id[stream]
            next_id[stream] = event_id + 1
            values.append(
                f"({event_id}, {rng.randrange(regions)}, "
                f"{rng.randint(1, 100)})"
            )
        statements = [
            f"insert into {stream}_events values {', '.join(values)}"
        ]
        if hot_every and index % hot_every == 0:
            statements.append(
                f"update totals set ingested = ingested + {batch_rows} "
                f"where id = 0"
            )
        batches.append(
            StreamingBatch(
                index=index,
                stream=stream,
                statements=tuple(
                    parse_statement(source) for source in statements
                ),
                rows=batch_rows,
            )
        )
    return StreamingWorkload(
        schema=schema,
        ruleset=ruleset,
        database=database,
        streams=tuple(streams),
        regions=regions,
        batches=tuple(batches),
    )


@dataclass
class DriveReport:
    """What :func:`drive_streaming` measured."""

    workers: int
    committed: int
    rows_ingested: int
    retries: int
    elapsed_seconds: float
    #: per-transaction wall time (session open through durable commit),
    #: in seconds, in completion order
    latencies: list[float] = field(default_factory=list)

    @property
    def commits_per_second(self) -> float:
        return self.committed / self.elapsed_seconds if self.elapsed_seconds else 0.0

    @property
    def abort_rate(self) -> float:
        """Retried commit attempts as a fraction of all commit attempts."""
        attempts = self.committed + self.retries
        return self.retries / attempts if attempts else 0.0

    def latency(self, quantile: float) -> float:
        """The *quantile* (0..1) per-commit latency in seconds."""
        if not self.latencies:
            return 0.0
        ordered = sorted(self.latencies)
        index = min(len(ordered) - 1, int(quantile * len(ordered)))
        return ordered[index]

    def to_dict(self) -> dict:
        return {
            "workers": self.workers,
            "committed": self.committed,
            "rows_ingested": self.rows_ingested,
            "retries": self.retries,
            "abort_rate": round(self.abort_rate, 6),
            "elapsed_seconds": round(self.elapsed_seconds, 6),
            "commits_per_second": round(self.commits_per_second, 3),
            "p50_commit_seconds": round(self.latency(0.50), 6),
            "p99_commit_seconds": round(self.latency(0.99), 6),
        }


def drive_streaming(
    server,
    batches,
    *,
    workers: int = 8,
    max_retries: int | None = None,
) -> DriveReport:
    """Push *batches* through *server* from *workers* threads.

    Batches are dealt by stream (every stream's batches run on one
    worker, in order), so the per-stream event ids stay monotone and
    conflicts arise only from genuinely shared state. Each batch runs as
    one :meth:`~repro.runtime.server.RuleServer.run_transaction`; a
    :class:`~repro.errors.ConflictError` that exhausts its retry budget
    propagates (the workload is designed not to — the budget exists for
    fairness under extreme contention).
    """
    batches = list(batches)
    streams = sorted({batch.stream for batch in batches})
    worker_of = {
        stream: index % workers for index, stream in enumerate(streams)
    }
    assignments: list[list[StreamingBatch]] = [[] for _ in range(workers)]
    for batch in batches:
        assignments[worker_of[batch.stream]].append(batch)

    lock = threading.Lock()
    report = DriveReport(
        workers=workers,
        committed=0,
        rows_ingested=0,
        retries=0,
        elapsed_seconds=0.0,
    )
    failures: list[BaseException] = []

    def run(assigned: list[StreamingBatch]) -> None:
        try:
            for batch in assigned:
                began = time.perf_counter()
                outcome = server.run_transaction(
                    batch.statements, max_retries=max_retries
                )
                latency = time.perf_counter() - began
                with lock:
                    if outcome.committed:
                        report.committed += 1
                        report.rows_ingested += batch.rows
                    report.retries += outcome.retries
                    report.latencies.append(latency)
        except BaseException as error:  # surfaced to the caller below
            with lock:
                failures.append(error)

    threads = [
        threading.Thread(
            target=run, args=(assigned,), name=f"repro-stream-{index}"
        )
        for index, assigned in enumerate(assignments)
        if assigned
    ]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    report.elapsed_seconds = time.perf_counter() - started
    if failures:
        raise failures[0]
    return report
