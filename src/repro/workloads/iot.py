"""An IoT telemetry workload: a 10⁶-row stratified alert cascade.

A fleet of devices streams readings into one large fact table; rules
maintain small per-device and per-region state in a strictly layered
cascade (ROADMAP item 5's "IoT at 10⁶ rows"):

* ``readings(id, device, region, value)`` — the 10⁶-row (default)
  telemetry firehose, partition-keyed on ``region``;
* ``device_status(device, region, alerts, attention)`` — one row per
  device;
* ``region_health(region, degraded, severity)`` — one row per region;
* ``ops_queue(region, directive)`` — one row per region, the cascade's
  terminal layer.

Three rules per region, one per layer::

    create rule iot_alert_r{r} on readings
    when inserted
    if exists (select * from inserted where region = {r} and value > 950)
    then update device_status set alerts = alerts + 1 where region = {r}

    create rule iot_degrade_r{r} on device_status
    when updated(alerts)
    if exists (select * from device_status
               where region = {r} and alerts >= 2)
    then update region_health set degraded = 1, severity = 2
         where region = {r} and degraded < 1

    create rule iot_dispatch_r{r} on region_health
    when updated(degraded)
    if exists (select * from region_health
               where region = {r} and degraded = 1)
    then update ops_queue set directive = 7
         where region = {r} and directive < 7

The triggering graph is acyclic by construction — layer 1 is triggered
only by inserts into ``readings`` and writes only ``alerts``; layer 2
is triggered only by ``updated(alerts)`` and writes only
``degraded``/``severity``; layer 3 is triggered only by
``updated(degraded)`` and writes only ``directive`` — so the program is
**stratified** (the refined graph's condensation is the three layers).
It is also **confluent by construction**: distinct regions write
disjoint row slices, the only non-absolute write (``alerts + 1``) is
fired exactly once per region per batch (nothing a rule does re-inserts
into ``readings``), and layers 2/3 perform idempotent absolute updates
guarded by their own post-condition (``degraded < 1``, ``directive <
7``), so every interleaving and firing multiplicity lands on the same
final database — the declarative cross-check treats the workload as
certified-confluent (``certified_confluent=True``), the Section 6.1
user-certification escape hatch.

Alert conditions read only the ``inserted`` transition table and every
base-table scan carries a ``region = {r}`` equality conjunct, so
planned/rete sessions touch O(devices-per-region) rows per firing while
the 10⁶ base rows exercise load, canonicalization, checkpointing and
recovery at scale.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.engine.database import Database
from repro.rules.ruleset import RuleSet
from repro.schema.catalog import Schema, schema_from_spec

_ALERT_TEMPLATE = """
create rule iot_alert_r{region} on readings
when inserted
if exists (select * from inserted where region = {region} and value > 950)
then update device_status set alerts = alerts + 1 where region = {region}
"""

_DEGRADE_TEMPLATE = """
create rule iot_degrade_r{region} on device_status
when updated(alerts)
if exists (select * from device_status
           where region = {region} and alerts >= 2)
then update region_health set degraded = 1, severity = 2
     where region = {region} and degraded < 1
"""

_DISPATCH_TEMPLATE = """
create rule iot_dispatch_r{region} on region_health
when updated(degraded)
if exists (select * from region_health
           where region = {region} and degraded = 1)
then update ops_queue set directive = 7
     where region = {region} and directive < 7
"""


@dataclass
class IotWorkload:
    """Schema, rules, the loaded instance, and its seeded batch."""

    schema: Schema
    ruleset: RuleSet
    database: Database
    regions: int
    devices: int
    rows: int
    #: the seeded telemetry batch driving the cascade (source strings)
    batch: tuple[str, ...]
    #: the workload's construction guarantees a unique final database
    #: (disjoint region slices + idempotent absolute updates); see the
    #: module docstring for the argument
    certified_confluent: bool = True

    def ingest_transition(self) -> list[str]:
        return list(self.batch)


def iot_schema() -> Schema:
    return schema_from_spec(
        {
            "readings": ["id", "device", "region", "value"],
            "device_status": ["device", "region", "alerts", "attention"],
            "region_health": ["region", "degraded", "severity"],
            "ops_queue": ["region", "directive"],
        }
    )


def iot_workload(
    rows: int = 1_000_000,
    regions: int = 16,
    devices_per_region: int = 32,
    batch_rows: int = 1_024,
    seed: int = 0,
) -> IotWorkload:
    """Build the workload: *rows* historical readings plus one seeded
    ingestion batch of *batch_rows* new readings.

    Historical values are uniform on ``1..950`` (below the alert
    threshold — history never re-triggers); batch values are uniform on
    ``1..1000``, so ~5% of each batch clears ``> 950`` and, with the
    default sizes, every region raises its alert count and cascades to
    the terminal layer.
    """
    rng = random.Random(seed)
    schema = iot_schema()
    devices = regions * devices_per_region
    rules = "\n".join(
        template.format(region=region)
        for region in range(regions)
        for template in (_ALERT_TEMPLATE, _DEGRADE_TEMPLATE, _DISPATCH_TEMPLATE)
    )
    ruleset = RuleSet.parse(rules, schema)

    database = Database(schema)
    database.load(
        "readings",
        [
            (i, i % devices, (i % devices) % regions, rng.randint(1, 950))
            for i in range(rows)
        ],
    )
    database.load(
        "device_status",
        [(d, d % regions, 1, 0) for d in range(devices)],
    )
    database.load("region_health", [(r, 0, 0) for r in range(regions)])
    database.load("ops_queue", [(r, 0) for r in range(regions)])
    database.declare_partition_key("readings", "region")
    database.declare_partition_key("device_status", "region")

    batch_values = []
    for i in range(batch_rows):
        device = rng.randrange(devices)
        batch_values.append(
            f"({rows + i}, {device}, {device % regions}, "
            f"{rng.randint(1, 1000)})"
        )
    batch = (f"insert into readings values {', '.join(batch_values)}",)
    return IotWorkload(
        schema=schema,
        ruleset=ruleset,
        database=database,
        regions=regions,
        devices=devices,
        rows=rows,
        batch=batch,
    )
