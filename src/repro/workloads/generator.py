"""Seeded random generation of schemas, rule sets, databases, transitions.

The generator emits rule-language *source text* and parses it, so every
generated rule also exercises the tokenizer/parser path. All randomness
flows from one seed, making every workload reproducible.

Knobs (see :class:`GeneratorConfig`):

* structure — number of tables/columns/rules, triggers and actions per
  rule;
* interaction — probability that an action targets another rule's
  triggering table (drives triggering-graph density);
* priorities — probability of a precedes edge to an earlier rule
  (acyclic by construction);
* observability — probability a rule carries a select action.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.engine.database import Database
from repro.rules.ruleset import RuleSet
from repro.schema.catalog import Schema


@dataclass
class GeneratorConfig:
    """Parameters for random rule-set generation."""

    n_tables: int = 3
    n_columns: int = 3
    n_rules: int = 6
    max_triggers_per_rule: int = 2
    max_actions_per_rule: int = 2
    #: probability an action writes a different table than the rule's own
    p_cross_table: float = 0.6
    #: probability of adding a priority edge to each earlier rule
    p_priority: float = 0.2
    #: probability a rule gets an observable (select) action
    p_observable: float = 0.0
    #: probability a rule gets an `if` condition
    p_condition: float = 0.5
    #: rows per table in generated databases
    rows_per_table: int = 3
    #: user statements per generated initial transition
    statements_per_transition: int = 2


def _transition_table_for(rng: random.Random, triggers: list[str]) -> str | None:
    """Pick a transition table consistent with the rule's triggers."""
    options: list[str] = []
    for trigger in triggers:
        if trigger == "inserted":
            options.append("inserted")
        elif trigger == "deleted":
            options.append("deleted")
        elif trigger.startswith("updated"):
            options.extend(["new_updated", "old_updated"])
    if options and rng.random() < 0.5:
        return rng.choice(options)
    return None


class RandomRuleSetGenerator:
    """Generates (schema, rule set) pairs from a seed."""

    def __init__(self, config: GeneratorConfig | None = None, seed: int = 0) -> None:
        self.config = config or GeneratorConfig()
        self._seed = seed

    def generate(self, seed: int | None = None) -> RuleSet:
        rng = random.Random(self._seed if seed is None else seed)
        schema = self.generate_schema(rng)
        source = self._generate_rules_source(rng, schema)
        return RuleSet.parse(source, schema)

    # ------------------------------------------------------------------

    def generate_schema(self, rng: random.Random) -> Schema:
        schema = Schema()
        for t in range(self.config.n_tables):
            columns = [f"c{i}" for i in range(self.config.n_columns)]
            schema.add_table(f"t{t}", columns)
        return schema

    def _generate_rules_source(self, rng: random.Random, schema: Schema) -> str:
        tables = list(schema.table_names)
        rules: list[str] = []
        rule_names: list[str] = []

        for index in range(self.config.n_rules):
            name = f"r{index}"
            table = rng.choice(tables)
            triggers = self._generate_triggers(rng, schema, table)
            condition = self._generate_condition(rng, schema, table, triggers)
            actions = self._generate_actions(rng, schema, table, triggers)
            clauses = [f"create rule {name} on {table}"]
            clauses.append(f"when {', '.join(triggers)}")
            if condition:
                clauses.append(f"if {condition}")
            clauses.append("then " + ";\n     ".join(actions))
            precedes = [
                earlier
                for earlier in rule_names
                if rng.random() < self.config.p_priority
            ]
            if precedes:
                clauses.append("precedes " + ", ".join(precedes))
            rules.append("\n".join(clauses))
            rule_names.append(name)

        return "\n\n".join(rules)

    def _generate_triggers(
        self, rng: random.Random, schema: Schema, table: str
    ) -> list[str]:
        count = rng.randint(1, self.config.max_triggers_per_rule)
        options = ["inserted", "deleted", "updated"]
        chosen = rng.sample(options, min(count, len(options)))
        rendered = []
        for kind in chosen:
            if kind == "updated" and rng.random() < 0.5:
                column = rng.choice(schema.table(table).column_names)
                rendered.append(f"updated({column})")
            else:
                rendered.append(kind)
        return rendered

    def _generate_condition(
        self,
        rng: random.Random,
        schema: Schema,
        table: str,
        triggers: list[str],
    ) -> str | None:
        if rng.random() >= self.config.p_condition:
            return None
        column = rng.choice(schema.table(table).column_names)
        threshold = rng.randint(0, 20)
        operator = rng.choice(["<", ">", "<=", ">=", "="])
        transition = _transition_table_for(rng, triggers)
        source = transition if transition else table
        return f"exists (select * from {source} where {column} {operator} {threshold})"

    def _generate_actions(
        self,
        rng: random.Random,
        schema: Schema,
        table: str,
        triggers: list[str],
    ) -> list[str]:
        count = rng.randint(1, self.config.max_actions_per_rule)
        actions = []
        for __ in range(count):
            if rng.random() < self.config.p_cross_table:
                target = rng.choice(list(schema.table_names))
            else:
                target = table
            actions.append(self._generate_action(rng, schema, target))
        if rng.random() < self.config.p_observable:
            target = rng.choice(list(schema.table_names))
            actions.append(f"select * from {target}")
        return actions

    def _generate_action(
        self, rng: random.Random, schema: Schema, target: str
    ) -> str:
        columns = schema.table(target).column_names
        kind = rng.choice(["insert", "delete", "update"])
        if kind == "insert":
            values = ", ".join(str(rng.randint(0, 9)) for __ in columns)
            return f"insert into {target} values ({values})"
        column = rng.choice(columns)
        threshold = rng.randint(0, 20)
        operator = rng.choice(["<", ">", "="])
        if kind == "delete":
            return f"delete from {target} where {column} {operator} {threshold}"
        assign_column = rng.choice(columns)
        delta = rng.randint(1, 5)
        return (
            f"update {target} set {assign_column} = {assign_column} + {delta} "
            f"where {column} {operator} {threshold}"
        )


class LayeredRuleSetGenerator:
    """Random rule sets with an acyclic triggering graph by construction.

    Tables are ordered ``t0 < t1 < ... < tn``; a rule triggered on
    ``ti`` only writes tables strictly later in the order, so triggering
    chains always move forward and ``TG_R`` is a DAG. This models the
    common shape of real applications (derived-data maintenance flows
    downstream) and makes static acceptance rates tunable by the
    conflict knobs alone — the benchmarks use it wherever termination
    noise would drown the confluence signal.

    ``p_conflict`` controls how often a rule writes a table an earlier
    rule wrote; ``p_same_column`` controls whether such a reuse hits the
    same column (a real update-update conflict) or a sibling column
    (harmless under column granularity, flagged under table
    granularity — the E12 ablation's lever); ``p_priority`` orders rules
    as in :class:`RandomRuleSetGenerator`.
    """

    def __init__(
        self,
        config: GeneratorConfig | None = None,
        seed: int = 0,
        p_conflict: float = 0.3,
        p_same_column: float = 1.0,
    ) -> None:
        self.config = config or GeneratorConfig()
        self._seed = seed
        self.p_conflict = p_conflict
        self.p_same_column = p_same_column

    def generate(self, seed: int | None = None) -> RuleSet:
        rng = random.Random(self._seed if seed is None else seed)
        schema = Schema()
        for t in range(self.config.n_tables):
            schema.add_table(
                f"t{t}", [f"c{i}" for i in range(self.config.n_columns)]
            )
        tables = list(schema.table_names)

        rules: list[str] = []
        rule_names: list[str] = []
        #: (table, column) targets already written by an earlier rule —
        #: reused with probability p_conflict to manufacture conflicts.
        written: list[tuple[str, str]] = []

        for index in range(self.config.n_rules):
            name = f"r{index}"
            # A rule on the last table would have nowhere to write.
            table_index = rng.randrange(0, len(tables) - 1)
            table = tables[table_index]
            trigger = rng.choice(["inserted", "deleted", "updated"])

            if written and rng.random() < self.p_conflict:
                target, column = rng.choice(written)
                # Only reuse targets downstream of this rule's table.
                if int(target[1:]) <= table_index:
                    target = rng.choice(tables[table_index + 1 :])
                    column = rng.choice(schema.table(target).column_names)
                elif rng.random() >= self.p_same_column:
                    # Same table, different column when one exists.
                    siblings = [
                        name
                        for name in schema.table(target).column_names
                        if name != column
                    ]
                    if siblings:
                        column = rng.choice(siblings)
            else:
                target = rng.choice(tables[table_index + 1 :])
                column = rng.choice(schema.table(target).column_names)
            written.append((target, column))

            kind = rng.choice(["insert", "update"])
            if kind == "insert":
                values = ", ".join(
                    str(rng.randint(0, 9))
                    for __ in schema.table(target).column_names
                )
                action = f"insert into {target} values ({values})"
            else:
                action = (
                    f"update {target} set {column} = {column} + "
                    f"{rng.randint(1, 3)}"
                )

            clauses = [f"create rule {name} on {table}", f"when {trigger}"]
            clauses.append(f"then {action}")
            if rng.random() < self.config.p_observable:
                clauses[-1] += f";\n     select * from {target}"
            precedes = [
                earlier
                for earlier in rule_names
                if rng.random() < self.config.p_priority
            ]
            if precedes:
                clauses.append("precedes " + ", ".join(precedes))
            rules.append("\n".join(clauses))
            rule_names.append(name)

        return RuleSet.parse("\n\n".join(rules), schema)


class StratifiedProgramGenerator:
    """Random **stratified, confluent-by-construction** rule programs.

    The declarative cross-check needs a generator whose programs come
    with a guarantee: every execution order reaches the same final
    database, so the declarative outcome must *equal* every
    ``explore()`` final (not merely be contained in the reachable set).
    :class:`LayeredRuleSetGenerator` guarantees termination (acyclic
    triggering graph) but not confluence — its relative updates and
    inserts are sensitive to firing multiplicity. This generator
    restricts the action language until order- and
    multiplicity-insensitivity hold by construction:

    * tables are layered ``t0 < t1 < ...``; a rule triggered on layer
      ``k`` writes only layer ``k + 1`` — the triggering graph is a DAG
      and the program is stratified (one stratum per layer);
    * each rule owns a **private** ``(table, column)`` write target in
      the next layer — no two rules write the same column, so firings
      of distinct rules commute;
    * every action is an **idempotent absolute update** confined to the
      owned column, ``update t set c = K where c < K`` — firing twice
      writes what firing once wrote, so multiplicity differences across
      interleavings are invisible;
    * conditions are absent, range over the rule's own target column
      (whose only writer is the rule itself, so truth flips only when
      the rule fires), or — in layer 0 only — over the rule's
      transition table. A layer-0 transition is exactly the user
      statement set, fully logged before rule processing starts, so
      every interleaving evaluates the same composite; at higher layers
      the composite a rule sees depends on which *other* rules' writes
      happen to precede its consideration, and a refutation advances
      the marker permanently — order-sensitivity this generator must
      exclude.

    Every rule in layer ``k > 0`` is triggered by ``updated(c)`` for
    some column ``c`` owned by a layer ``k - 1`` rule, so cascades
    genuinely flow through all strata. ``p_priority`` adds random
    priority edges exactly as the other generators do — for a confluent
    program they must not change the final state, which is what the
    metamorphic invariance suite asserts.
    """

    def __init__(
        self,
        config: GeneratorConfig | None = None,
        seed: int = 0,
        n_layers: int = 3,
    ) -> None:
        config = config or GeneratorConfig()
        if n_layers < 2:
            raise ValueError("a stratified program needs >= 2 layers")
        # Enough columns that every rule can own one: rules are dealt
        # round-robin over layers, and each rule claims a column of the
        # next layer's table.
        per_layer = -(-config.n_rules // max(1, n_layers - 1))
        self.columns_per_table = max(config.n_columns, per_layer)
        self.config = config
        self.n_layers = n_layers
        self._seed = seed

    def generate(self, seed: int | None = None) -> RuleSet:
        rng = random.Random(self._seed if seed is None else seed)
        schema = Schema()
        for layer in range(self.n_layers):
            schema.add_table(
                f"t{layer}",
                [f"c{i}" for i in range(self.columns_per_table)],
            )

        #: per layer, the columns owned by rules of that layer (targets
        #: in layer + 1) — later layers trigger on them
        owned: dict[int, list[str]] = {layer: [] for layer in range(self.n_layers)}
        free: dict[int, list[str]] = {
            layer: [f"c{i}" for i in range(self.columns_per_table)]
            for layer in range(self.n_layers)
        }
        rules: list[str] = []
        rule_names: list[str] = []

        for index in range(self.config.n_rules):
            name = f"s{index}"
            layer = index % (self.n_layers - 1)
            table = f"t{layer}"
            target = f"t{layer + 1}"
            if not free[layer + 1]:
                continue  # that layer's columns are all owned
            column = free[layer + 1].pop(rng.randrange(len(free[layer + 1])))
            owned[layer].append(column)

            if layer == 0:
                trigger = rng.choice(["inserted", "updated"])
            else:
                # Trigger on a column some previous-layer rule writes so
                # the cascade actually reaches this stratum; fall back
                # to plain `updated` when none exists yet.
                feeding = owned[layer - 1]
                trigger = (
                    f"updated({rng.choice(feeding)})"
                    if feeding
                    else "updated"
                )

            constant = rng.randint(5, 9)
            action = (
                f"update {target} set {column} = {constant} "
                f"where {column} < {constant}"
            )
            condition = None
            roll = rng.random()
            if layer == 0 and roll < self.config.p_condition / 2:
                transition = (
                    "inserted" if trigger == "inserted" else "new_updated"
                )
                condition = (
                    f"exists (select * from {transition} "
                    f"where c0 >= {rng.randint(0, 3)})"
                )
            elif roll < self.config.p_condition:
                condition = (
                    f"exists (select * from {target} "
                    f"where {column} < {constant})"
                )

            clauses = [f"create rule {name} on {table}", f"when {trigger}"]
            if condition:
                clauses.append(f"if {condition}")
            clauses.append(f"then {action}")
            precedes = [
                earlier
                for earlier in rule_names
                if rng.random() < self.config.p_priority
            ]
            if precedes:
                clauses.append("precedes " + ", ".join(precedes))
            rules.append("\n".join(clauses))
            rule_names.append(name)

        return RuleSet.parse("\n\n".join(rules), schema)


class RandomInstanceGenerator:
    """Generates (database, user statements) instances for a schema."""

    def __init__(self, config: GeneratorConfig | None = None) -> None:
        self.config = config or GeneratorConfig()

    def generate_database(self, schema: Schema, seed: int = 0) -> Database:
        rng = random.Random(seed)
        database = Database(schema)
        for table in schema:
            rows = [
                tuple(rng.randint(0, 9) for __ in table.column_names)
                for __ in range(self.config.rows_per_table)
            ]
            database.load(table.name, rows)
        return database

    def generate_transition(self, schema: Schema, seed: int = 0) -> list[str]:
        """Random user statements forming an initial transition."""
        rng = random.Random(seed)
        statements = []
        tables = list(schema.table_names)
        for __ in range(self.config.statements_per_transition):
            table = rng.choice(tables)
            columns = schema.table(table).column_names
            kind = rng.choice(["insert", "delete", "update"])
            if kind == "insert":
                values = ", ".join(str(rng.randint(0, 9)) for __ in columns)
                statements.append(f"insert into {table} values ({values})")
            elif kind == "delete":
                column = rng.choice(columns)
                statements.append(
                    f"delete from {table} where {column} = {rng.randint(0, 9)}"
                )
            else:
                column = rng.choice(columns)
                statements.append(
                    f"update {table} set {column} = {column} + "
                    f"{rng.randint(1, 3)} where {column} < {rng.randint(3, 9)}"
                )
        return statements

    def generate_instances(
        self, schema: Schema, count: int, seed: int = 0
    ) -> list[tuple[Database, list[str]]]:
        return [
            (
                self.generate_database(schema, seed=seed * 1_000 + i),
                self.generate_transition(schema, seed=seed * 1_000 + i + 500),
            )
            for i in range(count)
        ]
