"""Seeded query workloads for the query-engine benchmark gate.

Two shapes, mirroring the two planner wins:

* :func:`join_heavy_workload` — multi-table conjunctive equi-joins,
  where the naive executor pays the full cross product and the planner
  hash-probes (``bench_query_engine``'s ≥5× gate runs on this);
* :func:`selective_filter_workload` — single-table equality filters over
  a wide table, where the planner answers from a persistent per-table
  hash index instead of scanning.

Both are deterministic given their seed so benchmark runs (and the
naive/planned byte-identical-results assertion) are reproducible.
"""

from __future__ import annotations

import random

from repro.engine.database import Database
from repro.lang.parser import parse_statement
from repro.schema.catalog import schema_from_spec


def join_heavy_workload(
    seed: int = 0,
    orders: int = 300,
    customers: int = 60,
    items: int = 20,
):
    """A 3-table order/customer/item instance plus equi-join queries.

    Returns ``(database, queries)``; the queries are parsed SELECTs
    combining two- and three-way equality joins with selective
    single-table filters, so the naive executor's cost is the full cross
    product (``orders * customers * items`` contexts) while the planner
    probes hash buckets.
    """
    rng = random.Random(seed)
    schema = schema_from_spec(
        {
            "customers": ["id", "region", "tier"],
            "items": ["id", "price", "kind"],
            "orders": ["id", "customer_id", "item_id", "qty"],
        }
    )
    database = Database(schema)
    database.load(
        "customers",
        [(i, rng.randrange(8), rng.randrange(3)) for i in range(customers)],
    )
    database.load(
        "items",
        [(i, rng.randrange(5, 500), rng.randrange(4)) for i in range(items)],
    )
    database.load(
        "orders",
        [
            (
                i,
                rng.randrange(customers),
                rng.randrange(items),
                rng.randrange(1, 9),
            )
            for i in range(orders)
        ],
    )
    queries = [
        parse_statement(text)
        for text in (
            "select o.id, c.region, i.price "
            "from orders o, customers c, items i "
            "where o.customer_id = c.id and o.item_id = i.id and c.tier = 1",
            "select o.id, i.kind from orders o, items i "
            "where o.item_id = i.id and i.kind = 2 and o.qty > 4",
            "select count(*) from orders o, customers c "
            "where o.customer_id = c.id and c.region = 3",
            "select o.qty, c.tier from orders o, customers c "
            "where c.id = o.customer_id and c.tier = 0 and o.qty = 3",
        )
    ]
    return database, queries


def selective_filter_workload(seed: int = 0, rows: int = 5000):
    """A wide single-table instance plus selective equality queries.

    Returns ``(database, queries)``; every query filters ``events`` on
    column equality with a constant, so the planner serves it from one
    persistent hash index build while the naive executor rescans all
    *rows* tuples per query.
    """
    rng = random.Random(seed)
    schema = schema_from_spec(
        {"events": ["id", "kind", "source", "severity", "value"]}
    )
    database = Database(schema)
    database.load(
        "events",
        [
            (
                i,
                rng.randrange(50),
                rng.randrange(200),
                rng.randrange(5),
                rng.randrange(1000),
            )
            for i in range(rows)
        ],
    )
    queries = [
        parse_statement(text)
        for text in (
            [
                f"select id, value from events where kind = {kind}"
                for kind in range(0, 50, 7)
            ]
            + [
                f"select count(*), sum(value) from events "
                f"where source = {source} and severity = 2"
                for source in range(0, 200, 23)
            ]
        )
    ]
    return database, queries
