"""A hash-partitionable multi-domain workload (ROADMAP items 3 and 5).

Four independent business domains — inventory, payments, shipping,
fraud — each with a large fact table distributed over *regions* and a
tiny per-region control table driving a drain loop:

* ``{domain}(id, region, level)`` — the 10⁵-row (default) fact table,
  hash-partitioned on ``region``;
* ``{domain}_ctl(region, pending)`` — one row per region; ``pending``
  is the number of remaining damping passes for that region.

One rule per (domain, region) pair::

    create rule {domain}_r{r} on {domain}_ctl
    when inserted, updated(pending)
    if exists (select * from {domain}_ctl where region = {r} and pending > 0)
    then update {domain} set level = level - 1
         where region = {r} and level > 100;
         update {domain}_ctl set pending = pending - 1
         where region = {r} and pending > 0

Every action's hot scan carries a ``region = {r}`` equality conjunct on
the declared partition key, so a partition-aware executor prunes the
10⁵-row scans to one shard; and the four domains share no tables and no
priorities, so they fall into four static partitions the parallel
scheduler batches across. Rules *within* a domain overlap on write
tables and therefore serialize — the workload exercises both admission
paths. Termination is by monotonic decrease of ``sum(pending)``; the
drain depths and the hot-row population are seeded, so the workload is
reproducible (the equivalence harness derives seeds via
``tests/seeding.py``).
"""

from __future__ import annotations

import random

from dataclasses import dataclass

from repro.engine.database import Database
from repro.rules.ruleset import RuleSet
from repro.schema.catalog import Schema, schema_from_spec

#: the default domain set (one static rule partition each)
DOMAINS = ("inventory", "payments", "shipping", "fraud")

_RULE_TEMPLATE = """
create rule {domain}_r{region} on {domain}_ctl
when inserted, updated(pending)
if exists (select * from {domain}_ctl where region = {region} and pending > 0)
then update {domain} set level = level - 1
     where region = {region} and level > 100;
     update {domain}_ctl set pending = pending - 1
     where region = {region} and pending > 0
"""


@dataclass
class PartitionedWorkload:
    """Schema, rules, a seeded instance, and its driving transition."""

    schema: Schema
    ruleset: RuleSet
    database: Database
    domains: tuple[str, ...]
    regions: int
    #: the seeded per-(domain, region) drain depths of the transition
    pending: dict[tuple[str, int], int]

    def drain_transition(self) -> list[str]:
        """The user transition: set every region's pending drain depth."""
        return [
            f"update {domain}_ctl set pending = {depth} "
            f"where region = {region}"
            for (domain, region), depth in sorted(self.pending.items())
        ]


def partitioned_schema(domains: tuple[str, ...] = DOMAINS) -> Schema:
    spec: dict = {}
    for domain in domains:
        spec[domain] = ["id", "region", "level"]
        spec[f"{domain}_ctl"] = ["region", "pending"]
    return schema_from_spec(spec)


def partitioned_workload(
    rows: int = 100_000,
    regions: int = 4,
    domains: tuple[str, ...] = DOMAINS,
    seed: int = 0,
    hot_rows_per_region: int = 100,
) -> PartitionedWorkload:
    """Build the workload: *rows* fact rows split evenly over *domains*.

    Each fact row lands in a seeded region; ``hot_rows_per_region``
    rows per (domain, region) get levels above the damping floor so
    every drain pass updates a bounded, seeded set. Partition keys are
    declared on every table (``region``) — a serial session ignores
    them; a session with ``ExecutionConfig(partitions=P)`` shards on
    them at construction.
    """
    rng = random.Random(seed)
    schema = partitioned_schema(domains)
    rules = "\n".join(
        _RULE_TEMPLATE.format(domain=domain, region=region)
        for domain in domains
        for region in range(regions)
    )
    ruleset = RuleSet.parse(rules, schema)

    database = Database(schema)
    per_domain = rows // len(domains)
    for domain in domains:
        facts = []
        hot_left = {region: hot_rows_per_region for region in range(regions)}
        for i in range(per_domain):
            region = rng.randrange(regions)
            if hot_left[region] > 0:
                hot_left[region] -= 1
                level = 100 + rng.randint(2, 8)
            else:
                level = rng.randint(1, 100)
            facts.append((i, region, level))
        database.load(domain, facts)
        database.load(
            f"{domain}_ctl", [(region, 0) for region in range(regions)]
        )
        database.declare_partition_key(domain, "region")
        database.declare_partition_key(f"{domain}_ctl", "region")

    pending = {
        (domain, region): rng.randint(3, 6)
        for domain in domains
        for region in range(regions)
    }
    return PartitionedWorkload(
        schema=schema,
        ruleset=ruleset,
        database=database,
        domains=tuple(domains),
        regions=regions,
        pending=pending,
    )
