"""The power-network design case study (Section 5, after [CW90]).

The paper reports using the interactive termination process "to
establish termination for a set of rules in a power network design
application". The original application is not published; this module
reconstructs its essential structure (see DESIGN.md "Substitutions"):

Schema: ``node(id, demand, supply)``, ``branch(id, src, dst, load,
capacity)``.

Rules:

* ``shed_overload``  — when branch loads change and some branch exceeds
  its capacity, decrement the load of every overloaded branch (the
  network design sheds one unit per pass);
* ``propagate_demand`` — when a node's demand rises above its supply,
  raise branch loads feeding that node and bump the node's supply;
* ``balance_supply`` — when supply changes, lower demand where supply
  now exceeds it.

``shed_overload`` updates ``branch.load`` and is triggered by
``updated(load)`` — a self-loop in the triggering graph — and
``propagate_demand``/``balance_supply`` form a two-rule cycle through
``node.supply``/``node.demand``. Theorem 5.1 therefore *cannot* certify
termination. But every rule's action strictly decreases a non-negative
quantity (total overload; total demand–supply gap), so rule processing
terminates — which the user certifies interactively, reproducing the
case-study flow. The execution-graph oracle confirms termination on
concrete instances.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine.database import Database
from repro.rules.ruleset import RuleSet
from repro.schema.catalog import Schema, schema_from_spec

POWER_NETWORK_RULES = """
create rule shed_overload on branch
when updated(load), inserted
if exists (select * from branch where load > capacity)
then update branch set load = load - 1 where load > capacity

create rule propagate_demand on node
when updated(demand), inserted
if exists (select * from node where demand > supply)
then update branch set load = load + 1
     where dst in (select id from node where demand > supply);
     update node set supply = supply + 1 where demand > supply

create rule balance_supply on node
when updated(supply)
if exists (select * from node where supply > demand + 2)
then update node set demand = demand + 1 where supply > demand + 2
"""


@dataclass
class PowerNetworkWorkload:
    """Schema, rules, and a concrete network instance."""

    schema: Schema
    ruleset: RuleSet
    database: Database

    #: rules whose repeated consideration guarantees progress — the
    #: certifications the case study's user supplies (each action
    #: strictly shrinks a bounded non-negative measure).
    certifiable_rules: tuple[str, ...] = (
        "shed_overload",
        "propagate_demand",
        "balance_supply",
    )

    #: the branch the overload transition hits (the ring-closing branch
    #: into node 1; its id differs between the small and scaled builds)
    overload_branch: int = 10

    def overload_transition(self) -> list[str]:
        """A design change that overloads part of the network."""
        return [
            "update node set demand = demand + 3 where id = 1",
            f"update branch set load = load + 3 "
            f"where id = {self.overload_branch}",
        ]


def power_network_schema() -> Schema:
    return schema_from_spec(
        {
            "node": ["id", "demand", "supply"],
            "branch": ["id", "src", "dst", "load", "capacity"],
        }
    )


def power_network_workload(size: int = 3) -> PowerNetworkWorkload:
    """Build the case study with *size* nodes in a chain topology."""
    schema = power_network_schema()
    ruleset = RuleSet.parse(POWER_NETWORK_RULES, schema)

    database = Database(schema)
    nodes = [(i, 2, 4) for i in range(1, size + 1)]  # demand 2, supply 4
    database.load("node", nodes)
    branches = [
        (10 + i, i, i + 1, 1, 3)  # load 1, capacity 3
        for i in range(1, size)
    ]
    branches.append((10, size, 1, 1, 3))  # ring-closing branch into node 1
    database.load("branch", branches)
    return PowerNetworkWorkload(schema=schema, ruleset=ruleset, database=database)


def scaled_power_network_workload(nodes: int = 100_000) -> PowerNetworkWorkload:
    """The case study scaled by orders of magnitude (ROADMAP item 5).

    Same three rules, a *nodes*-node ring: node ``i`` feeds node
    ``i + 1`` over one branch, the last branch closes the ring. The
    network starts balanced (demand 2 < supply 4, load 1 < capacity 3);
    :meth:`~PowerNetworkWorkload.overload_transition` unbalances the
    same two entities it does on the small instance, so the cascade's
    firing count stays bounded by the small per-entity gaps while every
    firing's scans range over the full 10⁵–10⁶-row tables — the scaling
    pressure is on the executors, not on termination.
    """
    schema = power_network_schema()
    ruleset = RuleSet.parse(POWER_NETWORK_RULES, schema)

    database = Database(schema)
    database.load("node", [(i, 2, 4) for i in range(1, nodes + 1)])
    branches = [
        (nodes + i, i, i + 1, 1, 3) for i in range(1, nodes)
    ]
    branches.append((nodes, nodes, 1, 1, 3))  # ring-closing branch
    database.load("branch", branches)
    return PowerNetworkWorkload(
        schema=schema,
        ruleset=ruleset,
        database=database,
        overload_branch=nodes,
    )
