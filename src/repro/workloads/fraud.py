"""A fraud-screening workload: a 10⁶-row stratified hold cascade.

Card transactions land in one large fact table; rules score accounts,
place holds, and open cases in a strictly layered cascade — the second
10⁶-row domain generator of ROADMAP item 5, shaped like a real
risk-screening pipeline rather than :mod:`repro.workloads.iot`'s
monitoring pipeline:

* ``transactions(id, account, region, amount)`` — the 10⁶-row
  (default) ledger, partition-keyed on ``region``;
* ``account_risk(account, region, score, held)`` — one row per
  account;
* ``region_audit(region, cases, backlog)`` — one row per region.

Three rules per region::

    create rule fraud_score_r{r} on transactions
    when inserted
    if exists (select * from inserted where region = {r} and amount > 9500)
    then update account_risk set score = score + 2 where region = {r}

    create rule fraud_hold_r{r} on account_risk
    when updated(score)
    if exists (select * from account_risk
               where region = {r} and score >= 4 and held = 0)
    then update account_risk set held = 1
         where region = {r} and score >= 4 and held = 0

    create rule fraud_case_r{r} on account_risk
    when updated(held)
    if exists (select * from account_risk
               where region = {r} and held = 1)
    then update region_audit set cases = 1, backlog = 5
         where region = {r} and cases < 1

Stratified: ``fraud_score`` is triggered only by inserts into
``transactions`` and writes only ``score``; ``fraud_hold`` is triggered
only by ``updated(score)`` and writes only ``held`` (same table,
*different* column — no self-edge in the triggering graph);
``fraud_case`` is triggered only by ``updated(held)`` and writes only
``region_audit``. Confluent by construction: regions write disjoint row
slices, the one relative write (``score + 2``) fires exactly once per
region per batch, and the hold/case layers are idempotent absolute
updates whose WHERE re-tests the guard they establish (``held = 0``,
``cases < 1``) — so the workload declares ``certified_confluent=True``
for the declarative cross-check.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.engine.database import Database
from repro.rules.ruleset import RuleSet
from repro.schema.catalog import Schema, schema_from_spec

_SCORE_TEMPLATE = """
create rule fraud_score_r{region} on transactions
when inserted
if exists (select * from inserted where region = {region} and amount > 9500)
then update account_risk set score = score + 2 where region = {region}
"""

_HOLD_TEMPLATE = """
create rule fraud_hold_r{region} on account_risk
when updated(score)
if exists (select * from account_risk
           where region = {region} and score >= 4 and held = 0)
then update account_risk set held = 1
     where region = {region} and score >= 4 and held = 0
"""

_CASE_TEMPLATE = """
create rule fraud_case_r{region} on account_risk
when updated(held)
if exists (select * from account_risk
           where region = {region} and held = 1)
then update region_audit set cases = 1, backlog = 5
     where region = {region} and cases < 1
"""


@dataclass
class FraudWorkload:
    """Schema, rules, the loaded instance, and its seeded batch."""

    schema: Schema
    ruleset: RuleSet
    database: Database
    regions: int
    accounts: int
    rows: int
    batch: tuple[str, ...]
    #: unique final by construction (see module docstring)
    certified_confluent: bool = True

    def ingest_transition(self) -> list[str]:
        return list(self.batch)


def fraud_schema() -> Schema:
    return schema_from_spec(
        {
            "transactions": ["id", "account", "region", "amount"],
            "account_risk": ["account", "region", "score", "held"],
            "region_audit": ["region", "cases", "backlog"],
        }
    )


def fraud_workload(
    rows: int = 1_000_000,
    regions: int = 16,
    accounts_per_region: int = 64,
    batch_rows: int = 1_024,
    seed: int = 0,
) -> FraudWorkload:
    """Build the workload: *rows* settled transactions plus one seeded
    authorization batch of *batch_rows* new transactions.

    Settled amounts are uniform on ``1..9500`` (below the screening
    threshold); batch amounts are uniform on ``1..10000``, so ~5% of
    each batch trips ``> 9500`` per region. Accounts start with
    ``score = 2``: one qualifying batch pushes a region's accounts to
    the hold threshold and cascades to a case.
    """
    rng = random.Random(seed)
    schema = fraud_schema()
    accounts = regions * accounts_per_region
    rules = "\n".join(
        template.format(region=region)
        for region in range(regions)
        for template in (_SCORE_TEMPLATE, _HOLD_TEMPLATE, _CASE_TEMPLATE)
    )
    ruleset = RuleSet.parse(rules, schema)

    database = Database(schema)
    database.load(
        "transactions",
        [
            (i, i % accounts, (i % accounts) % regions, rng.randint(1, 9500))
            for i in range(rows)
        ],
    )
    database.load(
        "account_risk",
        [(a, a % regions, 2, 0) for a in range(accounts)],
    )
    database.load("region_audit", [(r, 0, 0) for r in range(regions)])
    database.declare_partition_key("transactions", "region")
    database.declare_partition_key("account_risk", "region")

    batch_values = []
    for i in range(batch_rows):
        account = rng.randrange(accounts)
        batch_values.append(
            f"({rows + i}, {account}, {account % regions}, "
            f"{rng.randint(1, 10_000)})"
        )
    batch = (f"insert into transactions values {', '.join(batch_values)}",)
    return FraudWorkload(
        schema=schema,
        ruleset=ruleset,
        database=database,
        regions=regions,
        accounts=accounts,
        rows=rows,
        batch=batch,
    )
