"""Medium-sized sample rule applications (Section 6.4's case studies).

The paper reports hand-analyzing "several medium-sized rule
applications", most of which were initially non-confluent and were
repaired interactively by certifying commutativity and adding
priorities. The originals are unpublished; these reconstructions have
the same structural ingredients — derived-data maintenance, auditing,
cascading repairs, scratch tables — sized so that the execution-graph
oracle can still explore them exhaustively.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine.database import Database
from repro.rules.ruleset import RuleSet
from repro.schema.catalog import Schema, schema_from_spec


@dataclass
class Application:
    """A packaged rule application: schema, rules, data, a transition."""

    name: str
    schema: Schema
    ruleset: RuleSet
    database: Database
    transition: list[str]
    #: tables that matter for partial confluence (empty = not applicable)
    important_tables: tuple[str, ...] = ()
    #: pairs a domain expert would certify as actually commuting
    certifiable_pairs: tuple[tuple[str, str], ...] = ()


# ----------------------------------------------------------------------
# Inventory: order processing with stock maintenance and backorders.
# Initially non-confluent (unordered rules race on stock), repairable by
# ordering — the E5 repair-loop experiment.
# ----------------------------------------------------------------------

INVENTORY_RULES = """
create rule reserve_stock on orders
when inserted
then update stock set on_hand = on_hand - 1
     where item in (select item from inserted)

create rule flag_backorder on stock
when updated(on_hand)
if exists (select * from new_updated where on_hand < 0)
then insert into backorders
     (select item, 0 - on_hand from new_updated where on_hand < 0)

create rule refill_stock on stock
when updated(on_hand)
if exists (select * from new_updated where on_hand < 2)
then update stock set on_hand = on_hand + 5 where on_hand < 2

create rule clear_backorders on stock
when updated(on_hand)
if exists (select * from new_updated where on_hand >= 0)
then delete from backorders
     where item in (select item from new_updated where on_hand >= 0)

create rule audit_orders on orders
when inserted
then insert into audit (select item, 1 from inserted)
"""


def inventory_application() -> Application:
    schema = schema_from_spec(
        {
            "orders": ["id", "item"],
            "stock": ["item", "on_hand"],
            "backorders": ["item", "missing"],
            "audit": ["item", "event"],
        }
    )
    ruleset = RuleSet.parse(INVENTORY_RULES, schema)
    database = Database(schema)
    database.load("stock", [(1, 1), (2, 3)])
    return Application(
        name="inventory",
        schema=schema,
        ruleset=ruleset,
        database=database,
        transition=["insert into orders values (100, 1)"],
        important_tables=("stock", "backorders"),
    )


# ----------------------------------------------------------------------
# Audit: transaction postings debit accounts; two observable reporting
# rules watch the balances. The set is confluent (the only unordered
# pair, the two reports, commutes on the real tables) but *not*
# observably deterministic until the reports are ordered relative to
# each other (Corollary 8.2) — the E8 experiment.
# ----------------------------------------------------------------------

AUDIT_RULES = """
create rule apply_fee on txns
when inserted
then update accounts set balance = balance - 1
     where id in (select account from inserted)

create rule report_negative on accounts
when updated(balance)
then select id, balance from accounts where balance < 0
follows apply_fee

create rule report_total on accounts
when updated(balance)
then select sum(balance) from accounts
follows apply_fee
"""


def audit_application() -> Application:
    schema = schema_from_spec(
        {
            "txns": ["id", "account", "amount"],
            "accounts": ["id", "balance"],
        }
    )
    ruleset = RuleSet.parse(AUDIT_RULES, schema)
    database = Database(schema)
    database.load("accounts", [(1, 0), (2, 5)])
    return Application(
        name="audit",
        schema=schema,
        ruleset=ruleset,
        database=database,
        transition=["insert into txns values (100, 1, 7)"],
    )


# ----------------------------------------------------------------------
# Scratch tables: derived data plus a scratch workspace written in
# rule-order-dependent ways. Non-confluent overall; confluent with
# respect to the data tables — the E7 partial-confluence experiment.
# ----------------------------------------------------------------------

SCRATCH_RULES = """
create rule maintain_total on sales
when inserted
then update totals set grand = grand + 1

create rule note_last_a on sales
when inserted
then update scratch set last_rule = 1

create rule note_last_b on sales
when inserted
then update scratch set last_rule = 2
"""


def scratch_table_application() -> Application:
    schema = schema_from_spec(
        {
            "sales": ["id", "amount"],
            "totals": ["grand"],
            "scratch": ["last_rule"],
        }
    )
    ruleset = RuleSet.parse(SCRATCH_RULES, schema)
    database = Database(schema)
    database.load("totals", [(0,)])
    database.load("scratch", [(0,)])
    return Application(
        name="scratch",
        schema=schema,
        ruleset=ruleset,
        database=database,
        transition=["insert into sales values (1, 10)"],
        important_tables=("sales", "totals"),
    )


# ----------------------------------------------------------------------
# Procurement: the "large and realistic rule application" of Section 9's
# implementation plans. Three independent partitions — the procurement
# core (constraint cascades, derived totals, budget enforcement), a
# warehouse balancer (monotonic drift cycle), and an alerting scratch
# pad — exercising every analysis feature at once: a certifiable
# self-loop, an auto-certifiable drift cycle, a GROUP BY derived table,
# an observable rollback guard, initial non-confluence with a documented
# repair, and partial confluence w.r.t. the core tables.
# ----------------------------------------------------------------------

PROCUREMENT_RULES = """
create rule parts_cascade on suppliers
when deleted
then delete from parts where supplier_id in (select id from deleted)

create rule orders_cascade on parts
when deleted
then delete from orders where part_id in (select id from deleted)
follows parts_cascade

create rule orders_restrict on orders
when inserted
if exists (select * from inserted
           where part_id not in (select id from parts))
then rollback 'order references missing part'

create rule refresh_totals on orders
when inserted, deleted
then delete from order_totals;
     insert into order_totals
     (select part_id, sum(qty) from orders group by part_id)
follows orders_restrict, orders_cascade

create rule track_spend on orders
when inserted
then update budget set spent = spent +
     (select sum(qty) from inserted)
follows orders_restrict

create rule enforce_cap on budget
when updated(spent)
if exists (select * from budget where spent > cap)
then update budget set spent = cap where spent > cap

create rule rebalance_bins on bins
when updated(load), inserted
then update bins set load = load - 1 where load > 10

create rule note_alert on orders
when inserted
then update alert_scratch set last_event = 1

create rule note_alert_alt on orders
when inserted
then update alert_scratch set last_event = 2
"""

#: Tables whose final contents matter (partial confluence target).
PROCUREMENT_CORE_TABLES = (
    "suppliers",
    "parts",
    "orders",
    "order_totals",
    "budget",
)

#: The documented repair recipe reaching full confluence (in order):
#: (kind, first, second) with kind "certify-termination" (second is
#: None) or "order" (first > second). ``enforce_cap`` is the
#: user-certified clamp (its condition goes false after one pass);
#: ``rebalance_bins`` is auto-certified by the monotonic-drift
#: heuristic; the orderings are the ones the Section 6.4 repair loop
#: discovers.
PROCUREMENT_REPAIRS = (
    ("certify-termination", "enforce_cap", None),
    ("certify-termination", "rebalance_bins", None),
    ("order", "enforce_cap", "track_spend"),
    ("order", "note_alert", "note_alert_alt"),
    ("order", "note_alert", "orders_cascade"),
    ("order", "note_alert_alt", "orders_cascade"),
    ("order", "orders_cascade", "orders_restrict"),
)


def apply_procurement_repairs(analyzer) -> None:
    """Apply :data:`PROCUREMENT_REPAIRS` to a RuleAnalyzer."""
    for kind, first, second in PROCUREMENT_REPAIRS:
        if kind == "certify-termination":
            analyzer.certify_termination(first)
        else:
            analyzer.add_priority(first, second)


def procurement_application() -> Application:
    schema = schema_from_spec(
        {
            "suppliers": ["id", "rating"],
            "parts": ["id", "supplier_id", "price"],
            "orders": ["id", "part_id", "qty"],
            "order_totals": ["part_id", "total_qty"],
            "budget": ["period", "spent", "cap"],
            "bins": ["id", "load"],
            "alert_scratch": ["last_event"],
        }
    )
    ruleset = RuleSet.parse(PROCUREMENT_RULES, schema)
    database = Database(schema)
    database.load("suppliers", [(1, 5), (2, 3)])
    database.load("parts", [(10, 1, 100), (11, 1, 50), (20, 2, 75)])
    database.load("orders", [(100, 10, 2)])
    database.load("order_totals", [(10, 2)])
    database.load("budget", [(1, 2, 10)])
    database.load("bins", [(1, 4), (2, 12)])
    database.load("alert_scratch", [(0,)])
    return Application(
        name="procurement",
        schema=schema,
        ruleset=ruleset,
        database=database,
        transition=["insert into orders values (101, 11, 3)"],
        important_tables=PROCUREMENT_CORE_TABLES,
    )
