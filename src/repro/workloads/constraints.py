"""[CW90]-style derivation of production rules from integrity constraints.

[CW90] ("Deriving production rules for constraint maintenance") derives,
for each declarative constraint, rules that repair or reject violating
transitions. We implement the referential-integrity family, the one the
paper's termination discussion builds on:

for a foreign key ``child.fk → parent.pk`` the derivation emits

* ``<name>_cascade``  — when parent rows are deleted, delete the
  now-orphaned child rows (repair by cascade);
* ``<name>_restrict`` — when child rows are inserted or their fk
  updated, either delete the violating child rows (``repair``) or roll
  the transaction back (``reject``).

These rule shapes are exactly the ones whose triggering graphs [CW90]
analyzes: cascades across a chain of foreign keys form paths, and a
cyclic schema (a → b → a) yields a triggering-graph cycle that still
terminates because cascades only delete — the delete-only special case
of Section 5.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.rules.ruleset import RuleSet
from repro.schema.catalog import Schema


@dataclass(frozen=True)
class ForeignKey:
    """``child.fk_column`` references ``parent.key_column``."""

    child: str
    fk_column: str
    parent: str
    key_column: str

    @property
    def name(self) -> str:
        return f"{self.child}_{self.fk_column}"


def referential_integrity_rules(
    schema: Schema,
    foreign_keys: list[ForeignKey],
    on_violation: str = "repair",
) -> RuleSet:
    """Derive maintenance rules for *foreign_keys* over *schema*.

    ``on_violation`` is ``"repair"`` (delete violating children) or
    ``"reject"`` (roll back the transaction — an observable action).
    """
    if on_violation not in ("repair", "reject"):
        raise ValueError("on_violation must be 'repair' or 'reject'")

    sources = []
    for fk in foreign_keys:
        sources.append(_cascade_rule(fk))
        sources.append(_restrict_rule(fk, on_violation))
    return RuleSet.parse("\n\n".join(sources), schema)


def _cascade_rule(fk: ForeignKey) -> str:
    return (
        f"create rule {fk.name}_cascade on {fk.parent}\n"
        f"when deleted\n"
        f"then delete from {fk.child} where {fk.fk_column} in "
        f"(select {fk.key_column} from deleted)"
    )


def _restrict_rule(fk: ForeignKey, on_violation: str) -> str:
    violation = (
        f"{fk.fk_column} not in (select {fk.key_column} from {fk.parent})"
    )
    if on_violation == "repair":
        action = f"delete from {fk.child} where {violation}"
    else:
        action = f"rollback 'foreign key {fk.name} violated'"
    return (
        f"create rule {fk.name}_restrict on {fk.child}\n"
        f"when inserted, updated({fk.fk_column})\n"
        f"if exists (select * from {fk.child} where {violation})\n"
        f"then {action}"
    )
