"""Workload generators and case-study rule applications.

* :mod:`repro.workloads.generator` — seeded random rule sets, databases
  and initial transitions, used by the soundness sweeps and benchmarks;
* :mod:`repro.workloads.constraints` — [CW90]-style derivation of
  integrity-maintenance rules from referential constraints;
* :mod:`repro.workloads.powernet` — the power-network design case study
  (a triggering-graph cycle that terminates by monotonic decrease);
* :mod:`repro.workloads.applications` — medium-sized sample applications
  for the Section 6.4 repair-loop, partial-confluence and observable-
  determinism experiments;
* :mod:`repro.workloads.queries` — seeded query workloads for the
  query-engine benchmark gate (join-heavy and selective-filter shapes);
* :mod:`repro.workloads.partitioned` — the hash-partitionable
  multi-domain drain workload feeding the partition-parallel gate and
  the parallel-vs-serial equivalence harness;
* :mod:`repro.workloads.streaming` — the streaming-ingestion workload
  (many event streams, per-region alert rules, one shared hot counter)
  and the multi-threaded driver behind the concurrent-server gate;
* :mod:`repro.workloads.iot` — the 10⁶-row IoT telemetry workload (a
  stratified, confluent-by-construction alert cascade over a large
  fact table) feeding the declarative cross-check at scale;
* :mod:`repro.workloads.fraud` — the 10⁶-row fraud-screening workload
  (stratified score/hold/case cascade), the second domain generator
  behind the semantics gate.
"""

from repro.workloads.generator import (
    GeneratorConfig,
    LayeredRuleSetGenerator,
    RandomInstanceGenerator,
    RandomRuleSetGenerator,
    StratifiedProgramGenerator,
)
from repro.workloads.constraints import referential_integrity_rules
from repro.workloads.powernet import (
    power_network_workload,
    scaled_power_network_workload,
)
from repro.workloads.iot import IotWorkload, iot_workload
from repro.workloads.fraud import FraudWorkload, fraud_workload
from repro.workloads.applications import (
    apply_procurement_repairs,
    audit_application,
    inventory_application,
    procurement_application,
    scratch_table_application,
)
from repro.workloads.queries import (
    join_heavy_workload,
    selective_filter_workload,
)
from repro.workloads.partitioned import (
    PartitionedWorkload,
    partitioned_workload,
)
from repro.workloads.streaming import (
    DriveReport,
    StreamingBatch,
    StreamingWorkload,
    drive_streaming,
    streaming_workload,
)

__all__ = [
    "GeneratorConfig",
    "LayeredRuleSetGenerator",
    "RandomInstanceGenerator",
    "RandomRuleSetGenerator",
    "StratifiedProgramGenerator",
    "referential_integrity_rules",
    "power_network_workload",
    "scaled_power_network_workload",
    "IotWorkload",
    "iot_workload",
    "FraudWorkload",
    "fraud_workload",
    "apply_procurement_repairs",
    "audit_application",
    "inventory_application",
    "procurement_application",
    "scratch_table_application",
    "join_heavy_workload",
    "selective_filter_workload",
    "PartitionedWorkload",
    "partitioned_workload",
    "DriveReport",
    "StreamingBatch",
    "StreamingWorkload",
    "drive_streaming",
    "streaming_workload",
]
